"""Seeded chaos scenarios: crash points x ensemble faults x leader kills.

The crash-point matrix (PR 2) proves recovery from a *single* controller
death at every named protocol edge.  Real outages are messier: sessions
expire while a prepare is in flight, the ensemble partitions during a
checkpoint, a client retries a submission whose fate it cannot know.
:class:`ChaosScenario` composes all of the fault machinery in this package
— :class:`~repro.testing.faults.FaultInjector` crash points,
:class:`~repro.testing.faults.FaultyEnsemble` session/connection/latency/
partition faults, and leader kills — over a concurrent single-shard + 2PC
workload submitted with idempotency tokens, then checks the invariants
that define "fault tolerant" for this system.  Since PR 9 the workload
includes back-to-back *bursts* of overlapping cross-shard submissions
(same compute host, same foreign storage host) under the aggressive
scheduler, so the drain runs concurrent cross-shard prepares through the
wound-wait admission path — including wounds and retries — with crashes,
expiries and partitions landing mid-protocol.  The invariants:

1. **Exactly-once per token** — every idempotency token maps to exactly
   one persisted transaction document, no matter how many times the
   client (re)submitted it, and that document is terminal.
2. **Zero acked-transaction loss** — every completion delivered to the
   client observer is still terminal, in the same state, in the recovered
   store; committed spawns exist on the devices and in the model.
3. **Zero duplicate application** — no transaction is acknowledged as
   committed twice, and the logical/physical layers agree
   (:meth:`~repro.testing.cluster.ShardedCluster.detect_is_clean`).
4. **Recovered-model equality** — a brand-new replica recovering purely
   from the coordination store reproduces each shard's model exactly.
5. **Cross-shard read atomicity** (PR 7) — persistent read replicas
   tailing both shards, periodically fenced mid-drain through the
   decision-log-aware read fence (:mod:`repro.core.readfence`), never
   show exactly one participant's half of a cross-shard 2PC spawn —
   both the VM and its disk image, or neither, at every fenced check
   even while crashes, session expiries and partitions are in flight.

Everything is derived from a single integer seed via ``random.Random``,
so a failing scenario is replayable bit-for-bit:
``ChaosScenario(seed).run()``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import TropicConfig
from repro.common.errors import QuorumLostError, SessionExpiredError
from repro.coordination.kvstore import KVStore
from repro.core.events import request_message
from repro.core.persistence import TropicStore
from repro.core.readfence import fence_replica_sources
from repro.core.replica import ReadReplica
from repro.core.txn import Transaction, TransactionState
from repro.testing.cluster import ShardedCluster
from repro.testing.faults import (
    ALL_FAILURE_POINTS,
    CONNECTION_LOSS,
    ENSEMBLE_FAULT_KINDS,
    EXPIRE_SESSION,
    LATENCY_SPIKE,
    PARTITION,
    CrashPoint,
    FaultInjector,
    FaultyEnsemble,
)

#: Faults a client/step wrapper absorbs and retries: the operation either
#: provably did not happen (connection loss, quorum loss) or the session
#: must be re-established first (expiry).  Mirrors the platform's
#: transient classification in :mod:`repro.common.retry`.
TRANSIENT_ERRORS = (SessionExpiredError, QuorumLostError, ConnectionError)

#: The shard whose controller wears the crash-point wrappers.
FAULTY_SHARD = 0

#: Aggressive checkpointing so checkpoint-edge crash points are reachable
#: within a short workload (same trick as the fault matrix), and the
#: aggressive scheduler so overlapping cross-shard bursts genuinely run
#: concurrent prepares (and can wound) instead of serialising FIFO-style
#: behind a blocked queue head.
#: ``pipeline_depth=3`` runs the whole soak through the pipelined write
#: path with a real in-flight window, so the pipeline crash edges
#: (including ``pipeline-window-crash``, unreachable at depth 1) are in
#: the sampled fault population and every invariant is checked against
#: deferred flushes and deferred acks.
CHAOS_CONFIG = TropicConfig(
    checkpoint_every=2, scheduler_policy="aggressive", pipeline_depth=3
)


@dataclass
class ChaosReport:
    """What one scenario did and whether the invariants held."""

    seed: int
    submits: int = 0
    cross_bursts: int = 0
    duplicate_submits: int = 0
    post_drain_retries: int = 0
    client_retries: int = 0
    transient_steps: int = 0
    leader_kills: int = 0
    committed: int = 0
    aborted: int = 0
    fence_checks: int = 0
    fence_advances: int = 0
    crashes: list[str] = field(default_factory=list)
    ensemble_faults: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK " if self.ok else "FAIL"
        line = (
            f"[{verdict}] seed={self.seed:<4d} submits={self.submits:<3d} "
            f"bursts={self.cross_bursts} "
            f"dups={self.duplicate_submits} retries={self.client_retries:<3d} "
            f"crashes={len(self.crashes)} faults={len(self.ensemble_faults)} "
            f"kills={self.leader_kills} committed={self.committed} "
            f"aborted={self.aborted} fenced={self.fence_checks}"
        )
        for failure in self.failures:
            line += f"\n       - {failure}"
        return line


class ChaosScenario:
    """One seeded chaos plan over a two-shard cluster with a 2PC mix.

    The constructor derives the *entire* plan — workload, crash points,
    ensemble-fault schedule, leader kills, duplicate submissions and
    post-drain retries — from ``seed``; :meth:`run` executes it and
    returns a :class:`ChaosReport`.
    """

    def __init__(self, seed: int, num_ops: int = 10, config: TropicConfig | None = None):
        self.seed = seed
        self.config = config or CHAOS_CONFIG
        rng = random.Random(seed)

        #: Workload: (name, kind, host_index).  ``cross`` ops provably span
        #: two shards (VM on one shard, disk image on the other) and are
        #: coordinated through 2PC; the rest stay single-shard.  Some of
        #: the cross ops arrive as *bursts*: 2-3 submissions sharing one
        #: compute host (hence one home shard and one foreign storage
        #: host) enqueued back-to-back with no stepping in between, so
        #: their prepares overlap and contend under wound-wait.
        self.ops: list[tuple[str, str, int]] = []
        #: Inline step rounds after each submission (interleaves the
        #: workload with execution so faults land mid-flight; zero inside
        #: a burst, by construction).
        self.steps_between: list[int] = []
        self.cross_bursts = 0
        while len(self.ops) < num_ops:
            remaining = num_ops - len(self.ops)
            if remaining >= 2 and rng.random() < 0.25:
                self.cross_bursts += 1
                host_index = rng.randrange(4)
                for _ in range(min(rng.randint(2, 3), remaining)):
                    self.ops.append((f"vm{len(self.ops)}", "cross", host_index))
                    self.steps_between.append(0)
                self.steps_between[-1] = rng.randint(0, 3)
            else:
                self.ops.append(
                    (
                        f"vm{len(self.ops)}",
                        "cross" if rng.random() < 0.3 else "spawn",
                        rng.randrange(4),
                    )
                )
                self.steps_between.append(rng.randint(0, 3))
        #: Crash plan: the first entry is armed up front at an absolute
        #: occurrence; later entries are armed after the previous crash
        #: fires, at (hits so far + offset).
        points = rng.sample(ALL_FAILURE_POINTS, k=rng.randint(1, 2))
        self.crash_plan: list[tuple[str, int]] = [
            (point, rng.randint(0, 3)) for point in points
        ]
        #: Ensemble faults, scheduled relative to the op count observed
        #: right after cluster construction: (kind, op_offset, duration).
        self.fault_plan: list[tuple[str, int, int]] = [
            (
                rng.choice(ENSEMBLE_FAULT_KINDS),
                rng.randint(20, 600),
                rng.randint(4, 20),
            )
            for _ in range(rng.randint(1, 3))
        ]
        #: Leader kills during the drain: round number -> shard.
        self.leader_kills: dict[int, int] = {
            rng.randint(1, 40): rng.randrange(2) for _ in range(rng.randint(0, 2))
        }
        #: Op indices the client submits twice back-to-back (dedup must
        #: collapse them onto one transaction).
        self.dup_ops = {i for i in range(num_ops) if rng.random() < 0.25}
        #: Op indices re-submitted with the same token *after* the drain —
        #: the "ambiguous outcome, retry with the same token" client path.
        self.retry_ops = {i for i in range(num_ops) if rng.random() < 0.5}

        # Run-time state.
        self._crash_queue: list[tuple[str, int]] = []
        self._kill_queue: list[tuple[int, int]] = []
        #: token -> txids actually persisted for it (must end up size 1).
        self.token_txids: dict[str, set[str]] = {}
        #: Persistent per-shard read replicas for the mid-drain fenced
        #: read-atomicity checks (created lazily on the first check).
        self._fence_replicas: dict[int, ReadReplica] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        report = ChaosReport(seed=self.seed, cross_bursts=self.cross_bursts)
        injector = FaultInjector()
        ensemble = FaultyEnsemble(num_servers=3, default_session_timeout=3600.0)
        cluster = ShardedCluster(
            num_shards=2,
            cross_shard_policy="2pc",
            config=self.config,
            injector=injector,
            faulty_shards=(FAULTY_SHARD,),
            ensemble=ensemble,
        )
        self._injector = injector
        self._crash_queue = list(self.crash_plan)
        self._kill_queue = sorted(self.leader_kills.items())
        point, occurrence = self._crash_queue.pop(0)
        injector.arm(point, occurrence)

        # Construction itself issues coordination ops; schedule faults
        # relative to the post-construction count so they land inside the
        # workload, deterministically.
        base = ensemble.fault_schedule.op_count
        for kind, offset, duration in self.fault_plan:
            at_op = base + offset
            if kind == EXPIRE_SESSION:
                ensemble.fault_schedule.expire_session_at(at_op)
            elif kind == CONNECTION_LOSS:
                ensemble.fault_schedule.connection_loss_at(at_op)
            elif kind == LATENCY_SPIKE:
                ensemble.fault_schedule.latency_spike_at(at_op, 0.0002, duration)
            elif kind == PARTITION:
                ensemble.fault_schedule.partition_at(at_op, duration)

        # Submission phase, interleaved with stepping.
        for index, op in enumerate(self.ops):
            token = self._token(index)
            self._submit(cluster, report, token, op)
            report.submits += 1
            if index in self.dup_ops:
                self._submit(cluster, report, token, op)
                report.duplicate_submits += 1
            for _ in range(self.steps_between[index]):
                self._step(cluster, report)

        self._drain(cluster, report)

        # Ambiguous-outcome client retries: same token, after the fact.
        for index in sorted(self.retry_ops):
            self._submit(cluster, report, self._token(index), self.ops[index])
            report.post_drain_retries += 1
        self._drain(cluster, report)

        # Verification runs against a healthy ensemble: unfired faults are
        # cancelled (they would otherwise fire mid-assertion) and any
        # lingering degradation (partition, latency, dead session) healed.
        ensemble.fault_schedule.cancel_pending()
        self._heal(cluster)
        self._drain(cluster, report)

        self._check_invariants(cluster, report)
        report.crashes = [crash.point for crash in injector.fired]
        report.ensemble_faults = [kind for _, kind in ensemble.fault_schedule.fired]
        return report

    def _token(self, index: int) -> str:
        return f"chaos-{self.seed}-op{index}"

    # -- client ---------------------------------------------------------

    def _build_args(self, cluster: ShardedCluster, op: tuple[str, str, int]) -> dict[str, Any]:
        name, kind, host_index = op
        inventory = cluster.inventory
        vm_host = inventory.vm_hosts[host_index % len(inventory.vm_hosts)]
        if kind == "cross":
            home = cluster.router.shard_of(vm_host)
            foreign = [
                host
                for host in inventory.storage_hosts
                if cluster.router.shard_of(host) != home
            ]
            storage_host = foreign[0] if foreign else inventory.storage_host_for(host_index)
        else:
            storage_host = inventory.storage_host_for(host_index % len(inventory.vm_hosts))
        return {
            "vm_name": name,
            "image_template": "template-small",
            "storage_host": storage_host,
            "vm_host": vm_host,
            "mem_mb": 512,
        }

    def _submit(
        self,
        cluster: ShardedCluster,
        report: ChaosReport,
        token: str,
        op: tuple[str, str, int],
    ) -> str:
        """Tokened submission with transparent retry on transient faults —
        the client half of the idempotent-retry contract, mirroring
        ``TropicPlatform.submit``'s token handling over the raw cluster."""
        for _ in range(500):
            try:
                return self._try_submit(cluster, token, op)
            except TRANSIENT_ERRORS:
                report.client_retries += 1
                self._heal(cluster)
        raise AssertionError(f"seed {self.seed}: submit of {token} never succeeded")

    def _try_submit(
        self, cluster: ShardedCluster, token: str, op: tuple[str, str, int]
    ) -> str:
        args = self._build_args(cluster, op)
        decision = cluster.router.plan("spawnVM", args)
        shard = decision.shard
        store = cluster.stores[shard]
        entry = store.lookup_token(token)
        if entry is not None:
            # Dedup hit: the original submission is the transaction.  Only
            # a non-terminal document is re-driven (the controller ignores
            # redelivered requests for anything past INITIALIZED).
            txid = entry["txid"]
            doc = store.load_transaction(txid)
            if doc is not None and not doc.is_terminal:
                cluster.input_queues[shard].put(request_message(txid))
            return txid
        txn = Transaction(procedure="spawnVM", args=dict(args), idempotency_token=token)
        if decision.cross_shard and cluster.router.policy == "2pc":
            txn.coordinator = shard
            txn.participants = sorted(decision.shards)
        txn.mark(TransactionState.INITIALIZED, 0.0)
        # Document + token intent record in one group commit: a crash can
        # never leave a document a retry cannot find by its token.
        with store.batch():
            store.save_transaction(txn)
            store.record_token(token, txn.txid, txn.state.value)
        self.token_txids.setdefault(token, set()).add(txn.txid)
        cluster.submitted.append(txn)
        cluster.input_queues[shard].put(request_message(txn.txid))
        return txn.txid

    def _heal(self, cluster: ShardedCluster) -> None:
        if not cluster.client.is_live():
            cluster.client.reconnect()

    def _with_heal(self, cluster: ShardedCluster, report: ChaosReport, fn) -> None:
        """Run a recovery action, absorbing faults that land *during* the
        recovery itself (e.g. a second session expiry while the first
        failover bootstraps) — recovery code must be re-drivable too."""
        for _ in range(200):
            try:
                fn()
                return
            except TRANSIENT_ERRORS:
                report.transient_steps += 1
                self._heal(cluster)
        raise AssertionError(f"seed {self.seed}: recovery action never succeeded")

    # -- driving --------------------------------------------------------

    def _step(self, cluster: ShardedCluster, report: ChaosReport) -> bool:
        try:
            return cluster.step_all(failover=False)
        except CrashPoint:
            self._with_heal(cluster, report, lambda: self._failover(cluster))
            return True
        except SessionExpiredError:
            # Everything here shares one coordination session, and an
            # expiry deletes the ephemeral leadership of every component
            # riding it.  The real platform demotes, re-elects and lets
            # the new leader recover from the store — which is also what
            # re-drives any in-flight work the expiry interrupted (e.g. a
            # dispatched transaction whose worker batch died with the
            # session).  Model that: heal the session, then fail both
            # shards over to fresh replicas that recover from the store.
            report.transient_steps += 1
            self._heal(cluster)
            self._with_heal(cluster, report, lambda: self._failover(cluster))
            for shard in cluster.shard_ids:
                if shard != FAULTY_SHARD:
                    self._with_heal(
                        cluster, report, lambda s=shard: cluster.replace_controller(s)
                    )
            return True
        except TRANSIENT_ERRORS:
            report.transient_steps += 1
            self._heal(cluster)
            return True

    def _failover(self, cluster: ShardedCluster) -> None:
        """Replace the crashed faulty-shard controller.  While crash-plan
        entries remain the successor wears fault wrappers again, armed for
        the next point at a future occurrence; afterwards it is clean."""
        rearm = bool(self._crash_queue)
        # Build the successor first: its bootstrap issues ensemble ops that
        # can themselves hit a fault, and a retried _failover must not
        # consume a second crash-plan entry.
        successor = cluster.new_controller(FAULTY_SHARD, faulty=rearm)
        if rearm:
            point, offset = self._crash_queue.pop(0)
            self._injector.arm(point, self._injector.hits(point) + offset)
        cluster.controllers[FAULTY_SHARD] = successor

    def _drain(
        self, cluster: ShardedCluster, report: ChaosReport, max_rounds: int = 20_000
    ) -> None:
        for round_no in range(max_rounds):
            if round_no % 50 == 0:
                # Concurrent-reader invariant: a fenced replica read taken
                # mid-chaos must be cross-shard atomic (PR 7).
                self._fence_check(cluster, report)
            if self._kill_queue and round_no >= self._kill_queue[0][0]:
                # A leader kill can itself collide with an active fault
                # (replacement bootstraps through the ensemble); defer it
                # until the ensemble accepts the replacement.
                try:
                    cluster.replace_controller(self._kill_queue[0][1])
                except TRANSIENT_ERRORS:
                    report.transient_steps += 1
                    self._heal(cluster)
                else:
                    self._kill_queue.pop(0)
                    report.leader_kills += 1
            progressed = self._step(cluster, report)
            if not progressed:
                try:
                    if cluster.queues_empty():
                        return
                except TRANSIENT_ERRORS:
                    report.transient_steps += 1
                    self._heal(cluster)
        report.failures.append(f"cluster did not quiesce within {max_rounds} rounds")

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _fence_check(self, cluster: ShardedCluster, report: ChaosReport) -> None:
        """Invariant 5: fence the persistent replica pair and assert every
        cross-shard spawn is both-or-neither visible in the fenced models.

        Shards the fence degraded (barrier evicted or non-rewindable with
        an unreachable decision) are outside the atomicity domain by
        contract — disclosed partial staleness — and are skipped; rewound
        shards are checked against their rewound forks, exactly as a
        fenced ``fleet_view`` would serve them.  Coordination faults in
        flight abort the check (a reader would retry); they never fail
        the scenario."""
        try:
            replicas = self._fence_replicas
            for shard in cluster.shard_ids:
                if shard not in replicas:
                    store = TropicStore(
                        KVStore(cluster.client, f"/tropic/store/shard-{shard}"),
                        shard_id=shard,
                        num_shards=cluster.num_shards,
                    )
                    replicas[shard] = ReadReplica(
                        store, cluster.schema, cluster.procedures, shard_id=shard
                    )
            for replica in replicas.values():
                replica.refresh(force=True)
            fenced = fence_replica_sources(replicas, set(), cluster.twopc)
        except TRANSIENT_ERRORS:
            report.transient_steps += 1
            self._heal(cluster)
            return
        report.fence_checks += 1
        report.fence_advances += fenced.advanced
        models = {}
        for shard, replica in replicas.items():
            if shard in fenced.degraded:
                continue
            if shard in fenced.rewinds:
                models[shard] = fenced.rewinds[shard][0]
            else:
                models[shard] = replica.model(refresh=False)
        for index, (name, kind, _host) in enumerate(self.ops):
            if kind != "cross":
                continue
            args = self._build_args(cluster, self.ops[index])
            vm_shard = cluster.router.shard_of(args["vm_host"])
            img_shard = cluster.router.shard_of(args["storage_host"])
            if vm_shard not in models or img_shard not in models:
                continue
            vm_there = models[vm_shard].exists(f"{args['vm_host']}/{name}")
            image_there = models[img_shard].exists(
                f"{args['storage_host']}/{name}-disk"
            )
            if vm_there != image_there:
                report.failures.append(
                    f"fenced replica read tore {name}: "
                    f"vm={vm_there} image={image_there}"
                )

    def _check_invariants(self, cluster: ShardedCluster, report: ChaosReport) -> None:
        fail = report.failures.append

        # 1. Exactly-once per idempotency token.
        for index, op in enumerate(self.ops):
            token = self._token(index)
            txids = self.token_txids.get(token, set())
            if len(txids) != 1:
                fail(f"token {token} created {len(txids)} transactions: {sorted(txids)}")
                continue
            args = self._build_args(cluster, op)
            shard = cluster.router.plan("spawnVM", args).shard
            entry = cluster.stores[shard].lookup_token(token)
            if entry is None:
                fail(f"token {token} has no persisted index entry")
                continue
            (txid,) = txids
            if entry["txid"] != txid:
                fail(f"token {token} indexed to {entry['txid']}, expected {txid}")
            doc = cluster.load(txid)
            if doc is None or not doc.is_terminal:
                state = None if doc is None else doc.state
                fail(f"token {token} transaction {txid} ended non-terminal: {state}")
            elif doc.state is TransactionState.COMMITTED:
                report.committed += 1
            else:
                report.aborted += 1

        # 2. Zero acked-transaction loss, and 3. zero duplicate application.
        acked_committed: set[str] = set()
        for txn in cluster.acked:
            final = cluster.load(txn.txid)
            if final is None or final.state is not txn.state:
                got = None if final is None else final.state
                fail(
                    f"acked {txn.txid} ({txn.state.value}) now "
                    f"{'missing' if final is None else got.value} in the store"
                )
                continue
            if txn.state is not TransactionState.COMMITTED:
                continue
            if txn.txid in acked_committed:
                fail(f"{txn.txid} acknowledged as committed twice")
            acked_committed.add(txn.txid)
            vm, host = txn.args["vm_name"], txn.args["vm_host"]
            device = cluster.inventory.registry.device_at(host)
            if device.vm_state(vm) != "running":
                fail(f"acked commit {vm}: device at {host} says {device.vm_state(vm)!r}")
            shard = cluster.router.shard_of(host)
            if not cluster.model(shard).exists(f"{host}/{vm}"):
                fail(f"acked commit {vm} missing from shard {shard}'s model")

        # 4. Recovered-model equality: a fresh replica rebuilding purely
        # from the coordination store must agree with the incumbent.
        for shard in cluster.shard_ids:
            incumbent = cluster.model(shard).to_dict()
            fresh = cluster.new_controller(shard, faulty=False)
            fresh.recover()
            if fresh.model.to_dict() != incumbent:
                fail(f"shard {shard}: fresh recovery diverged from incumbent model")

        # Cross-layer agreement and no leaked locks.
        for shard in cluster.shard_ids:
            if not cluster.detect_is_clean(shard):
                fail(f"shard {shard}: logical/physical layers disagree")
            leaked = cluster.controllers[shard].lock_manager.active_transactions()
            if leaked:
                fail(f"shard {shard}: leaked locks for {sorted(leaked)}")


def run_chaos(seed: int, num_ops: int = 10) -> ChaosReport:
    """Generate and run one seeded scenario."""
    return ChaosScenario(seed, num_ops=num_ops).run()


def run_soak(seeds: "list[int] | range", num_ops: int = 10) -> list[ChaosReport]:
    """Run a batch of seeded scenarios (the chaos soak)."""
    return [run_chaos(seed, num_ops=num_ops) for seed in seeds]
