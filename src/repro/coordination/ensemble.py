"""The coordination ensemble: quorum writes, sessions, and watches.

The ensemble is the authoritative implementation of the coordination
protocol.  Clients talk to it through :class:`~repro.coordination.client.
CoordinationClient`.  All committed operations are applied synchronously to
every *up* replica server, which trivially provides the strong consistency
TROPIC expects of its persistent store (§2.3).  Writes (and reads — we model
linearizable reads) require a majority of replicas to be up; otherwise
:class:`~repro.common.errors.QuorumLostError` is raised.

Sessions mirror ZooKeeper sessions: a client heartbeats periodically, and if
the ensemble does not see a heartbeat within the session timeout the session
expires, its ephemeral znodes are removed and watches fire.  This is the
failure-detection mechanism that drives controller failover; the paper notes
(§6.4) that recovery time is dominated by exactly this detection interval.

The role of the coordination service in the platform — and every namespace
the system persists into it — is documented in
``docs/architecture.md#coordination-namespaces``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.analysis.recorder import traced
from repro.common.clock import Clock, RealClock
from repro.common.errors import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    QuorumLostError,
    SessionExpiredError,
)
from repro.coordination.server import CoordinationServer
from repro.coordination.znode import Stat, join_path, parent_path, split_path


@dataclass
class WatchEvent:
    """A one-shot notification delivered to a watcher callback."""

    kind: str  # "created" | "deleted" | "changed" | "child"
    path: str


Watcher = Callable[[WatchEvent], None]


@dataclass
class Session:
    """A client session with heartbeat-based liveness."""

    session_id: str
    timeout: float
    last_heartbeat: float
    expired: bool = False


class CoordinationEnsemble:
    """An ensemble of :class:`CoordinationServer` replicas."""

    def __init__(
        self,
        num_servers: int = 3,
        clock: Clock | None = None,
        default_session_timeout: float = 0.5,
        op_latency: float = 0.0,
    ):
        if num_servers < 1:
            raise ValueError("ensemble needs at least one server")
        self.clock = clock or RealClock()
        self.servers = [CoordinationServer(f"coord-{i}") for i in range(num_servers)]
        # Up replicas are identical by construction, so they share one
        # physical tree (see CoordinationServer.sync_from): each committed
        # op is applied once and stamped on every up server's zxid, and a
        # crashing server detaches a frozen private copy.  Round-trip and
        # latency accounting are unaffected — replication cost in a real
        # ensemble is paid by other machines, not this process.
        for server in self.servers[1:]:
            server.sync_from(self.servers[0])
        self._up_count = num_servers
        self.default_session_timeout = default_session_timeout
        self.op_latency = op_latency
        self._zxid = 0
        self._session_counter = 0
        self._sessions: dict[str, Session] = {}
        self._data_watches: dict[str, list[Watcher]] = {}
        self._child_watches: dict[str, list[Watcher]] = {}
        self._lock = traced(threading.RLock(), "CoordinationEnsemble._lock")
        self._op_count = 0
        self._read_round_trips = 0
        self._write_round_trips = 0
        self._multi_count = 0
        self._multi_sub_ops = 0
        self._bytes_written = 0

    # ------------------------------------------------------------------
    # Availability / fault injection
    # ------------------------------------------------------------------

    def up_servers(self) -> list[CoordinationServer]:
        return [server for server in self.servers if server.up]

    def has_quorum(self) -> bool:
        # _up_count is maintained by crash_server/restart_server so the
        # per-operation quorum check does not allocate a server list.
        return self._up_count * 2 > len(self.servers)

    def crash_server(self, index: int) -> None:
        with self._lock:
            server = self.servers[index]
            if server.up:
                server.freeze_copy()
                server.crash()
                self._up_count -= 1

    def restart_server(self, index: int) -> None:
        with self._lock:
            server = self.servers[index]
            if server.up:
                return
            healthy = next((s for s in self.servers if s.up), None)
            if healthy is not None:
                server.sync_from(healthy)
            server.restart()
            self._up_count += 1

    @property
    def op_count(self) -> int:
        """Total number of coordination operations served (I/O proxy)."""
        return self._op_count

    @property
    def write_round_trips(self) -> int:
        """Write operations served, counting a ``multi`` batch as one
        round-trip (the group-commit I/O proxy of the write-path metrics)."""
        return self._write_round_trips

    @property
    def read_round_trips(self) -> int:
        return self._read_round_trips

    @property
    def multi_count(self) -> int:
        """Number of ``multi`` group commits served."""
        return self._multi_count

    @property
    def multi_sub_ops(self) -> int:
        """Total sub-operations carried inside ``multi`` group commits."""
        return self._multi_sub_ops

    @property
    def bytes_written(self) -> int:
        """Total payload bytes accepted by write operations."""
        return self._bytes_written

    def io_stats(self) -> dict[str, int]:
        """Snapshot of the I/O counters (consumed by metrics collectors)."""
        with self._lock:
            return {
                "ops": self._op_count,
                "reads": self._read_round_trips,
                "writes": self._write_round_trips,
                "multi_commits": self._multi_count,
                "multi_sub_ops": self._multi_sub_ops,
                "bytes_written": self._bytes_written,
            }

    def total_znodes(self) -> int:
        with self._lock:
            reference = self._reference_server()
            return reference.count_nodes()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def create_session(self, timeout: float | None = None) -> Session:
        with self._lock:
            self._check_quorum()
            self._session_counter += 1
            session = Session(
                session_id=f"session-{self._session_counter:04d}",
                timeout=timeout or self.default_session_timeout,
                last_heartbeat=self.clock.now(),
            )
            self._sessions[session.session_id] = session
            return session

    def heartbeat(self, session_id: str) -> None:
        """Refresh a session and lazily expire any dead ones."""
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._check_quorum()
            self._expire_dead_sessions(events)
            session = self._sessions.get(session_id)
            if session is None or session.expired:
                self._fire(events)
                raise SessionExpiredError(f"session {session_id} has expired")
            session.last_heartbeat = self.clock.now()
        self._fire(events)

    def close_session(self, session_id: str) -> None:
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._remove_ephemerals(session_id, events)
        self._fire(events)

    def expire_session(self, session_id: str) -> None:
        """Force-expire a session (used by tests and the KILL experiments)."""
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.expired = True
                self._remove_ephemerals(session_id, events)
        self._fire(events)

    def session_is_live(self, session_id: str) -> bool:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or session.expired:
                return False
            return (self.clock.now() - session.last_heartbeat) <= session.timeout

    def tick(self) -> None:
        """Expire dead sessions without touching any session's heartbeat."""
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._expire_dead_sessions(events)
        self._fire(events)

    def _expire_dead_sessions(self, events: list[tuple[Watcher, WatchEvent]]) -> None:
        now = self.clock.now()
        for session in list(self._sessions.values()):
            if not session.expired and now - session.last_heartbeat > session.timeout:
                session.expired = True
                self._remove_ephemerals(session.session_id, events)

    def _remove_ephemerals(self, session_id: str, events: list[tuple[Watcher, WatchEvent]]) -> None:
        reference = self._reference_server()
        ephemeral_paths: list[str] = []

        def collect(node, path: str) -> None:
            for name, child in list(node.children.items()):
                child_path = join_path(path if path != "/" else "/", name)
                if child.ephemeral_owner == session_id:
                    ephemeral_paths.append(child_path)
                collect(child, child_path)

        collect(reference.root, "/")
        for path in ephemeral_paths:
            self._commit_delete(path, events)

    # ------------------------------------------------------------------
    # Znode operations
    # ------------------------------------------------------------------

    def create(
        self,
        session_id: str,
        path: str,
        data: str = "",
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (with sequence suffix)."""
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._prepare_write(session_id)
            reference = self._reference_server()
            parent = parent_path(path)
            if not reference.exists(parent):
                raise NoNodeError(f"parent {parent} does not exist")
            actual_path = path
            if sequential:
                seq = reference.apply_bump_sequence(parent)
                actual_path = f"{path}{seq:010d}"
            if reference.exists(actual_path):
                raise NodeExistsError(f"znode {actual_path} already exists")
            self._zxid += 1
            owner = session_id if ephemeral else None
            reference.apply_create(actual_path, data, owner, self._zxid)
            self._stamp_applied(self._zxid)
            self._queue_watch(self._data_watches, actual_path, "created", events)
            self._queue_watch(self._child_watches, parent, "child", events)
        self._fire(events)
        return actual_path

    def ensure_path(self, session_id: str, path: str) -> None:
        """Create any missing ancestors of ``path`` and ``path`` itself."""
        parts = split_path(path)
        current = ""
        for part in parts:
            current = current + "/" + part
            try:
                self.create(session_id, current)
            except NodeExistsError:
                continue

    def get(self, session_id: str, path: str, watcher: Watcher | None = None) -> tuple[str, Stat]:
        with self._lock:
            self._prepare_read(session_id)
            node = self._reference_server().lookup(path)
            if watcher is not None:
                self._data_watches.setdefault(path, []).append(watcher)
            return node.data, node.stat()

    def set(self, session_id: str, path: str, data: str, version: int = -1) -> Stat:
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._prepare_write(session_id)
            node = self._reference_server().lookup(path)
            if version >= 0 and node.version != version:
                raise BadVersionError(
                    f"version mismatch on {path}: expected {version}, found {node.version}"
                )
            self._zxid += 1
            self._reference_server().apply_set(path, data, self._zxid)
            self._stamp_applied(self._zxid)
            self._queue_watch(self._data_watches, path, "changed", events)
            stat = node.stat()
        self._fire(events)
        return stat

    def upsert(self, session_id: str, path: str, data: str = "") -> None:
        """Set ``path`` to ``data``, creating it (and any missing ancestors)
        in the same operation.

        This is the single-round-trip write primitive behind
        :meth:`~repro.coordination.kvstore.KVStore.put`: the seed
        implementation issued one ``create`` per ancestor (each a quorum
        round) followed by a ``set``; ``upsert`` charges exactly one
        coordination operation.
        """
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._prepare_write(session_id, len(data))
            self._apply_upsert(path, data, events)
        self._fire(events)

    def multi(self, session_id: str, ops: list[tuple]) -> list[str | None]:
        """Apply a batch of write operations in one coordination round-trip
        (group commit, mirroring ZooKeeper's ``multi()``).

        Each op is a tuple:

        * ``("upsert", path, data)`` — set, creating node and ancestors,
        * ``("create", path, data)`` — plain create under an existing
          parent; raises :class:`NodeExistsError` if the node exists (the
          atomic claim primitive behind the workers' exactly-once dispatch
          consumption),
        * ``("create_seq", path_prefix, data)`` — sequential create under
          an existing parent (queue recipe),
        * ``("delete", path, None)`` — recursive delete-if-exists.

        Returns one result per op (the created path for ``create_seq``,
        otherwise ``None``).  The batch is isolated from other clients —
        all sub-operations commit under a single ensemble lock acquisition
        and charge a single operation — and applied in order; if a sub-op
        fails (e.g. a ``create_seq`` under a deleted parent), the earlier
        sub-ops remain applied, their watch events still fire, and the
        error propagates.  Callers needing all-or-nothing semantics must
        ensure each sub-op is individually valid (the persistence layer's
        upsert/delete-if-exists ops cannot fail).
        """
        events: list[tuple[Watcher, WatchEvent]] = []
        results: list[str | None] = []
        for op in ops:
            if op[0] not in ("upsert", "create", "create_seq", "delete"):
                raise ValueError(f"unknown multi op kind {op[0]!r}")
        try:
            with self._lock:
                payload = sum(
                    len(op[2]) for op in ops if len(op) >= 3 and op[2] is not None
                )
                self._prepare_write(session_id, payload)
                self._multi_count += 1
                self._multi_sub_ops += len(ops)
                for op in ops:
                    kind, path = op[0], op[1]
                    data = op[2] if len(op) >= 3 else None
                    if kind == "upsert":
                        self._apply_upsert(path, data or "", events)
                        results.append(None)
                    elif kind == "create":
                        results.append(self._apply_create(path, data or "", events))
                    elif kind == "create_seq":
                        results.append(self._apply_create_seq(path, data or "", events))
                    else:
                        self._apply_delete_recursive(path, events)
                        results.append(None)
        finally:
            # Watchers of already-applied sub-ops must fire even when a
            # later sub-op raises, or consumers blocked on those watches
            # would hang forever.
            self._fire(events)
        return results

    def delete(self, session_id: str, path: str, version: int = -1) -> None:
        events: list[tuple[Watcher, WatchEvent]] = []
        with self._lock:
            self._prepare_write(session_id)
            node = self._reference_server().lookup(path)
            if version >= 0 and node.version != version:
                raise BadVersionError(
                    f"version mismatch on {path}: expected {version}, found {node.version}"
                )
            if node.children:
                raise NotEmptyError(f"znode {path} has children")
            self._commit_delete(path, events)
        self._fire(events)

    def exists(self, session_id: str, path: str, watcher: Watcher | None = None) -> Stat | None:
        with self._lock:
            self._prepare_read(session_id)
            if watcher is not None:
                self._data_watches.setdefault(path, []).append(watcher)
            try:
                return self._reference_server().lookup(path).stat()
            except NoNodeError:
                return None

    def get_children(
        self, session_id: str, path: str, watcher: Watcher | None = None
    ) -> list[str]:
        with self._lock:
            self._prepare_read(session_id)
            node = self._reference_server().lookup(path)
            if watcher is not None:
                self._child_watches.setdefault(path, []).append(watcher)
            return sorted(node.children)

    def remove_data_watch(self, path: str, watcher: Watcher) -> bool:
        """Deregister a one-shot data watch that has not fired (local
        bookkeeping only; no coordination round-trip is charged).  Returns
        whether the watcher was found.  Required by subscribers with
        shorter lifetimes than the watched path — e.g. the per-transaction
        signal subscriptions — so unfired watches do not accumulate."""
        with self._lock:
            watchers = self._data_watches.get(path)
            if not watchers:
                return False
            try:
                watchers.remove(watcher)
            except ValueError:
                return False
            if not watchers:
                del self._data_watches[path]
            return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reference_server(self) -> CoordinationServer:
        for server in self.servers:
            if server.up:
                return server
        raise QuorumLostError("no coordination server is up")

    def _stamp_applied(self, zxid: int) -> None:
        """Record ``zxid`` on every up server.  The tree mutation itself is
        applied once — all up servers share it (see ``__init__``)."""
        for server in self.servers:
            if server.up:
                server.applied_zxid = zxid

    def _check_quorum(self) -> None:
        if not self.has_quorum():
            raise QuorumLostError(
                f"only {len(self.up_servers())}/{len(self.servers)} coordination servers up"
            )

    def _check_session(self, session_id: str) -> None:
        session = self._sessions.get(session_id)
        if session is None or session.expired:
            raise SessionExpiredError(f"session {session_id} has expired")

    def _prepare_write(self, session_id: str, payload_bytes: int = 0) -> None:
        self._charge_latency()
        self._write_round_trips += 1
        self._bytes_written += payload_bytes
        self._check_quorum()
        self._check_session(session_id)

    def _prepare_read(self, session_id: str) -> None:
        self._charge_latency()
        self._read_round_trips += 1
        self._check_quorum()
        self._check_session(session_id)

    # -- multi/upsert sub-operation appliers ----------------------------

    def _apply_upsert(
        self, path: str, data: str, events: list[tuple[Watcher, WatchEvent]]
    ) -> None:
        """Create-or-set ``path`` (creating missing ancestors), firing the
        same watches the equivalent create/set sequence would fire.

        The overwhelmingly common case — the node already exists — is a
        single path-index probe; otherwise the deepest existing prefix is
        found by probing upward from the leaf (instead of one existence
        probe per ancestor per call).
        """
        reference = self._reference_server()
        parts = split_path(path)
        if reference.node_at(parts) is not None:
            self._zxid += 1
            reference.apply_set(path, data, self._zxid)
            self._stamp_applied(self._zxid)
            self._queue_watch(self._data_watches, path, "changed", events)
            return
        # Probe upward for the deepest existing prefix (missing nodes are
        # usually leaves, so this terminates after one or two probes).
        existing_depth = len(parts) - 1
        while existing_depth and reference.node_at(parts[:existing_depth]) is None:
            existing_depth -= 1
        current = "/" + "/".join(parts[:existing_depth]) if existing_depth else ""
        for index in range(existing_depth, len(parts)):
            current = current + "/" + parts[index]
            is_leaf = index == len(parts) - 1
            self._zxid += 1
            reference.apply_create(current, data if is_leaf else "", None, self._zxid)
            self._queue_watch(self._data_watches, current, "created", events)
            self._queue_watch(self._child_watches, parent_path(current), "child", events)
        self._stamp_applied(self._zxid)

    def _apply_create(
        self, path: str, data: str, events: list[tuple[Watcher, WatchEvent]]
    ) -> str:
        reference = self._reference_server()
        parts = split_path(path)
        if reference.node_at(parts[:-1]) is None:
            raise NoNodeError(f"parent {parent_path(path)} does not exist")
        if reference.node_at(parts) is not None:
            raise NodeExistsError(f"znode {path} already exists")
        self._zxid += 1
        reference.apply_create(path, data, None, self._zxid)
        self._stamp_applied(self._zxid)
        self._queue_watch(self._data_watches, path, "created", events)
        self._queue_watch(self._child_watches, parent_path(path), "child", events)
        return path

    def _apply_create_seq(
        self, path_prefix: str, data: str, events: list[tuple[Watcher, WatchEvent]]
    ) -> str:
        reference = self._reference_server()
        parent = parent_path(path_prefix)
        if reference.node_at(split_path(parent)) is None:
            raise NoNodeError(f"parent {parent} does not exist")
        seq = reference.apply_bump_sequence(parent)
        actual_path = f"{path_prefix}{seq:010d}"
        if reference.node_at(split_path(actual_path)) is not None:
            raise NodeExistsError(f"znode {actual_path} already exists")
        self._zxid += 1
        reference.apply_create(actual_path, data, None, self._zxid)
        self._stamp_applied(self._zxid)
        self._queue_watch(self._data_watches, actual_path, "created", events)
        self._queue_watch(self._child_watches, parent, "child", events)
        return actual_path

    def _apply_delete_recursive(
        self, path: str, events: list[tuple[Watcher, WatchEvent]]
    ) -> None:
        reference = self._reference_server()
        try:
            node = reference.lookup(path)
        except NoNodeError:
            return
        for name in list(node.children):
            child_path = join_path(path if path != "/" else "/", name)
            self._apply_delete_recursive(child_path, events)
        self._commit_delete(path, events)

    def _charge_latency(self) -> None:
        self._op_count += 1
        if self.op_latency > 0:
            self.clock.sleep(self.op_latency)

    def _commit_delete(self, path: str, events: list[tuple[Watcher, WatchEvent]]) -> None:
        self._zxid += 1
        self._reference_server().apply_delete(path, self._zxid)
        self._stamp_applied(self._zxid)
        self._queue_watch(self._data_watches, path, "deleted", events)
        self._queue_watch(self._child_watches, parent_path(path), "child", events)

    def _queue_watch(
        self,
        registry: dict[str, list[Watcher]],
        path: str,
        kind: str,
        events: list[tuple[Watcher, WatchEvent]],
    ) -> None:
        watchers = registry.pop(path, [])
        for watcher in watchers:
            events.append((watcher, WatchEvent(kind=kind, path=path)))

    @staticmethod
    def _fire(events: list[tuple[Watcher, WatchEvent]]) -> None:
        for watcher, event in events:
            try:
                watcher(event)
            except Exception:  # noqa: BLE001 - watcher bugs must not corrupt the ensemble
                pass
