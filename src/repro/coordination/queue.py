"""Distributed FIFO queue recipe (inputQ / phyQ).

TROPIC decouples clients, controllers and workers with highly available
queues hosted in the coordination service (Figure 1).  The queue is the
standard sequential-znode recipe: ``put`` creates a sequential child under
the queue path; consumers take the lowest-sequence child and delete it.
Deletion is atomic, so two workers polling the same queue never both obtain
the same item.  Idle consumers park on a child watch (zero coordination
operations until a producer wakes them); the take/ack split carries the
at-least-once redelivery contract leader failover depends on.  Queue
topology per shard is documented in
``docs/architecture.md#coordination-namespaces``.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.clock import Clock, RealClock
from repro.common.errors import NoNodeError, SessionExpiredError
from repro.common.jsonutil import dumps, loads
from repro.coordination.client import CoordinationClient

#: Sentinel distinguishing "no item claimed" from a claimed ``None`` item.
_NOTHING = object()


class DistributedQueue:
    """FIFO queue of JSON-serialisable items backed by the coordination store.

    With ``reconnect_on_expiry=True`` the blocking consumer (:meth:`get`)
    survives coordination-session expiry: the child watch registered under
    the dead session is gone, so the consumer reconnects the client and
    re-enters the listing loop, which both re-reads any children it may
    have missed and re-arms a fresh watch.  The wakeup contract is
    therefore **at-least-once**: a consumer may be woken (or re-list) with
    nothing to claim after a recovery, but a ``put`` that happened while
    the session was dead is never missed.  ``counters`` (optional, any
    object with ``session_expiries``/``watch_rearms`` attributes, e.g.
    :class:`~repro.metrics.collectors.ResilienceCounters`) records the
    recoveries.
    """

    def __init__(
        self,
        client: CoordinationClient,
        path: str,
        clock: Clock | None = None,
        counters: Any | None = None,
        reconnect_on_expiry: bool = False,
    ):
        self.client = client
        self.path = path.rstrip("/")
        self.clock = clock or RealClock()
        self.counters = counters
        self.reconnect_on_expiry = reconnect_on_expiry
        self.client.ensure_path(self.path)

    def _recover_session(self) -> bool:
        """Re-establish an expired session (opt-in); returns whether the
        caller should retry the failed operation."""
        if not self.reconnect_on_expiry:
            return False
        if not self.client.is_live():
            self.client.reconnect()
            if self.counters is not None:
                self.counters.session_expiries += 1
        return True

    # -- producers -------------------------------------------------------

    def put(self, item: Any) -> str:
        """Enqueue an item; returns the znode name assigned to it."""
        created = self.client.create(f"{self.path}/item-", dumps(item), sequential=True)
        return created.rsplit("/", 1)[-1]

    def put_many(self, items: list[Any]) -> list[str]:
        """Enqueue several items in one coordination round-trip (group
        commit); returns the znode names assigned, in order."""
        if not items:
            return []
        if len(items) == 1:
            return [self.put(items[0])]
        results = self.client.multi(
            [("create_seq", f"{self.path}/item-", dumps(item)) for item in items]
        )
        return [created.rsplit("/", 1)[-1] for created in results if created]

    # -- consumers -------------------------------------------------------

    def poll(self) -> Any | None:
        """Dequeue the oldest item, or return ``None`` if the queue is empty."""
        while True:
            children = sorted(self.client.get_children(self.path))
            if not children:
                return None
            claimed = self._claim_one(children)
            if claimed is not _NOTHING:
                return claimed
            # All candidates vanished under us; retry the listing.

    def _claim_one(self, children: list[str]) -> Any:
        """Atomically claim the oldest of ``children``; returns the item or
        ``_NOTHING`` when every candidate was taken by another consumer."""
        for name in children:
            item_path = f"{self.path}/{name}"
            try:
                data, _ = self.client.get(item_path)
                self.client.delete(item_path)
            except NoNodeError:
                continue  # another consumer raced us; try the next item
            return loads(data)
        return _NOTHING

    def poll_many(self, limit: int) -> list[Any]:
        """Dequeue up to ``limit`` items, oldest first (one child listing
        instead of one per item).  Each item is still claimed by its own
        atomic delete, so concurrent consumers never share an item."""
        items: list[Any] = []
        if limit <= 0:
            return items
        children = sorted(self.client.get_children(self.path))
        for name in children[:limit]:
            item_path = f"{self.path}/{name}"
            try:
                data, _ = self.client.get(item_path)
                self.client.delete(item_path)
            except NoNodeError:
                continue  # another consumer raced us
            items.append(loads(data))
        return items

    def get(self, timeout: float | None = None, poll_interval: float = 0.002) -> Any | None:
        """Blocking dequeue with an optional timeout (None waits forever).

        Watch-driven: while the queue is empty the consumer parks on a
        child watch registered with the (single) listing round-trip, so an
        idle consumer issues **zero** further coordination operations until
        a producer's ``put`` fires the watch.  ``poll_interval`` no longer
        paces store polling — it only bounds how often the timeout deadline
        is re-checked while parked.
        """
        deadline = None if timeout is None else self.clock.now() + timeout
        while True:
            wakeup = threading.Event()
            try:
                children = sorted(
                    self.client.get_children(self.path, lambda event: wakeup.set())
                )
                if children:
                    claimed = self._claim_one(children)
                    if claimed is not _NOTHING:
                        return claimed
                    continue  # raced by other consumers; re-list immediately
            except SessionExpiredError:
                # The watch (if registered) died with the session; recover
                # and re-list rather than strand the consumer.  A deadline
                # set by the caller still applies across the recovery.
                if not self._recover_session():
                    raise
                if deadline is not None and self.clock.now() >= deadline:
                    return None
                if self.counters is not None:
                    self.counters.watch_rearms += 1
                continue
            # Idle: wait for the child watch (no store round-trips).  The
            # deadline is re-read on the platform clock every slice, so a
            # simulated clock advanced by another thread still times the
            # consumer out without any store traffic.
            while not wakeup.is_set():
                if deadline is not None and self.clock.now() >= deadline:
                    return None
                wakeup.wait(poll_interval)

    def take(self) -> tuple[str, Any] | None:
        """Return ``(item_name, item)`` for the oldest item *without* removing it.

        Combined with :meth:`ack`, this gives at-least-once consumption: the
        TROPIC controller only acknowledges an inputQ item after the
        corresponding state change has been persisted, so a leader crash
        between the two re-delivers the item to the next leader, which
        handles it idempotently (§2.3).
        """
        children = sorted(self.client.get_children(self.path))
        for name in children:
            try:
                data, _ = self.client.get(f"{self.path}/{name}")
            except NoNodeError:
                continue
            return name, loads(data)
        return None

    def take_many(
        self, limit: int, exclude: "set[str] | frozenset[str] | tuple" = ()
    ) -> list[tuple[str, Any]]:
        """Return up to ``limit`` ``(item_name, item)`` pairs, oldest first,
        *without* removing them (batched form of :meth:`take`).

        The controller drains its inputQ through this: all taken messages
        are processed and their state changes group-committed before any is
        acknowledged, preserving the at-least-once/idempotent-handling
        contract of §2.3 across the whole batch.

        ``exclude`` names items to skip without consuming window slots:
        the pipelined controller passes the items it has taken but not
        yet acknowledged (their acks await a pending group commit), so a
        depth-``N`` commit window never re-takes the queue head.
        """
        taken: list[tuple[str, Any]] = []
        if limit <= 0:
            return taken
        children = sorted(self.client.get_children(self.path))
        if exclude:
            children = [name for name in children if name not in exclude]
        for name in children[:limit]:
            try:
                data, _ = self.client.get(f"{self.path}/{name}")
            except NoNodeError:
                continue
            taken.append((name, loads(data)))
        return taken

    def ack(self, name: str) -> bool:
        """Remove a previously taken item; returns False if already gone."""
        try:
            self.client.delete(f"{self.path}/{name}")
            return True
        except NoNodeError:
            return False

    def ack_many(self, names: list[str]) -> int:
        """Remove a batch of previously taken items in one round-trip."""
        if not names:
            return 0
        if len(names) == 1:
            return 1 if self.ack(names[0]) else 0
        self.client.multi([("delete", f"{self.path}/{name}", None) for name in names])
        return len(names)

    # -- inspection --------------------------------------------------------

    def peek(self) -> Any | None:
        """Return the oldest item without removing it."""
        children = sorted(self.client.get_children(self.path))
        for name in children:
            try:
                data, _ = self.client.get(f"{self.path}/{name}")
            except NoNodeError:
                continue
            return loads(data)
        return None

    def size(self) -> int:
        return len(self.client.get_children(self.path))

    def is_empty(self) -> bool:
        return self.size() == 0

    def drain(self) -> list[Any]:
        """Remove and return every queued item (used in recovery and tests)."""
        items = []
        while True:
            item = self.poll()
            if item is None:
                return items
            items.append(item)
