"""Distributed FIFO queue recipe (inputQ / phyQ).

TROPIC decouples clients, controllers and workers with highly available
queues hosted in the coordination service (Figure 1).  The queue is the
standard sequential-znode recipe: ``put`` creates a sequential child under
the queue path; consumers take the lowest-sequence child and delete it.
Deletion is atomic, so two workers polling the same queue never both obtain
the same item.
"""

from __future__ import annotations

from typing import Any

from repro.common.clock import Clock, RealClock
from repro.common.errors import NoNodeError
from repro.common.jsonutil import dumps, loads
from repro.coordination.client import CoordinationClient


class DistributedQueue:
    """FIFO queue of JSON-serialisable items backed by the coordination store."""

    def __init__(self, client: CoordinationClient, path: str, clock: Clock | None = None):
        self.client = client
        self.path = path.rstrip("/")
        self.clock = clock or RealClock()
        self.client.ensure_path(self.path)

    # -- producers -------------------------------------------------------

    def put(self, item: Any) -> str:
        """Enqueue an item; returns the znode name assigned to it."""
        created = self.client.create(f"{self.path}/item-", dumps(item), sequential=True)
        return created.rsplit("/", 1)[-1]

    # -- consumers -------------------------------------------------------

    def poll(self) -> Any | None:
        """Dequeue the oldest item, or return ``None`` if the queue is empty."""
        while True:
            children = sorted(self.client.get_children(self.path))
            if not children:
                return None
            for name in children:
                item_path = f"{self.path}/{name}"
                try:
                    data, _ = self.client.get(item_path)
                    self.client.delete(item_path)
                except NoNodeError:
                    continue  # another consumer raced us; try the next item
                return loads(data)
            # All candidates vanished under us; retry the listing.

    def get(self, timeout: float | None = None, poll_interval: float = 0.002) -> Any | None:
        """Blocking dequeue with an optional timeout (None waits forever)."""
        deadline = None if timeout is None else self.clock.now() + timeout
        while True:
            item = self.poll()
            if item is not None:
                return item
            if deadline is not None and self.clock.now() >= deadline:
                return None
            self.clock.sleep(poll_interval)

    def take(self) -> tuple[str, Any] | None:
        """Return ``(item_name, item)`` for the oldest item *without* removing it.

        Combined with :meth:`ack`, this gives at-least-once consumption: the
        TROPIC controller only acknowledges an inputQ item after the
        corresponding state change has been persisted, so a leader crash
        between the two re-delivers the item to the next leader, which
        handles it idempotently (§2.3).
        """
        children = sorted(self.client.get_children(self.path))
        for name in children:
            try:
                data, _ = self.client.get(f"{self.path}/{name}")
            except NoNodeError:
                continue
            return name, loads(data)
        return None

    def ack(self, name: str) -> bool:
        """Remove a previously taken item; returns False if already gone."""
        try:
            self.client.delete(f"{self.path}/{name}")
            return True
        except NoNodeError:
            return False

    # -- inspection --------------------------------------------------------

    def peek(self) -> Any | None:
        """Return the oldest item without removing it."""
        children = sorted(self.client.get_children(self.path))
        for name in children:
            try:
                data, _ = self.client.get(f"{self.path}/{name}")
            except NoNodeError:
                continue
            return loads(data)
        return None

    def size(self) -> int:
        return len(self.client.get_children(self.path))

    def is_empty(self) -> bool:
        return self.size() == 0

    def drain(self) -> list[Any]:
        """Remove and return every queued item (used in recovery and tests)."""
        items = []
        while True:
            item = self.poll()
            if item is None:
                return items
            items.append(item)
