"""Coordination substrate (ZooKeeper stand-in).

TROPIC (§2.3, §5) relies on ZooKeeper for three things:

* a replicated, strongly consistent persistent store for transaction state,
  execution logs and the data-model checkpoint,
* highly available distributed queues (``inputQ`` and ``phyQ``) decoupling
  clients, controllers and workers, and
* quorum-based leader election among controller replicas, with failure
  detection driven by session heartbeats.

This package provides an in-process reproduction of those primitives:
znodes with versions, ephemeral and sequential nodes, one-shot watches,
sessions with heartbeat expiry, quorum writes over a set of crashable
replica servers, and the queue / election / key-value recipes built on top.
"""

from repro.coordination.znode import Stat, ZNode
from repro.coordination.server import CoordinationServer
from repro.coordination.ensemble import CoordinationEnsemble, Session, WatchEvent
from repro.coordination.client import CoordinationClient
from repro.coordination.queue import DistributedQueue
from repro.coordination.election import LeaderElection
from repro.coordination.kvstore import KVStore

__all__ = [
    "Stat",
    "ZNode",
    "CoordinationServer",
    "CoordinationEnsemble",
    "Session",
    "WatchEvent",
    "CoordinationClient",
    "DistributedQueue",
    "LeaderElection",
    "KVStore",
]
