"""Quorum-based leader election recipe (§2.3).

Each controller volunteers by creating an ephemeral sequential znode under
the election path.  The participant owning the lowest sequence number is the
leader.  When the leader's session expires (missed heartbeats), its znode is
removed and the next-lowest participant becomes leader — this is the
follower-takes-over mechanism whose detection delay dominates the recovery
time measured in §6.4.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import NoNodeError
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import WatchEvent


class LeaderElection:
    """One participant in a leader election."""

    def __init__(
        self,
        client: CoordinationClient,
        election_path: str,
        participant_name: str,
        on_change: Callable[[bool], None] | None = None,
    ):
        self.client = client
        self.election_path = election_path.rstrip("/")
        self.participant_name = participant_name
        self.on_change = on_change
        self._member_path: str | None = None
        self._was_leader = False
        self.client.ensure_path(self.election_path)

    # -- participation ------------------------------------------------------

    def volunteer(self) -> str:
        """Join the election; returns the member znode path."""
        if self._member_path is not None:
            return self._member_path
        self._member_path = self.client.create(
            f"{self.election_path}/member-",
            data=self.participant_name,
            ephemeral=True,
            sequential=True,
        )
        self._watch_children()
        return self._member_path

    def resign(self) -> None:
        """Leave the election (e.g. on graceful shutdown)."""
        if self._member_path is not None:
            try:
                self.client.delete(self._member_path)
            except NoNodeError:
                pass
            self._member_path = None
        self._notify()

    def rejoin(self) -> str:
        """Re-volunteer after a session expiry created a fresh session."""
        self._member_path = None
        return self.volunteer()

    # -- queries ------------------------------------------------------------

    def members(self) -> list[tuple[str, str]]:
        """Return ``(znode_name, participant_name)`` sorted by sequence."""
        result = []
        for name in sorted(self.client.get_children(self.election_path)):
            try:
                data, _ = self.client.get(f"{self.election_path}/{name}")
            except NoNodeError:
                continue
            result.append((name, data))
        return result

    def current_leader(self) -> str | None:
        """Participant name of the current leader, or ``None``."""
        members = self.members()
        if not members:
            return None
        return members[0][1]

    def is_leader(self) -> bool:
        """True if this participant currently owns the lowest sequence node."""
        if self._member_path is None:
            return False
        my_name = self._member_path.rsplit("/", 1)[-1]
        members = [name for name, _ in self.members()]
        leader = members[0] if members else None
        result = leader == my_name
        self._was_leader = result
        return result

    # -- internals ------------------------------------------------------------

    def _watch_children(self) -> None:
        def watcher(event: WatchEvent) -> None:
            self._notify()
            try:
                self.client.get_children(self.election_path, watcher)
            except Exception:  # noqa: BLE001 - ensemble may be unavailable during teardown
                pass

        self.client.get_children(self.election_path, watcher)

    def _notify(self) -> None:
        if self.on_change is None:
            return
        try:
            self.on_change(self.is_leader())
        except Exception:  # noqa: BLE001 - observer bugs must not break election bookkeeping
            pass
