"""A single coordination replica server.

Each server holds a full copy of the znode tree.  The ensemble applies
committed operations to every *up* server; a write succeeds only if a
majority of servers are up (quorum), mirroring ZooKeeper's availability
model.  Crashing and restarting servers lets tests and the §6.4 experiment
exercise the platform's behaviour under coordination-service failures.
"""

from __future__ import annotations

from repro.common.errors import NoNodeError
from repro.coordination.znode import ZNode, split_path


class CoordinationServer:
    """One replica of the coordination tree."""

    def __init__(self, server_id: str):
        self.server_id = server_id
        self.root = ZNode(path="/")
        self.up = True
        self.applied_zxid = 0

    # -- availability ----------------------------------------------------

    def crash(self) -> None:
        """Simulate a server crash.  State is retained (ZooKeeper persists its
        log to disk) but the server stops serving until restarted."""
        self.up = False

    def restart(self) -> None:
        self.up = True

    def sync_from(self, other: "CoordinationServer") -> None:
        """Catch up from a healthy replica after a restart."""
        self.root = other.root.clone()
        self.applied_zxid = other.applied_zxid

    # -- tree access -------------------------------------------------------

    def lookup(self, path: str) -> ZNode:
        node = self.root
        for part in split_path(path):
            child = node.children.get(part)
            if child is None:
                raise NoNodeError(f"no znode at {path}")
            node = child
        return node

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except NoNodeError:
            return False

    # -- applying committed operations --------------------------------------

    def apply_create(self, path: str, data: str, ephemeral_owner: str | None, zxid: int) -> None:
        parts = split_path(path)
        parent = self.root
        for part in parts[:-1]:
            parent = parent.children[part]
        node = ZNode(
            path=path,
            data=data,
            czxid=zxid,
            mzxid=zxid,
            ephemeral_owner=ephemeral_owner,
        )
        parent.children[parts[-1]] = node
        self.applied_zxid = zxid

    def apply_set(self, path: str, data: str, zxid: int) -> None:
        node = self.lookup(path)
        node.data = data
        node.version += 1
        node.mzxid = zxid
        self.applied_zxid = zxid

    def apply_delete(self, path: str, zxid: int) -> None:
        parts = split_path(path)
        parent = self.root
        for part in parts[:-1]:
            parent = parent.children[part]
        parent.children.pop(parts[-1], None)
        self.applied_zxid = zxid

    def apply_bump_sequence(self, path: str) -> int:
        node = self.lookup(path)
        node.sequence_counter += 1
        return node.sequence_counter

    def count_nodes(self) -> int:
        def count(node: ZNode) -> int:
            return 1 + sum(count(child) for child in node.children.values())

        return count(self.root)
