"""A single coordination replica server.

Each server presents a full copy of the znode tree.  A write succeeds only
if a majority of servers are up (quorum), mirroring ZooKeeper's
availability model.  Because every committed op reaches every up server
and a restarted server syncs before serving, in-sync replicas are
byte-identical — so they *share* one physical tree, the ensemble applies
each op once, and a crashing server detaches a private frozen copy
(replication CPU on one simulated host would otherwise be charged N times
for work real replicas do on other machines).  Crashing and restarting
servers lets tests and the §6.4 experiment exercise the platform's
behaviour under coordination-service failures.
"""

from __future__ import annotations

from repro.common.errors import NoNodeError
from repro.coordination.znode import ZNode, split_path


class CoordinationServer:
    """One replica of the coordination tree."""

    def __init__(self, server_id: str):
        self.server_id = server_id
        self.root = ZNode(path="/")
        self.up = True
        self.applied_zxid = 0
        # Flat path index over the tree: split-path tuple -> node.  Every
        # committed op is applied to every up server, so the per-op tree
        # walk used to dominate coordination CPU; the index turns lookup
        # and the parent resolution of create/delete into one dict hit.
        # The tree (node.children) stays authoritative — the index is
        # rebuilt wholesale whenever the tree is replaced (sync_from).
        self._index: dict[tuple[str, ...], ZNode] = {(): self.root}

    # -- availability ----------------------------------------------------

    def crash(self) -> None:
        """Simulate a server crash.  State is retained (ZooKeeper persists its
        log to disk) but the server stops serving until restarted."""
        self.up = False

    def restart(self) -> None:
        self.up = True

    def sync_from(self, other: "CoordinationServer") -> None:
        """Catch up from a healthy replica after a restart.

        Joins ``other``'s share group: up replicas are byte-identical by
        construction (every committed op is applied to all of them, and a
        restarted server syncs before serving), so in-sync servers share
        one physical tree and the ensemble applies each op once.  A
        crashing server detaches a private frozen copy first
        (:meth:`freeze_copy`), which is what preserves the
        state-at-crash-point semantics of a real replica's disk log.
        """
        self.root = other.root
        self.applied_zxid = other.applied_zxid
        self._index = other._index

    def freeze_copy(self) -> None:
        """Detach from the share group, keeping a private deep copy of the
        current tree (called when this server crashes, so the survivors'
        continued writes do not leak into its frozen state)."""
        self.root = self.root.clone()
        self._index = {(): self.root}
        self._reindex(self.root, ())

    def _reindex(self, node: ZNode, parts: tuple[str, ...]) -> None:
        for name, child in node.children.items():
            child_parts = parts + (name,)
            self._index[child_parts] = child
            self._reindex(child, child_parts)

    # -- tree access -------------------------------------------------------

    def lookup(self, path: str) -> ZNode:
        node = self._index.get(split_path(path))
        if node is None:
            raise NoNodeError(f"no znode at {path}")
        return node

    def exists(self, path: str) -> bool:
        return split_path(path) in self._index

    def node_at(self, parts: tuple[str, ...]) -> ZNode | None:
        """Index probe by pre-split path (``None`` if absent); lets batch
        appliers test several candidate paths without re-splitting."""
        return self._index.get(parts)

    # -- applying committed operations --------------------------------------

    def apply_create(self, path: str, data: str, ephemeral_owner: str | None, zxid: int) -> None:
        parts = split_path(path)
        parent = self._index[parts[:-1]]
        node = ZNode(path, data, 0, zxid, zxid, ephemeral_owner)
        parent.children[parts[-1]] = node
        self._index[parts] = node
        self.applied_zxid = zxid

    def apply_set(self, path: str, data: str, zxid: int) -> None:
        node = self.lookup(path)
        node.data = data
        node.version += 1
        node.mzxid = zxid
        self.applied_zxid = zxid

    def apply_delete(self, path: str, zxid: int) -> None:
        parts = split_path(path)
        parent = self._index[parts[:-1]]
        node = parent.children.pop(parts[-1], None)
        if node is not None:
            del self._index[parts]
            if node.children:
                self._unindex(node, parts)
        self.applied_zxid = zxid

    def _unindex(self, node: ZNode, parts: tuple[str, ...]) -> None:
        for name, child in node.children.items():
            child_parts = parts + (name,)
            self._index.pop(child_parts, None)
            if child.children:
                self._unindex(child, child_parts)

    def apply_bump_sequence(self, path: str) -> int:
        node = self.lookup(path)
        node.sequence_counter += 1
        return node.sequence_counter

    def count_nodes(self) -> int:
        def count(node: ZNode) -> int:
            return 1 + sum(count(child) for child in node.children.values())

        return count(self.root)
