"""Client handle to the coordination ensemble (one session per client)."""

from __future__ import annotations

from typing import Callable

from repro.common.errors import NodeExistsError, NoNodeError
from repro.coordination.ensemble import CoordinationEnsemble, Session, WatchEvent
from repro.coordination.znode import Stat


class CoordinationClient:
    """A session-scoped handle mirroring the ZooKeeper client API surface
    used by TROPIC: create/get/set/delete/exists/get_children, ephemeral and
    sequential nodes, one-shot watches, and heartbeats."""

    def __init__(self, ensemble: CoordinationEnsemble, session_timeout: float | None = None):
        self.ensemble = ensemble
        self._session_timeout = session_timeout
        self._session: Session = ensemble.create_session(session_timeout)

    # -- session --------------------------------------------------------

    @property
    def session_id(self) -> str:
        return self._session.session_id

    def heartbeat(self) -> None:
        self.ensemble.heartbeat(self.session_id)

    def close(self) -> None:
        self.ensemble.close_session(self.session_id)

    def is_live(self) -> bool:
        return self.ensemble.session_is_live(self.session_id)

    def reconnect(self, session_timeout: float | None = None) -> None:
        """Open a fresh session (after expiry of the previous one).

        Without an explicit ``session_timeout`` the new session keeps the
        timeout this client was constructed with — a long-session client
        must not silently downgrade to the ensemble default on recovery.
        """
        if session_timeout is not None:
            self._session_timeout = session_timeout
        self._session = self.ensemble.create_session(self._session_timeout)

    # -- znode API --------------------------------------------------------

    def create(
        self,
        path: str,
        data: str = "",
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> str:
        return self.ensemble.create(self.session_id, path, data, ephemeral, sequential)

    def ensure_path(self, path: str) -> None:
        self.ensemble.ensure_path(self.session_id, path)

    def get(self, path: str, watcher: Callable[[WatchEvent], None] | None = None) -> tuple[str, Stat]:
        return self.ensemble.get(self.session_id, path, watcher)

    def get_data(self, path: str, default: str | None = None) -> str | None:
        """Return the data at ``path`` or ``default`` if it does not exist."""
        try:
            data, _ = self.get(path)
            return data
        except NoNodeError:
            return default

    def set(self, path: str, data: str, version: int = -1) -> Stat:
        return self.ensemble.set(self.session_id, path, data, version)

    def set_or_create(self, path: str, data: str) -> None:
        """Upsert helper used by the persistence layer."""
        try:
            self.create(path, data)
        except NodeExistsError:
            self.set(path, data)
        except NoNodeError:
            self.ensure_path(path)
            self.set(path, data)

    def upsert(self, path: str, data: str = "") -> None:
        """Single-round-trip set-or-create, creating missing ancestors."""
        self.ensemble.upsert(self.session_id, path, data)

    def multi(self, ops: list[tuple]) -> list[str | None]:
        """Apply a batch of write ops in one round-trip (group commit)."""
        return self.ensemble.multi(self.session_id, ops)

    def delete(self, path: str, version: int = -1) -> None:
        self.ensemble.delete(self.session_id, path, version)

    def delete_if_exists(self, path: str) -> bool:
        try:
            self.delete(path)
            return True
        except NoNodeError:
            return False

    def exists(self, path: str, watcher: Callable[[WatchEvent], None] | None = None) -> Stat | None:
        return self.ensemble.exists(self.session_id, path, watcher)

    def get_children(
        self, path: str, watcher: Callable[[WatchEvent], None] | None = None
    ) -> list[str]:
        return self.ensemble.get_children(self.session_id, path, watcher)

    def remove_data_watch(self, path: str, watcher: Callable[[WatchEvent], None]) -> bool:
        """Deregister an unfired one-shot data watch (local bookkeeping)."""
        return self.ensemble.remove_data_watch(path, watcher)

    def __repr__(self) -> str:
        return f"<CoordinationClient session={self.session_id}>"
