"""JSON document store facade over the coordination service.

TROPIC "unconventionally" uses ZooKeeper as its highly available persistent
storage engine for transaction states and logs (§5).  :class:`KVStore`
provides the small document-oriented API the persistence layer needs:
``put``/``get``/``delete`` of JSON values keyed by slash-separated paths,
plus listing of child keys.

Two write-path optimisations live here:

* every ``put`` is a single coordination round-trip (``upsert``), instead
  of the seed's one-create-per-ancestor-plus-set sequence, and
* a :class:`WriteBatch` coalesces many puts/deletes into one ``multi``
  group commit — the controller wraps each main-loop iteration in a batch,
  so all state transitions persisted during that iteration cost one
  coordination write round-trip.

Watches (:meth:`KVStore.watch` / :meth:`KVStore.watch_children`) are the
read-side counterpart: signal observers, idle queue consumers and the
read replicas all park on one-shot watches instead of polling.  See
``docs/architecture.md#the-write-path`` and
``docs/architecture.md#the-read-path-replicas-and-the-readproxy``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.common.errors import NoNodeError
from repro.common.jsonutil import dumps, loads
from repro.coordination.client import CoordinationClient

#: Sentinel distinguishing "key deleted in batch" from "key not in batch".
_TOMBSTONE = object()


class WriteBatch:
    """A buffered set of put/delete operations committed as one ``multi``.

    Later operations on the same key overwrite earlier ones (last-writer
    wins), so a transaction that transitions through several states within
    one controller loop iteration is persisted exactly once.
    """

    def __init__(self) -> None:
        # key -> serialized JSON text, or _TOMBSTONE for deletions.
        self._ops: dict[str, Any] = {}
        self.coalesced = 0

    def put(self, key: str, data: str) -> None:
        if key in self._ops:
            self.coalesced += 1
        self._ops[key] = data

    def delete(self, key: str) -> None:
        if key in self._ops:
            self.coalesced += 1
        self._ops[key] = _TOMBSTONE

    def pending(self, key: str) -> Any:
        """The buffered value for ``key``: serialized text, ``_TOMBSTONE``,
        or ``None`` when the batch does not touch the key."""
        return self._ops.get(key)

    def pending_children(self, prefix: str) -> Iterator[tuple[str, Any]]:
        """Yield ``(key, value)`` pairs the batch holds under ``prefix/``."""
        lead = prefix + "/" if prefix else ""
        for key, value in self._ops.items():
            if key.startswith(lead):
                yield key, value

    def __len__(self) -> int:
        return len(self._ops)

    def is_empty(self) -> bool:
        return not self._ops


class KVStore:
    """A namespaced JSON key-value store on top of the coordination tree."""

    def __init__(self, client: CoordinationClient, prefix: str = "/tropic"):
        self.client = client
        self.prefix = prefix.rstrip("/")
        self.client.ensure_path(self.prefix)
        # Batch state is thread-local: in the threaded runtime several
        # controller replicas, workers and the maintenance daemon share
        # one store, and a batch scope belongs to exactly one thread's
        # loop iteration — writes from other threads must not be captured
        # by (or lost with) it.
        self._local = threading.local()
        # Sealed-batch read overlay (the leader's commit pipeline): batches
        # detached from the thread-local scope but not yet flushed.  Only
        # the thread that sealed them (the CPU stage) reads through them —
        # every other thread sees durable state only, which is exactly the
        # ack-after-durable visibility external observers must get.
        self._sealed: tuple[WriteBatch, ...] = ()
        self._sealed_thread: int | None = None
        # -- write-path instrumentation ---------------------------------
        self.puts = 0
        self.deletes = 0
        self.batch_commits = 0
        self.writes_coalesced = 0
        self.bytes_serialized = 0
        self.direct_ops = 0

    @property
    def _batch(self) -> WriteBatch | None:
        return getattr(self._local, "batch", None)

    @_batch.setter
    def _batch(self, value: "WriteBatch | None") -> None:
        self._local.batch = value

    @property
    def _batch_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @_batch_depth.setter
    def _batch_depth(self, value: int) -> None:
        self._local.depth = value

    def _full(self, key: str) -> str:
        key = key.strip("/")
        return f"{self.prefix}/{key}" if key else self.prefix

    def full_key(self, key: str) -> str:
        """Absolute coordination path of ``key`` (for callers composing
        raw client operations, e.g. the workers' claim-and-ack multi)."""
        return self._full(key)

    # -- document operations ----------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Upsert a JSON document, creating intermediate keys as needed."""
        self.put_serialized(key, dumps(value))

    def put_serialized(self, key: str, data: str) -> None:
        """Upsert a document already serialized to deterministic JSON.

        The delta-aware transaction persistence builds document text from
        cached field fragments; this entry point lets it skip re-encoding.
        """
        self.puts += 1
        self.bytes_serialized += len(data)
        if self._batch is not None:
            self._batch.put(key, data)
            return
        self.direct_ops += 1
        self.client.upsert(self._full(key), data)

    def get(self, key: str, default: Any = None) -> Any:
        if self._batch is not None:
            pending = self._batch.pending(key)
            if pending is _TOMBSTONE:
                return default
            if pending is not None:
                return loads(pending)
        if self._sealed:
            pending = self._sealed_pending(key)
            if pending is _TOMBSTONE:
                return default
            if pending is not None:
                return loads(pending)
        data = self.client.get_data(self._full(key))
        if data is None or data == "":
            return default
        return loads(data)

    def watch(self, key: str, watcher: Any) -> bool:
        """Register a one-shot watch on ``key``; returns whether the key
        currently exists.  The watcher fires on the next create/change/
        delete of the key — the ZooKeeper idiom for observing rare events
        (e.g. TERM signals) without polling."""
        return self.client.exists(self._full(key), watcher) is not None

    def unwatch(self, key: str, watcher: Any) -> bool:
        """Deregister an unfired watch placed by :meth:`watch`."""
        return self.client.remove_data_watch(self._full(key), watcher)

    def watch_children(self, key: str, watcher: Any) -> list[str] | None:
        """Register a one-shot child watch on ``key`` and return its current
        child keys; the watcher fires on the next create/delete under it.

        When ``key`` itself does not exist yet (e.g. a shard's applied-log
        prefix before the first commit), a data watch on the key is
        registered instead — it fires when the key is created — and ``None``
        is returned.  This is the tailing idiom the read replicas use to
        observe a shard's committed-transaction log without polling.

        Lost-wakeup safety: if the key is created *between* the failed
        listing and the ``exists`` probe, the probe sees it and the loop
        retries the listing — otherwise the registered data watch would
        never fire for child creations and the watcher would sleep through
        every subsequent write.
        """
        path = self._full(key)
        while True:
            try:
                return self.client.get_children(path, watcher)
            except NoNodeError:
                if self.client.exists(path, watcher) is None:
                    return None
                # Created concurrently; loop to register a real child watch
                # (the extra data watch just fires one spurious event).

    def exists(self, key: str) -> bool:
        if self._batch is not None:
            pending = self._batch.pending(key)
            if pending is _TOMBSTONE:
                return False
            if pending is not None:
                return True
        if self._sealed:
            pending = self._sealed_pending(key)
            if pending is _TOMBSTONE:
                return False
            if pending is not None:
                return True
        return self.client.exists(self._full(key)) is not None

    def delete(self, key: str, recursive: bool = False) -> None:
        self.deletes += 1
        if self._batch is not None:
            # Batched deletes are always recursive at commit time; the
            # persistence layer only deletes leaf documents or whole
            # transaction subtrees, for which the semantics coincide.
            self._batch.delete(key)
            return
        self.direct_ops += 1
        path = self._full(key)
        if recursive:
            self._delete_recursive(path)
        else:
            self.client.delete_if_exists(path)

    def _delete_recursive(self, path: str) -> None:
        try:
            children = self.client.get_children(path)
        except NoNodeError:
            return
        for child in children:
            self._delete_recursive(f"{path}/{child}")
        self.client.delete_if_exists(path)

    # -- group commit -------------------------------------------------------

    @contextmanager
    def batch(self):
        """Scope within which puts/deletes are coalesced into one group
        commit.  Re-entrant: nested scopes join the outermost batch, which
        commits when the outermost scope exits."""
        self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch()

    def begin_batch(self) -> None:
        if self._batch is None:
            self._batch = WriteBatch()
        self._batch_depth += 1

    def end_batch(self) -> None:
        self._batch_depth -= 1
        if self._batch_depth <= 0:
            self._batch_depth = 0
            try:
                self.flush()
            finally:
                self._batch = None

    def flush(self) -> int:
        """Commit the pending batch (if any) as one ``multi`` round-trip,
        keeping the batch scope open.  Returns the number of ops flushed.

        On failure the buffered ops are LOST (not retried): callers own
        in-memory state derived from them and must treat a raised flush as
        a leadership-soft-state loss — the controller demotes and
        re-recovers from the store (see ``Controller.step``)."""
        batch = self._batch
        if batch is None or batch.is_empty():
            return 0
        ops: list[tuple] = []
        for key, value in batch._ops.items():
            if value is _TOMBSTONE:
                ops.append(("delete", self._full(key), None))
            else:
                ops.append(("upsert", self._full(key), value))
        self.writes_coalesced += batch.coalesced
        self._batch = WriteBatch()
        self.client.multi(ops)
        self.batch_commits += 1
        return len(ops)

    def in_batch(self) -> bool:
        return self._batch is not None

    # -- pipelined group commit (sealed batches) ---------------------------

    def detach_batch(self) -> WriteBatch | None:
        """Close the current thread's batch scope *without* committing it;
        returns the sealed batch (``None`` when no scope was open).

        The counterpart of :meth:`end_batch` for callers that defer the
        commit: the leader's commit pipeline detaches each step's batch
        into a bounded in-flight window and commits the window later via
        :meth:`commit_batches`.  Closes the outermost scope regardless of
        nesting depth — only the top-level step loop may call this."""
        batch = self._batch
        self._batch = None
        self._batch_depth = 0
        return batch

    def set_sealed(self, batches: tuple[WriteBatch, ...]) -> None:
        """Install detached-but-unflushed batches as a read overlay for
        the *calling* thread: :meth:`get`/:meth:`exists`/:meth:`keys`
        consult them (newest first) after the active batch, so a pipeline
        CPU stage reads the state earlier windowed steps wrote.  Other
        threads keep reading durable state only.  Pass ``()`` to clear
        (safe from any thread)."""
        self._sealed = batches
        self._sealed_thread = threading.get_ident() if batches else None

    def _sealed_pending(self, key: str) -> Any:
        """The newest overlay value for ``key`` (serialized text or the
        tombstone), or ``None``.  Only the sealing thread sees the
        overlay."""
        if self._sealed_thread != threading.get_ident():
            return None
        for batch in reversed(self._sealed):
            pending = batch.pending(key)
            if pending is not None:
                return pending
        return None

    def commit_batches(self, batches: list[WriteBatch]) -> int:
        """Commit several sealed batches as **one** ``multi`` (seal order,
        last-writer-wins across batches).  Routed through :meth:`flush` by
        temporarily installing the merged batch as the thread-local one,
        so subclass commit semantics (fault injection: the ``pre-commit``
        crash edge, dead-process drops) apply to pipelined commits exactly
        as to serial ones.  Any batch scope open on this thread (e.g. the
        step batch during a mid-step checkpoint drain) is preserved."""
        live = [b for b in batches if b is not None and not b.is_empty()]
        if not live:
            return 0
        if len(live) == 1:
            merged = live[0]
        else:
            merged = WriteBatch()
            merged_ops = merged._ops
            for batch in live:
                for key, value in batch._ops.items():
                    if key in merged_ops:
                        merged.coalesced += 1
                    merged_ops[key] = value
                merged.coalesced += batch.coalesced
        saved = self._batch
        self._batch = merged
        try:
            return self.flush()
        finally:
            self._batch = saved

    # -- listing -------------------------------------------------------------

    def keys(self, key: str = "") -> list[str]:
        """List direct child keys under ``key`` (empty list if absent)."""
        names: set[str] = set()
        try:
            names.update(self.client.get_children(self._full(key)))
        except NoNodeError:
            pass
        stripped = key.strip("/")
        if self._sealed and self._sealed_thread == threading.get_ident():
            # Oldest first, so the active batch below (and newer sealed
            # batches) override older pending children.
            for sealed in self._sealed:
                self._merge_pending_children(names, sealed, stripped)
        if self._batch is not None:
            self._merge_pending_children(names, self._batch, stripped)
        return sorted(names)

    @staticmethod
    def _merge_pending_children(
        names: set[str], batch: WriteBatch, stripped: str
    ) -> None:
        for pending_key, value in batch.pending_children(stripped):
            remainder = pending_key[len(stripped) + 1 if stripped else 0:]
            child, _, rest = remainder.partition("/")
            if value is _TOMBSTONE:
                # Only a tombstone on the child itself removes it from
                # the listing; a deeper delete leaves the child node
                # (and its other descendants) in place.
                if not rest:
                    names.discard(child)
            else:
                names.add(child)

    def items(self, key: str = "") -> Iterator[tuple[str, Any]]:
        """Yield ``(child_key, value)`` pairs under ``key``."""
        for child in self.keys(key):
            child_key = f"{key.strip('/')}/{child}" if key.strip("/") else child
            yield child, self.get(child_key)

    def io_stats(self) -> dict[str, int]:
        return {
            "puts": self.puts,
            "deletes": self.deletes,
            "batch_commits": self.batch_commits,
            "writes_coalesced": self.writes_coalesced,
            "bytes_serialized": self.bytes_serialized,
            "direct_ops": self.direct_ops,
        }
