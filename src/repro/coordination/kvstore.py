"""JSON document store facade over the coordination service.

TROPIC "unconventionally" uses ZooKeeper as its highly available persistent
storage engine for transaction states and logs (§5).  :class:`KVStore`
provides the small document-oriented API the persistence layer needs:
``put``/``get``/``delete`` of JSON values keyed by slash-separated paths,
plus listing of child keys.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import NoNodeError
from repro.common.jsonutil import dumps, loads
from repro.coordination.client import CoordinationClient


class KVStore:
    """A namespaced JSON key-value store on top of the coordination tree."""

    def __init__(self, client: CoordinationClient, prefix: str = "/tropic"):
        self.client = client
        self.prefix = prefix.rstrip("/")
        self.client.ensure_path(self.prefix)

    def _full(self, key: str) -> str:
        key = key.strip("/")
        return f"{self.prefix}/{key}" if key else self.prefix

    # -- document operations ----------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Upsert a JSON document, creating intermediate keys as needed."""
        path = self._full(key)
        self.client.ensure_path(path)
        self.client.set(path, dumps(value))

    def get(self, key: str, default: Any = None) -> Any:
        data = self.client.get_data(self._full(key))
        if data is None or data == "":
            return default
        return loads(data)

    def exists(self, key: str) -> bool:
        return self.client.exists(self._full(key)) is not None

    def delete(self, key: str, recursive: bool = False) -> None:
        path = self._full(key)
        if recursive:
            self._delete_recursive(path)
        else:
            self.client.delete_if_exists(path)

    def _delete_recursive(self, path: str) -> None:
        try:
            children = self.client.get_children(path)
        except NoNodeError:
            return
        for child in children:
            self._delete_recursive(f"{path}/{child}")
        self.client.delete_if_exists(path)

    # -- listing -------------------------------------------------------------

    def keys(self, key: str = "") -> list[str]:
        """List direct child keys under ``key`` (empty list if absent)."""
        try:
            return sorted(self.client.get_children(self._full(key)))
        except NoNodeError:
            return []

    def items(self, key: str = "") -> Iterator[tuple[str, Any]]:
        """Yield ``(child_key, value)`` pairs under ``key``."""
        for child in self.keys(key):
            child_key = f"{key.strip('/')}/{child}" if key.strip("/") else child
            yield child, self.get(child_key)
