"""Znodes: the data nodes of the coordination service."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class Stat:
    """Metadata returned alongside znode data (a subset of ZooKeeper's Stat)."""

    version: int
    czxid: int
    mzxid: int
    ephemeral_owner: str | None
    num_children: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "czxid": self.czxid,
            "mzxid": self.mzxid,
            "ephemeral_owner": self.ephemeral_owner,
            "num_children": self.num_children,
        }


class ZNode:
    """A node in the coordination tree.

    ``data`` is always a string (the library stores JSON documents).
    ``ephemeral_owner`` is the id of the owning session for ephemeral nodes;
    such nodes are removed automatically when the session expires, which is
    how controller failure is detected (§2.3).

    A plain ``__slots__`` class rather than a dataclass: every committed
    create is applied to every up replica, so znode construction sits on
    the coordination hot path.
    """

    __slots__ = (
        "path", "data", "version", "czxid", "mzxid",
        "ephemeral_owner", "children", "sequence_counter",
    )

    def __init__(
        self,
        path: str,
        data: str = "",
        version: int = 0,
        czxid: int = 0,
        mzxid: int = 0,
        ephemeral_owner: str | None = None,
        children: "dict[str, ZNode] | None" = None,
        sequence_counter: int = 0,
    ) -> None:
        self.path = path
        self.data = data
        self.version = version
        self.czxid = czxid
        self.mzxid = mzxid
        self.ephemeral_owner = ephemeral_owner
        self.children = {} if children is None else children
        self.sequence_counter = sequence_counter

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None

    def stat(self) -> Stat:
        return Stat(
            version=self.version,
            czxid=self.czxid,
            mzxid=self.mzxid,
            ephemeral_owner=self.ephemeral_owner,
            num_children=len(self.children),
        )

    def clone(self) -> "ZNode":
        """Deep copy used when replicating state to a restarted server."""
        node = ZNode(
            path=self.path,
            data=self.data,
            version=self.version,
            czxid=self.czxid,
            mzxid=self.mzxid,
            ephemeral_owner=self.ephemeral_owner,
            sequence_counter=self.sequence_counter,
        )
        node.children = {name: child.clone() for name, child in self.children.items()}
        return node


#: Bounded memo cache for path splitting: znode paths repeat heavily on the
#: write path (transaction documents, queue nodes), and splitting shows up
#: in profiles of every coordination operation.  Reset when full.
_SPLIT_CACHE: dict[str, tuple[str, ...]] = {}
_SPLIT_CACHE_LIMIT = 1 << 16


def split_path(path: str) -> tuple[str, ...]:
    """Split a coordination path into components (root = empty tuple)."""
    parts = _SPLIT_CACHE.get(path)
    if parts is None:
        parts = tuple(part for part in path.split("/") if part)
        if len(_SPLIT_CACHE) >= _SPLIT_CACHE_LIMIT:
            _SPLIT_CACHE.clear()
        _SPLIT_CACHE[path] = parts
    return parts


def parent_path(path: str) -> str:
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def join_path(parent: str, name: str) -> str:
    if parent.endswith("/"):
        return parent + name
    return parent + "/" + name
