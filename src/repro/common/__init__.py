"""Shared utilities used across the TROPIC reproduction.

This package deliberately has no dependency on any other ``repro``
subpackage so that every other subsystem can build on it.
"""

from repro.common.clock import Clock, RealClock, VirtualClock
from repro.common.errors import (
    ConfigurationError,
    ConstraintViolation,
    CoordinationError,
    DataModelError,
    DeviceError,
    InconsistencyError,
    LockConflict,
    ProcedureError,
    ReproError,
    TransactionAborted,
    TransactionFailed,
)
from repro.common.idgen import IdGenerator, monotonic_id

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "ReproError",
    "ConfigurationError",
    "ConstraintViolation",
    "CoordinationError",
    "DataModelError",
    "DeviceError",
    "InconsistencyError",
    "LockConflict",
    "ProcedureError",
    "TransactionAborted",
    "TransactionFailed",
    "IdGenerator",
    "monotonic_id",
]
