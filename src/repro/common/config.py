"""Platform-wide configuration.

A single :class:`TropicConfig` object is threaded through the platform so
experiments can tune timing (heartbeats, repair period), concurrency
(worker count) and mode (logical-only) from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass
class TropicConfig:
    """Configuration knobs for a TROPIC deployment.

    Attributes
    ----------
    num_controllers:
        Number of controller replicas (leader + followers), §2.3.
    num_workers:
        Number of physical-worker threads, §3.2.
    logical_only:
        Bypass physical device API calls (§5); used by the performance
        benchmarks to explore large resource scales.
    heartbeat_interval:
        Coordination session heartbeat period in seconds.  Failover
        detection time — and hence recovery time (§6.4) — is dominated by
        ``session_timeout``.
    session_timeout:
        Coordination session timeout in seconds.
    repair_period:
        Period of the background repair daemon, in seconds (§4).  ``0``
        disables periodic repair.
    txn_timeout:
        Per-transaction stall timeout in seconds before the platform raises
        a TERM signal (§4).  ``0`` disables the watchdog.
    scheduler_policy:
        ``"fifo"`` (paper default) or ``"aggressive"`` (the future-work
        policy of §3.1.1 that schedules past a conflicting head-of-queue
        transaction).
    num_shards:
        Number of controller shards the data-model tree is partitioned
        over.  Each shard runs its own leader election, inputQ/phyQ, lock
        domain and checkpoint namespace; ``1`` (default) reproduces the
        paper's single-controller deployment exactly.
    read_mode:
        Default consistency of :meth:`TropicPlatform.model_view` for
        shards this process does not host: ``"replica"`` (default) serves
        them from per-shard read replicas tailing the owners' committed
        logs (bounded-stale, watermark-stamped), ``"leader"`` refuses with
        :class:`~repro.common.errors.ShardUnavailable` (reads only from
        in-process shard leaders).  See :mod:`repro.core.replica`.
    prepare_timeout:
        Deadline in seconds for the prepare phase of a cross-shard
        two-phase commit.  A coordinator still ``PREPARING`` past the
        deadline (e.g. a participant shard is down and not failing over)
        presumed-aborts the transaction and releases its prepare-phase
        locks, unblocking the transactions contending with it (wound-wait
        handles live contention; the deadline handles a dead participant).
        ``0`` (default) disables the deadline: a stuck prepare is
        then resolved only by the participant shard's failover.
    cross_shard_policy:
        What to do with a transaction whose paths span several shards:
        ``"reject"`` (refuse at submit time, preserving full isolation),
        ``"pin"`` (deprecated: run it on the lowest involved shard;
        isolation degrades to per-shard) or ``"2pc"`` (two-phase commit
        across the shard leaders, coordinated by the lowest involved
        shard).  See :mod:`repro.core.sharding` and
        :mod:`repro.core.twopc`.
    checkpoint_every:
        Number of applied transactions between data-model checkpoints
        written to persistent storage.
    input_batch_size:
        Maximum inputQ messages the controller drains per main-loop
        iteration; their persisted state changes are coalesced into one
        group-commit write to the coordination store.
    pipeline_depth:
        Maximum sealed write batches the leader's commit pipeline holds
        in flight before it must flush.  ``1`` (default) is the classic
        serial loop: every iteration group-commits before the next
        begins.  Depths ``>1`` let iteration N+1 simulate against the
        in-memory model while iteration N's flush is still on the wire;
        all post-durability effects (phyQ dispatch, 2PC fan-out,
        notifications, inputQ acks) are held until the covering flush
        commits, so the durability invariants are unchanged.  See
        ``docs/architecture.md#the-pipelined-write-path``.
    worker_batch_size:
        Maximum phyQ items a physical worker drains per loop iteration;
        their result messages ride back to the controller in one queue
        write.
    queue_poll_interval:
        Poll period of the controller/worker service loops in seconds.
    simulated_action_latency:
        Per-action latency (seconds) charged by the logical-only physical
        worker, modelling device API round-trips.
    coordination_latency:
        Simulated latency of each coordination-store operation in seconds
        (the paper identifies ZooKeeper I/O as the dominant overhead).
    """

    num_controllers: int = 3
    num_workers: int = 1
    worker_threads: int = 4
    logical_only: bool = False
    heartbeat_interval: float = 0.05
    session_timeout: float = 0.5
    repair_period: float = 0.0
    txn_timeout: float = 0.0
    scheduler_policy: str = "fifo"
    num_shards: int = 1
    cross_shard_policy: str = "reject"
    read_mode: str = "replica"
    prepare_timeout: float = 0.0
    checkpoint_every: int = 64
    input_batch_size: int = 64
    pipeline_depth: int = 1
    worker_batch_size: int = 16
    queue_poll_interval: float = 0.002
    simulated_action_latency: float = 0.0
    coordination_latency: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.num_controllers < 1:
            raise ValueError("num_controllers must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.scheduler_policy not in ("fifo", "aggressive"):
            raise ValueError(f"unknown scheduler_policy {self.scheduler_policy!r}")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.cross_shard_policy not in ("reject", "pin", "2pc"):
            raise ValueError(f"unknown cross_shard_policy {self.cross_shard_policy!r}")
        if self.read_mode not in ("replica", "leader"):
            raise ValueError(f"unknown read_mode {self.read_mode!r}")
        if self.prepare_timeout < 0:
            raise ValueError("prepare_timeout must be >= 0 (0 disables)")
        if self.session_timeout <= self.heartbeat_interval:
            raise ValueError("session_timeout must exceed heartbeat_interval")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.input_batch_size < 1:
            raise ValueError("input_batch_size must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.worker_batch_size < 1:
            raise ValueError("worker_batch_size must be >= 1")

    def with_overrides(self, **kwargs: Any) -> "TropicConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
