"""Identifier generation for transactions, sessions and devices."""

from __future__ import annotations

import itertools
import threading
import uuid


class IdGenerator:
    """Thread-safe generator of prefixed, monotonically increasing ids.

    Example: ``IdGenerator("txn")`` yields ``txn-000001``, ``txn-000002`` ...
    The zero-padded counter keeps lexicographic order equal to creation
    order, which the FIFO queues and the recovery protocol rely on.
    """

    def __init__(self, prefix: str, width: int = 6):
        self._prefix = prefix
        self._width = width
        self._format = f"{prefix}-%0{width}d"
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            value = next(self._counter)
        return self._format % value


_GLOBAL_COUNTERS: dict[str, IdGenerator] = {}
_GLOBAL_LOCK = threading.Lock()


def monotonic_id(prefix: str) -> str:
    """Return the next id for ``prefix`` from a process-global generator."""
    with _GLOBAL_LOCK:
        gen = _GLOBAL_COUNTERS.get(prefix)
        if gen is None:
            gen = IdGenerator(prefix)
            _GLOBAL_COUNTERS[prefix] = gen
    return gen.next()


def random_id(prefix: str) -> str:
    """Return a collision-resistant random id (used for controller names)."""
    return f"{prefix}-{uuid.uuid4().hex[:8]}"
