"""Client-side retry policy with typed error classification.

The paper's availability story (§2.3) makes the *server* side safe: an
acked transaction survives controller failure.  This module makes the
*client* side safe to pair with it.  Errors fall into three classes:

* **transient** — the request provably did not take effect (quorum loss,
  session expiry before the submit was accepted, a shard leader that is
  mid-failover).  Safe to retry as-is.
* **ambiguous** — the request *may* have taken effect (a wait deadline
  expired, the connection died after the submit was enqueued).  Safe to
  retry **only** when the submission carries an idempotency token, because
  the controller's token→txid ack index then deduplicates the re-drive
  (see ``docs/architecture.md#resilience``).
* **permanent** — retrying cannot help (constraint violation, procedure
  error, misconfiguration, an explicit abort).

:class:`RetryPolicy` layers jittered exponential backoff and a deadline
budget on top of the classification; :func:`call_with_retries` is the
driver loop used by clients and the chaos harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Clock, RealClock
from repro.common.errors import (
    ConfigurationError,
    ConstraintViolation,
    CrossShardTransaction,
    NoNodeError,
    NodeExistsError,
    NotLeaderError,
    ProcedureError,
    QuorumLostError,
    SessionExpiredError,
    ShardNotLocalError,
    TransactionAborted,
    TransactionFailed,
)

#: Classification labels returned by :func:`classify`.
TRANSIENT = "transient"
AMBIGUOUS = "ambiguous"
PERMANENT = "permanent"

#: Errors where the request provably did not take effect.
_TRANSIENT_TYPES = (
    QuorumLostError,
    SessionExpiredError,
    NotLeaderError,
    ConnectionError,
)

#: Errors where the request may have taken effect (retry needs a token).
#: ``TxnTimeout`` subclasses ``TimeoutError``, so listing the builtin
#: covers both the typed error and legacy bare-``TimeoutError`` waits.
_AMBIGUOUS_TYPES = (TimeoutError,)

#: Errors where a retry cannot change the outcome.
_PERMANENT_TYPES = (
    ConstraintViolation,
    ProcedureError,
    TransactionAborted,
    TransactionFailed,
    ConfigurationError,
    ShardNotLocalError,
    CrossShardTransaction,
    NoNodeError,
    NodeExistsError,
    TypeError,
    ValueError,
)


def classify(error: BaseException) -> str:
    """Classify an exception as transient, ambiguous or permanent.

    Order matters: ``TxnTimeout`` is both a ``ReproError`` and a
    ``TimeoutError`` and must land in the ambiguous bucket; permanent
    types are checked first because several (e.g. ``ShardNotLocalError``)
    subclass broader classes that would otherwise read as retryable.
    """
    if isinstance(error, _PERMANENT_TYPES):
        return PERMANENT
    if isinstance(error, _AMBIGUOUS_TYPES):
        return AMBIGUOUS
    if isinstance(error, _TRANSIENT_TYPES):
        return TRANSIENT
    return PERMANENT


def is_retryable(error: BaseException, *, idempotent: bool = False) -> bool:
    """Whether a retry is safe: transient errors always are; ambiguous
    ones only when the caller can re-drive idempotently (token attached)."""
    kind = classify(error)
    if kind == TRANSIENT:
        return True
    if kind == AMBIGUOUS:
        return idempotent
    return False


@dataclass
class RetryPolicy:
    """Jittered exponential backoff under a total deadline budget.

    ``seed`` fixes the jitter sequence so chaos scenarios and property
    tests replay identically.  ``deadline`` bounds the *total* time spent
    across all attempts (sleeping counts); attempts stop when either the
    budget or ``max_attempts`` is exhausted.
    """

    max_attempts: int = 5
    base_delay: float = 0.01
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None
    seed: int | None = None
    clock: Clock = field(default_factory=RealClock)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        raw = min(self.max_delay, self.base_delay * (self.multiplier ** (attempt - 1)))
        if self.jitter <= 0:
            return raw
        # Decorrelated-ish jitter: uniform in [raw*(1-jitter), raw].
        return raw * (1.0 - self.jitter * self._rng.random())

    def attempts(self) -> "_AttemptBudget":
        return _AttemptBudget(self)


class _AttemptBudget:
    """Iteration state for one retried operation."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.attempt = 0
        self.started_at = policy.clock.now()
        self.errors: list[BaseException] = []

    def elapsed(self) -> float:
        return self.policy.clock.now() - self.started_at

    def exhausted(self) -> bool:
        if self.attempt >= self.policy.max_attempts:
            return True
        if self.policy.deadline is not None and self.elapsed() >= self.policy.deadline:
            return True
        return False

    def record_failure(self, error: BaseException) -> None:
        self.errors.append(error)

    def sleep_before_retry(self) -> float:
        delay = self.policy.backoff(self.attempt)
        if self.policy.deadline is not None:
            remaining = self.policy.deadline - self.elapsed()
            delay = max(0.0, min(delay, remaining))
        if delay > 0:
            self.policy.clock.sleep(delay)
        return delay


def call_with_retries(
    operation: Callable[[int], Any],
    policy: RetryPolicy | None = None,
    *,
    idempotent: bool = False,
    on_retry: Callable[[BaseException, int], None] | None = None,
) -> Any:
    """Run ``operation(attempt)`` until it succeeds or retries run out.

    ``operation`` receives the 1-based attempt number (so a caller can mint
    its idempotency token on attempt 1 and reuse it afterwards).  A
    non-retryable error (permanent, or ambiguous without ``idempotent``)
    propagates immediately; an exhausted budget re-raises the last error.
    """
    policy = policy or RetryPolicy()
    budget = policy.attempts()
    while True:
        budget.attempt += 1
        try:
            return operation(budget.attempt)
        except Exception as error:  # noqa: BLE001 - classification decides
            budget.record_failure(error)
            if not is_retryable(error, idempotent=idempotent):
                raise
            if budget.exhausted():
                raise
            if on_retry is not None:
                on_retry(error, budget.attempt)
            budget.sleep_before_retry()
