"""JSON helpers.

Transaction state, execution logs and the data-model checkpoint are stored
in the coordination service as JSON documents.  These helpers keep the
encoding deterministic (sorted keys) so that replicas and recovery code can
compare serialized state byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Any


#: One shared encoder instance: ``json.dumps`` with keyword options builds
#: a fresh ``JSONEncoder`` per call, which is measurable overhead on the
#: write path (every transaction-document fragment and queue message goes
#: through here).  The encoder is stateless, so sharing it is thread-safe.
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def dumps(value: Any) -> str:
    """Serialize ``value`` deterministically."""
    return _ENCODER.encode(value)


def loads(data: str | bytes | None) -> Any:
    """Deserialize JSON, returning ``None`` for empty payloads."""
    if data is None:
        return None
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    if data == "":
        return None
    return json.loads(data)


#: Immutable JSON scalar types that can be shared instead of copied.
_SCALARS = (str, int, float, bool, type(None))


def deep_copy(value: Any) -> Any:
    """Copy a JSON-compatible structure without serialising it.

    Used where we need a defensive copy of attribute dictionaries that are
    guaranteed to be JSON-serialisable (data-model attributes, procedure
    arguments).  Scalars are shared (immutable), dicts and lists are copied
    recursively; tuples become lists, matching the behaviour of the previous
    ``json.loads(json.dumps(value))`` implementation, which is kept as the
    fallback for exotic-but-serialisable inputs.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        if all(type(key) is str for key in value):
            return {key: deep_copy(item) for key, item in value.items()}
        # Non-string keys need JSON's key coercion (int -> "1", True ->
        # "true", ...) to keep the copy identical to the persisted form.
        return json.loads(json.dumps(value))
    if isinstance(value, (list, tuple)):
        return [deep_copy(item) for item in value]
    return json.loads(json.dumps(value))
