"""JSON helpers.

Transaction state, execution logs and the data-model checkpoint are stored
in the coordination service as JSON documents.  These helpers keep the
encoding deterministic (sorted keys) so that replicas and recovery code can
compare serialized state byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Any


def dumps(value: Any) -> str:
    """Serialize ``value`` deterministically."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def loads(data: str | bytes | None) -> Any:
    """Deserialize JSON, returning ``None`` for empty payloads."""
    if data is None:
        return None
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    if data == "":
        return None
    return json.loads(data)


def deep_copy(value: Any) -> Any:
    """Copy a JSON-compatible structure by round-tripping it.

    Used where we need a defensive copy of attribute dictionaries that are
    guaranteed to be JSON-serialisable (data-model attributes, procedure
    arguments).
    """
    return json.loads(json.dumps(value))
