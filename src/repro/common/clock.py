"""Clock abstraction.

TROPIC components never call :func:`time.monotonic` directly.  They take a
:class:`Clock` so that

* unit tests can use a :class:`VirtualClock` and advance time manually
  (e.g. to expire coordination sessions or trigger the periodic repair
  daemon without sleeping), and
* benchmarks can replay the one hour EC2 trace under time compression.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface for reading and waiting on time."""

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of this clock's time."""
        raise NotImplementedError


class RealClock(Clock):
    """Wall-clock time based on :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A manually advanced clock for deterministic tests.

    ``sleep`` blocks the calling thread until another thread advances the
    clock past the wake-up time, which lets multi-threaded tests stay
    deterministic without real delays.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward and wake up sleepers."""
        if seconds < 0:
            raise ValueError("cannot move a clock backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not go backwards)."""
        with self._cond:
            if timestamp < self._now:
                raise ValueError("cannot move a clock backwards")
            self._now = timestamp
            self._cond.notify_all()

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            deadline = self._now + seconds
            while self._now < deadline:
                self._cond.wait(timeout=0.05)


class Stopwatch:
    """Accumulates busy time; used for the controller CPU-utilisation proxy."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock or RealClock()
        self._busy = 0.0
        self._started_at: float | None = None
        self._lock = threading.Lock()

    def start(self) -> None:
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock.now()

    def stop(self) -> None:
        with self._lock:
            if self._started_at is not None:
                self._busy += self._clock.now() - self._started_at
                self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def busy_seconds(self) -> float:
        with self._lock:
            busy = self._busy
            if self._started_at is not None:
                busy += self._clock.now() - self._started_at
            return busy

    def reset(self) -> None:
        with self._lock:
            self._busy = 0.0
            self._started_at = None
