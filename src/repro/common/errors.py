"""Exception hierarchy for the TROPIC reproduction.

Every exception raised by the library derives from :class:`ReproError` so
that callers can distinguish library failures from programming errors.
The hierarchy mirrors the major failure classes in the paper:

* constraint violations (safety, §2.1 / §3.1.2),
* lock conflicts (concurrency, §3.1.3),
* transaction aborts and failures (robustness, §3.2),
* coordination/storage errors (high availability, §2.3),
* device errors and cross-layer inconsistencies (volatility, §4).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent options."""


class DataModelError(ReproError):
    """Invalid operation on the hierarchical data model (bad path, duplicate
    child, unknown entity type, ...)."""


class UnknownPathError(DataModelError):
    """A path does not resolve to a node in the data model."""


class ConstraintViolation(ReproError):
    """A safety constraint was violated during logical simulation.

    Attributes
    ----------
    constraint:
        Name of the violated constraint.
    path:
        Path of the node on which the constraint is defined.
    """

    def __init__(self, message: str, constraint: str = "", path: str = ""):
        super().__init__(message)
        self.constraint = constraint
        self.path = path


class LockConflict(ReproError):
    """A transaction's lock request conflicts with an outstanding transaction."""

    def __init__(self, message: str, path: str = "", holder: str = ""):
        super().__init__(message)
        self.path = path
        self.holder = holder


class ProcedureError(ReproError):
    """A stored procedure raised an application-level error during simulation."""


class TransactionAborted(ReproError):
    """The transaction was aborted; the logical and physical layers were rolled
    back (no effect)."""

    def __init__(self, message: str, txid: str = "", reason: str = ""):
        super().__init__(message)
        self.txid = txid
        self.reason = reason


class TransactionFailed(ReproError):
    """The transaction failed: an undo action failed during physical rollback,
    leaving a cross-layer inconsistency (§3.2)."""

    def __init__(self, message: str, txid: str = ""):
        super().__init__(message)
        self.txid = txid


class TxnTimeout(ReproError, TimeoutError):
    """A submitted transaction did not reach a terminal state within its
    deadline (``config.txn_timeout`` or the caller's wait timeout).

    The outcome is *ambiguous*: the transaction may still commit after the
    caller gave up (e.g. the leader is mid-failover).  A blind resubmit may
    therefore double-apply; the retry policy only re-drives a ``TxnTimeout``
    when the submission carried an idempotency token (see
    ``repro.common.retry.classify``).

    Also subclasses the builtin :class:`TimeoutError` so callers that
    predate the typed error (``except TimeoutError``) keep working.
    """

    def __init__(self, message: str, txid: str = ""):
        super().__init__(message)
        self.txid = txid


class CoordinationError(ReproError):
    """The coordination (ZooKeeper-like) service could not serve a request."""


class QuorumLostError(CoordinationError):
    """Fewer than a majority of coordination servers are reachable."""


class SessionExpiredError(CoordinationError):
    """The client's coordination session expired (missed heartbeats)."""


class NoNodeError(CoordinationError):
    """The requested znode does not exist."""


class NodeExistsError(CoordinationError):
    """A znode already exists at the requested path."""


class BadVersionError(CoordinationError):
    """Conditional update failed because the znode version did not match."""


class NotEmptyError(CoordinationError):
    """A znode with children cannot be deleted."""


class DeviceError(ReproError):
    """A physical device API call failed (injected fault or invalid request)."""

    def __init__(self, message: str, device: str = "", action: str = ""):
        super().__init__(message)
        self.device = device
        self.action = action


class DeviceTimeout(DeviceError):
    """A device API call did not complete within its deadline."""


class InconsistencyError(ReproError):
    """The logical and physical layers disagree for a subtree and the subtree
    has been fenced off until reconciliation (§4)."""

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


class NotLeaderError(ReproError):
    """A controller that is not the current leader was asked to execute
    leader-only work."""


class RecoveryError(ReproError):
    """Leader failover could not restore controller state."""


class CrossShardTransaction(ReproError):
    """A submitted transaction addresses subtrees owned by more than one
    controller shard and the deployment's cross-shard policy is ``reject``.

    Attributes
    ----------
    shards:
        Sorted indices of the shards the transaction would span.
    """

    def __init__(self, message: str, shards: list[int] | None = None):
        super().__init__(message)
        self.shards = list(shards or [])


class ShardUnavailable(ReproError):
    """A read needed shards this process does not host.

    ``TropicPlatform.model_view`` raises this in strict mode instead of
    silently merging only the locally hosted shards into a *partial* fleet
    view (the multi-process footgun: every shard a process does not host
    would be reported at its bootstrap-frozen contents).

    Attributes
    ----------
    shards:
        Sorted indices of the shards missing from this process.
    """

    def __init__(self, message: str, shards: list[int] | None = None):
        super().__init__(message)
        self.shards = list(shards or [])


class ShardNotLocalError(ConfigurationError):
    """A request was routed to a shard this process does not host (the
    deployment runs with ``local_shards`` restricted, e.g. one shard per
    process); resubmit against the process hosting the owning shard."""

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        self.shard = shard
