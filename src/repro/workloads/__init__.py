"""Workload generation and replay (§6).

The paper drives its evaluation with two traces that are not publicly
available; this package synthesises equivalents calibrated to the published
statistics:

* the **EC2 workload** — VM spawn rate over one hour inferred from Amazon
  EC2 instance ids (8,417 spawns, 2.34/s on average, peaking at 14/s at
  0.8 h) — reproduced by :mod:`repro.workloads.ec2` (Figure 3);
* the **hosting workload** — a mix of VM spawn/start/stop/migrate
  operations derived from a large US hosting provider — reproduced by
  :mod:`repro.workloads.hosting`.

:mod:`repro.workloads.loadgen` replays either trace against a running
TCloud deployment under time compression and collects the measurements
behind Figures 4 and 5.
"""

from repro.workloads.trace import Trace, TraceEvent, TraceStats
from repro.workloads.ec2 import EC2TraceParams, ec2_spawn_trace, synthesize_launch_counts
from repro.workloads.hosting import HostingTraceParams, hosting_trace
from repro.workloads.loadgen import LoadGenerator, ReplayResult

__all__ = [
    "Trace",
    "TraceEvent",
    "TraceStats",
    "EC2TraceParams",
    "ec2_spawn_trace",
    "synthesize_launch_counts",
    "HostingTraceParams",
    "hosting_trace",
    "LoadGenerator",
    "ReplayResult",
]
