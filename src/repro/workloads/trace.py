"""Trace representation shared by the workload generators."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class TraceEvent:
    """One orchestration request in a trace.

    ``time`` is the offset (seconds) from the start of the trace at which
    the request is submitted; ``operation`` names the abstract TCloud
    operation (``spawn``, ``start``, ``stop``, ``migrate``); ``args`` carry
    operation parameters fixed at generation time (e.g. the memory size of
    a spawned VM).  Binding to concrete hosts and existing VMs happens at
    replay time.
    """

    time: float
    operation: str
    args: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time, "operation": self.operation, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(float(data["time"]), data["operation"], dict(data.get("args") or {}))


@dataclass
class TraceStats:
    """Aggregate statistics of a trace (the numbers quoted in §6.1)."""

    duration_s: float
    total_events: int
    mean_rate: float
    peak_rate: int
    peak_time_s: float
    mix: dict[str, int]


class Trace:
    """A time-ordered sequence of orchestration requests."""

    def __init__(self, events: list[TraceEvent] | None = None, duration_s: float = 0.0):
        self.events = sorted(events or [], key=lambda e: e.time)
        self.duration_s = duration_s or (self.events[-1].time if self.events else 0.0)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def operations(self) -> list[str]:
        return [event.operation for event in self.events]

    def per_second_counts(self, operation: str | None = None) -> list[int]:
        """Number of events in each 1-second bucket (the Figure 3 series)."""
        buckets = [0] * (int(self.duration_s) + 1)
        for event in self.events:
            if operation is not None and event.operation != operation:
                continue
            buckets[min(int(event.time), len(buckets) - 1)] += 1
        return buckets

    def stats(self) -> TraceStats:
        counts = self.per_second_counts()
        peak_rate = max(counts) if counts else 0
        peak_time = counts.index(peak_rate) if counts else 0
        mix: dict[str, int] = {}
        for event in self.events:
            mix[event.operation] = mix.get(event.operation, 0) + 1
        mean = len(self.events) / self.duration_s if self.duration_s else 0.0
        return TraceStats(
            duration_s=self.duration_s,
            total_events=len(self.events),
            mean_rate=mean,
            peak_rate=peak_rate,
            peak_time_s=float(peak_time),
            mix=mix,
        )

    def slice(self, start_s: float, end_s: float) -> "Trace":
        """Sub-trace covering ``[start_s, end_s)``, re-based to time zero."""
        events = [
            TraceEvent(event.time - start_s, event.operation, dict(event.args))
            for event in self.events
            if start_s <= event.time < end_s
        ]
        return Trace(events, duration_s=end_s - start_s)

    def scaled(self, multiplier: int) -> "Trace":
        """Multiply the workload intensity (the 2x..5x EC2 workloads of §6.1).

        Each original event is replicated ``multiplier`` times with small
        deterministic offsets within the same second, preserving the shape
        of the rate curve while scaling its magnitude.  Replicas of spawn
        events get distinct VM names so the multiplied workload provisions
        distinct resources rather than colliding on the originals.
        """
        if multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        events: list[TraceEvent] = []
        for event in self.events:
            second = math.floor(event.time)
            frac = event.time - second
            for copy in range(multiplier):
                # Spread replicas over the same 1-second bucket as the
                # original so per-second counts scale by exactly the
                # multiplier.
                replica_time = second + (frac + copy / multiplier) % 1.0
                args = dict(event.args)
                if copy > 0 and "vm_name" in args:
                    args["vm_name"] = f"{args['vm_name']}x{copy}"
                events.append(TraceEvent(replica_time, event.operation, args))
        return Trace(events, duration_s=self.duration_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        return cls(
            [TraceEvent.from_dict(item) for item in data.get("events", [])],
            duration_s=float(data.get("duration_s", 0.0)),
        )
