"""Synthetic hosting-provider workload (§6.2-§6.4).

The hosting workload drives the safety, robustness and high-availability
experiments.  Unlike the spawn-only EC2 trace it mixes the full VM life
cycle — Spawn, Start, Stop and Migrate — mimicking a realistic TCloud
deployment.  The original trace from a large US hosting provider is not
public; this generator produces a deterministic operation mix with a
configurable ratio (defaults chosen so that every operation type appears
frequently and migrations — the most constraint-sensitive operation — make
up a substantial fraction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads.trace import Trace, TraceEvent

DEFAULT_MIX = {"spawn": 0.40, "start": 0.15, "stop": 0.15, "migrate": 0.30}


@dataclass
class HostingTraceParams:
    """Parameters of the synthetic hosting workload."""

    duration_s: float = 600.0
    num_operations: int = 400
    mix: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    mem_choices: tuple[int, ...] = (512, 1024, 2048, 4096)
    image_templates: tuple[str, ...] = ("template-small", "template-medium")
    seed: int = 42


def hosting_trace(params: HostingTraceParams | None = None) -> Trace:
    """Generate the hosting workload trace.

    Operations are spread uniformly over the duration.  Spawns carry their
    own VM parameters; start/stop/migrate events reference "an existing VM"
    abstractly and are bound to concrete VMs at replay time (the load
    generator keeps track of which VMs exist).  The generator front-loads a
    batch of spawns so that later life-cycle operations have VMs to target.
    """
    params = params or HostingTraceParams()
    rng = random.Random(params.seed)
    total_weight = sum(params.mix.values())
    operations = list(params.mix)
    weights = [params.mix[op] / total_weight for op in operations]

    events: list[TraceEvent] = []
    sequence = 0

    # Warm-up: the first ~10% of operations are spawns so that the pool of
    # VMs is non-empty when start/stop/migrate operations begin.
    warmup = max(1, params.num_operations // 10)
    for index in range(params.num_operations):
        time = params.duration_s * index / params.num_operations
        operation = "spawn" if index < warmup else rng.choices(operations, weights)[0]
        if operation == "spawn":
            sequence += 1
            args = {
                "vm_name": f"hosting-vm-{sequence:05d}",
                "mem_mb": rng.choice(params.mem_choices),
                "image_template": rng.choice(params.image_templates),
            }
        else:
            args = {}
        events.append(TraceEvent(time=time, operation=operation, args=args))
    return Trace(events, duration_s=params.duration_s)
