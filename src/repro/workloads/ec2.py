"""Synthetic EC2 spawn-rate workload (Figure 3, §6.1).

The paper measured newly launched VM instances in EC2's US-east region over
one week (July 2011) and selected a 1-hour window containing 8,417 VM
spawns, averaging 2.34 per second with a 14/s peak at 0.8 hours.  The raw
trace is not public, so this module synthesises a per-second launch-rate
series with exactly those aggregate properties:

* a Poisson-like base rate around the published mean,
* a pronounced burst centred at the published peak time whose maximum is
  exactly the published peak rate, and
* a total adjusted to exactly the published number of spawns.

The generator is fully deterministic for a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.workloads.trace import Trace, TraceEvent


@dataclass
class EC2TraceParams:
    """Calibration targets (defaults are the values quoted in §6.1)."""

    duration_s: int = 3600
    total_spawns: int = 8417
    peak_rate: int = 14
    peak_time_frac: float = 0.8
    base_rate: float = 2.0
    burst_width_s: float = 180.0
    seed: int = 2011

    def scaled_to(self, duration_s: int) -> "EC2TraceParams":
        """Shrink the trace window while preserving rates (for fast benchmarks)."""
        factor = duration_s / self.duration_s
        return EC2TraceParams(
            duration_s=duration_s,
            total_spawns=max(1, int(round(self.total_spawns * factor))),
            peak_rate=self.peak_rate,
            peak_time_frac=self.peak_time_frac,
            base_rate=self.base_rate,
            burst_width_s=max(10.0, self.burst_width_s * factor),
            seed=self.seed,
        )


def synthesize_launch_counts(params: EC2TraceParams | None = None) -> list[int]:
    """Per-second VM launch counts with the calibrated shape.

    Guarantees: ``sum(counts) == params.total_spawns`` and
    ``max(counts) == params.peak_rate`` (at the peak-time second).
    """
    params = params or EC2TraceParams()
    rng = random.Random(params.seed)
    n = params.duration_s
    peak_at = int(params.peak_time_frac * n)

    # Keep the base Poisson rate consistent with the requested total so the
    # final adjustment only has to nudge the series, even when the caller
    # asks for a total well below ``base_rate * duration``.
    base_rate = min(params.base_rate, params.total_spawns / max(n, 1))

    counts = []
    for second in range(n):
        # Base Poisson traffic plus a Gaussian burst around the peak.
        lam = base_rate
        burst = (params.peak_rate - base_rate) * math.exp(
            -((second - peak_at) ** 2) / (2 * params.burst_width_s**2)
        )
        lam += max(0.0, burst * 0.75)
        counts.append(_poisson(rng, lam))

    # Pin the peak second to exactly the published peak rate and cap others.
    counts[peak_at] = params.peak_rate
    cap = params.peak_rate
    for second in range(n):
        if second != peak_at and counts[second] >= cap:
            counts[second] = cap - 1

    # Adjust the total to exactly the published number of spawns: first by
    # spreading random +/-1 nudges (keeps the series natural-looking) ...
    delta = params.total_spawns - sum(counts)
    step = 1 if delta > 0 else -1
    guard = 0
    while delta != 0 and guard < 10 * abs(params.total_spawns):
        guard += 1
        second = rng.randrange(n)
        if second == peak_at:
            continue
        new_value = counts[second] + step
        if 0 <= new_value <= cap - 1:
            counts[second] = new_value
            delta -= step
    # ... then, if random nudging did not converge (extreme calibrations),
    # with a deterministic sweep that guarantees the exact total whenever it
    # is achievable within [0, cap-1] per non-peak second.
    while delta != 0:
        progressed = False
        step = 1 if delta > 0 else -1
        for second in range(n):
            if delta == 0:
                break
            if second == peak_at:
                continue
            new_value = counts[second] + step
            if 0 <= new_value <= cap - 1:
                counts[second] = new_value
                delta -= step
                progressed = True
        if not progressed:
            break  # target unreachable (e.g. total below the pinned peak)
    return counts


def ec2_spawn_trace(
    params: EC2TraceParams | None = None,
    mem_mb: int = 1024,
    image_template: str = "template-small",
) -> Trace:
    """Build the spawn-only EC2 trace as a :class:`~repro.workloads.trace.Trace`."""
    params = params or EC2TraceParams()
    counts = synthesize_launch_counts(params)
    rng = random.Random(params.seed + 1)
    events = []
    sequence = 0
    for second, count in enumerate(counts):
        offsets = sorted(rng.random() for _ in range(count))
        for offset in offsets:
            sequence += 1
            events.append(
                TraceEvent(
                    time=second + offset,
                    operation="spawn",
                    args={
                        "vm_name": f"ec2-vm-{sequence:06d}",
                        "mem_mb": mem_mb,
                        "image_template": image_template,
                    },
                )
            )
    return Trace(events, duration_s=float(params.duration_s))


def _poisson(rng: random.Random, lam: float) -> int:
    """Sample a Poisson variate (Knuth's method; lam is small here)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    product = 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1
