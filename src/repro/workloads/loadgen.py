"""Load generation: replay traces against a TCloud deployment (§6.1).

Two replay modes are provided:

* :meth:`LoadGenerator.replay_async` — paced, time-compressed replay for
  the EC2 performance experiments (Figures 4 and 5): requests are submitted
  at their trace times divided by the compression factor while the
  controller and workers run in their own threads; per-bucket controller
  busy fraction (the CPU-utilisation proxy) and per-transaction latencies
  are collected.
* :meth:`LoadGenerator.replay_sync` — closed-loop replay for the hosting
  workload experiments (§6.2-§6.4): each operation is bound to concrete
  VMs using the live logical model and waited for before the next one is
  submitted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.clock import Clock, RealClock
from repro.core.platform import TransactionHandle
from repro.core.txn import Transaction, TransactionState
from repro.tcloud.service import TCloud
from repro.workloads.trace import Trace, TraceEvent


@dataclass
class ReplayResult:
    """Measurements collected while replaying one trace."""

    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    compression: float = 1.0
    latencies: list[float] = field(default_factory=list)
    #: (trace_time_seconds, busy_fraction) samples — the Figure 4 series.
    utilization: list[tuple[float, float]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Committed transactions per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed / self.wall_seconds

    @property
    def commit_ratio(self) -> float:
        total = self.committed + self.aborted + self.failed
        return self.committed / total if total else 0.0

    def record_outcome(self, txn: Transaction) -> None:
        if txn.state is TransactionState.COMMITTED:
            self.committed += 1
        elif txn.state is TransactionState.FAILED:
            self.failed += 1
        else:
            self.aborted += 1
            if txn.error and len(self.errors) < 50:
                self.errors.append(txn.error)
        latency = txn.latency()
        if latency is not None:
            self.latencies.append(latency)


class LoadGenerator:
    """Replays workload traces against a TCloud service.

    With ``prebind_spawns=True`` the generator assigns compute and storage
    hosts to spawn requests round-robin from the static inventory instead
    of consulting the live logical model for placement.  This keeps the
    client-side submission path cheap, so an open-loop replay (the EC2
    performance experiments) is paced by the trace rather than by the
    submitter, matching the paper's setup where placement is not part of
    the measured orchestration cost.
    """

    def __init__(
        self,
        cloud: TCloud,
        clock: Clock | None = None,
        seed: int = 7,
        prebind_spawns: bool = False,
    ):
        self.cloud = cloud
        self.clock = clock or RealClock()
        self.rng = random.Random(seed)
        self.prebind_spawns = prebind_spawns
        self._spawn_counter = 0

    # ------------------------------------------------------------------
    # Open-loop, paced replay (EC2 workload)
    # ------------------------------------------------------------------

    def replay_async(
        self,
        trace: Trace,
        compression: float = 60.0,
        utilization_bucket_s: float = 60.0,
        wait_timeout: float = 120.0,
    ) -> ReplayResult:
        """Submit requests at ``trace.time / compression`` and wait for all.

        Requires the platform's threaded runtime.  ``utilization_bucket_s``
        is the width (in *trace* seconds) of the buckets over which the
        controller busy fraction is sampled.
        """
        platform = self.cloud.platform
        result = ReplayResult(compression=compression)
        handles: list[TransactionHandle] = []

        start_wall = self.clock.now()
        last_busy = platform.controller_busy_seconds()
        last_sample_wall = start_wall
        next_bucket = utilization_bucket_s

        for event in trace:
            target_wall = start_wall + event.time / compression
            delay = target_wall - self.clock.now()
            if delay > 0:
                self.clock.sleep(delay)
            handle = self._submit(event, wait=False)
            if handle is not None:
                handles.append(handle)
                result.submitted += 1
            # Sample controller utilisation at bucket boundaries.
            if event.time >= next_bucket:
                now = self.clock.now()
                busy = platform.controller_busy_seconds()
                elapsed = max(now - last_sample_wall, 1e-9)
                result.utilization.append((next_bucket, min(1.0, (busy - last_busy) / elapsed)))
                last_busy, last_sample_wall = busy, now
                next_bucket += utilization_bucket_s

        for handle in handles:
            try:
                txn = handle.wait(timeout=wait_timeout)
            except TimeoutError:
                result.failed += 1
                continue
            result.record_outcome(txn)

        end_wall = self.clock.now()
        result.wall_seconds = end_wall - start_wall
        # Final utilisation sample covering the tail of the replay.
        busy = platform.controller_busy_seconds()
        elapsed = max(end_wall - last_sample_wall, 1e-9)
        result.utilization.append(
            (min(trace.duration_s, next_bucket), min(1.0, (busy - last_busy) / elapsed))
        )
        return result

    # ------------------------------------------------------------------
    # Closed-loop replay (hosting workload)
    # ------------------------------------------------------------------

    def replay_sync(self, trace: Trace, timeout: float = 30.0) -> ReplayResult:
        """Submit each operation and wait for it before the next one."""
        result = ReplayResult(compression=0.0)
        start_wall = self.clock.now()
        for event in trace:
            txn = self._submit(event, wait=True, timeout=timeout)
            if txn is None:
                continue
            result.submitted += 1
            result.record_outcome(txn)
        result.wall_seconds = self.clock.now() - start_wall
        return result

    # ------------------------------------------------------------------
    # Operation binding
    # ------------------------------------------------------------------

    def _submit(self, event: TraceEvent, wait: bool, timeout: float = 30.0):
        """Bind an abstract trace event to concrete resources and submit it."""
        operation = event.operation
        try:
            if operation == "spawn":
                vm_host, storage_host = self._spawn_binding(event)
                return self.cloud.spawn_vm(
                    event.args["vm_name"],
                    image_template=event.args.get("image_template", "template-small"),
                    mem_mb=event.args.get("mem_mb", 1024),
                    vm_host=vm_host,
                    storage_host=storage_host,
                    wait=wait,
                    timeout=timeout,
                )
            vm = self._pick_vm(operation)
            if vm is None:
                return None
            if operation == "start":
                return self.cloud.start_vm(vm, wait=wait, timeout=timeout)
            if operation == "stop":
                return self.cloud.stop_vm(vm, wait=wait, timeout=timeout)
            if operation == "migrate":
                return self.cloud.migrate_vm(vm, wait=wait, timeout=timeout)
            if operation == "destroy":
                return self.cloud.destroy_vm(vm, wait=wait, timeout=timeout)
        except Exception:  # noqa: BLE001 - placement/binding failures are skipped
            return None
        return None

    def _spawn_binding(self, event: TraceEvent) -> tuple[str | None, str | None]:
        """Host binding for a spawn: from the event, round-robin, or placement.

        Explicit ``vm_host``/``storage_host`` entries in the trace event win;
        otherwise round-robin over the inventory when ``prebind_spawns`` is
        set; otherwise ``(None, None)`` to let the placement engine decide.
        """
        explicit_vm = event.args.get("vm_host")
        explicit_storage = event.args.get("storage_host")
        if explicit_vm is not None or explicit_storage is not None:
            return explicit_vm, explicit_storage
        if not self.prebind_spawns:
            return None, None
        inventory = self.cloud.inventory
        if not inventory.vm_hosts or not inventory.storage_hosts:
            return None, None
        index = self._spawn_counter
        self._spawn_counter += 1
        vm_host = inventory.vm_hosts[index % len(inventory.vm_hosts)]
        storage_host = inventory.storage_host_for(index % len(inventory.vm_hosts))
        return vm_host, storage_host

    def _pick_vm(self, operation: str) -> str | None:
        records = self.cloud.list_vms()
        if operation == "start":
            records = [r for r in records if r.state == "stopped"] or records
        elif operation in ("stop", "migrate"):
            records = [r for r in records if r.state == "running"] or records
        if not records:
            return None
        return self.rng.choice(records).name
