"""Reproduction of TROPIC: Transactional Resource Orchestration Platform in
the Cloud (Liu et al., USENIX ATC 2012).

The package is organised as:

* :mod:`repro.core` — the transactional orchestration engine (controllers,
  workers, locks, constraints, reconciliation, high availability) and the
  :class:`~repro.core.platform.TropicPlatform` public API;
* :mod:`repro.datamodel` — the hierarchical resource data model;
* :mod:`repro.coordination` — the ZooKeeper-like coordination substrate;
* :mod:`repro.drivers` — mock compute/storage/network devices;
* :mod:`repro.tcloud` — the EC2-like TCloud service built on TROPIC,
  including composite multi-VM orchestrations;
* :mod:`repro.gateway` — the multi-tenant API service gateway (auth,
  quotas, namespacing, audit);
* :mod:`repro.workloads` — EC2 and hosting-provider workload generators;
* :mod:`repro.metrics` — statistics collectors and report rendering;
* :mod:`repro.cli` — the ``tropic-demo`` operator console.

Quickstart::

    from repro.tcloud import build_tcloud

    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2)
    with cloud.platform:
        result = cloud.spawn_vm("vm1", image_template="template-small")
        print(result.state)          # TransactionState.COMMITTED
        print(result.log.format_table())
"""

from repro.common.config import TropicConfig
from repro.common.errors import (
    ConstraintViolation,
    LockConflict,
    ReproError,
    TransactionAborted,
    TransactionFailed,
)
from repro.core.platform import TransactionHandle, TropicPlatform
from repro.core.procedures import ProcedureRegistry, procedure
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.schema import EntityType, ModelSchema
from repro.datamodel.tree import DataModel

__version__ = "1.0.0"

__all__ = [
    "TropicConfig",
    "TropicPlatform",
    "TransactionHandle",
    "Transaction",
    "TransactionState",
    "ProcedureRegistry",
    "procedure",
    "ModelSchema",
    "EntityType",
    "DataModel",
    "ReproError",
    "ConstraintViolation",
    "LockConflict",
    "TransactionAborted",
    "TransactionFailed",
    "__version__",
]
