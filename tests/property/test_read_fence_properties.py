"""Property tests for cross-shard-atomic replica reads (PR 7).

Hypothesis drives arbitrary interleavings of controller and worker steps
through a cross-shard 2PC commit while (a) fenced replica reads and
(b) a stitched multi-shard delta stream are consumed concurrently, and
asserts the read-side atomicity invariant at *every* intermediate state:
no fenced set of replica models, and no released stream prefix, ever
contains exactly one participant's half of the transaction.

A third property pins the subscription dedupe contract: a (seq, txid)
event group is applied to a subscriber exactly once no matter how the
producer redelivers it (the resume-after-resync hazard).
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import TropicConfig
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.platform import StitchedSubscription
from repro.core.readfence import fence_replica_sources
from repro.core.replica import (
    EVENT_DELTA,
    ReadReplica,
    Subscription,
    SubtreeDelta,
)
from repro.core.txn import TransactionState
from repro.testing import ShardedCluster

#: One interleaving step: (component, shard).
_step = st.tuples(st.sampled_from(["controller", "worker"]), st.sampled_from([0, 1]))

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _cluster() -> ShardedCluster:
    return ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=TropicConfig(checkpoint_every=100_000),
    )


def _replicas(cluster: ShardedCluster) -> dict[int, ReadReplica]:
    out = {}
    for shard in cluster.shard_ids:
        store = TropicStore(
            KVStore(cluster.client, f"/tropic/store/shard-{shard}"),
            shard_id=shard,
            num_shards=cluster.num_shards,
        )
        out[shard] = ReadReplica(
            store, cluster.schema, cluster.procedures, shard_id=shard
        )
        out[shard].refresh()
    return out


def _apply_step(cluster: ShardedCluster, step: tuple[str, int]) -> None:
    component, shard = step
    if component == "controller":
        cluster.controllers[shard].step()
    else:
        cluster.workers[shard].step()


def _fenced_models(cluster, replicas):
    """Refresh + fence, then return the per-shard models a fenced fleet
    view would merge (rewound forks where the fence cut, degraded shards
    omitted — they are outside the atomicity domain by contract)."""
    for replica in replicas.values():
        replica.refresh(force=True)
    result = fence_replica_sources(replicas, set(), cluster.twopc)
    models = {}
    for shard, replica in replicas.items():
        if shard in result.degraded:
            continue
        if shard in result.rewinds:
            models[shard] = result.rewinds[shard][0]
        else:
            models[shard] = replica.model(refresh=False)
    return models


def _halves(cluster, txn):
    vm_host, storage_host = txn.args["vm_host"], txn.args["storage_host"]
    name = txn.args["vm_name"]
    return (
        (cluster.router.shard_of(vm_host), f"{vm_host}/{name}"),
        (cluster.router.shard_of(storage_host), f"{storage_host}/{name}-disk"),
    )


@settings(**_SETTINGS)
@given(st.lists(_step, min_size=0, max_size=40))
def test_fenced_replica_reads_are_atomic_at_every_interleaving(plan):
    cluster = _cluster()
    replicas = _replicas(cluster)  # live-tailing: rewindable barriers
    txn = cluster.submit_cross_spawn("xprop")
    (vm_shard, vm_path), (img_shard, image_path) = _halves(cluster, txn)
    for step in plan:
        _apply_step(cluster, step)
        models = _fenced_models(cluster, replicas)
        if vm_shard in models and img_shard in models:
            vm_there = models[vm_shard].exists(vm_path)
            image_there = models[img_shard].exists(image_path)
            assert vm_there == image_there, (
                f"torn after {step}: vm={vm_there} image={image_there}"
            )
    cluster.drain()
    models = _fenced_models(cluster, replicas)
    committed = cluster.state_of(txn) is TransactionState.COMMITTED
    assert models[vm_shard].exists(vm_path) is committed
    assert models[img_shard].exists(image_path) is committed


class _StubProxy:
    """The two StitchedSubscription dependencies (routing + replicas)
    over a raw ShardedCluster, without a full platform."""

    def __init__(self, cluster: ShardedCluster, replicas: dict[int, ReadReplica]):
        self._platform = SimpleNamespace(
            config=SimpleNamespace(num_shards=cluster.num_shards),
            shard_router=cluster.router,
        )
        self._replicas = replicas

    def replica(self, shard: int) -> ReadReplica:
        return self._replicas[shard]


@settings(**_SETTINGS)
@given(st.lists(_step, min_size=0, max_size=40))
def test_stitched_stream_never_releases_exactly_one_half(plan):
    cluster = _cluster()
    replicas = _replicas(cluster)
    txn = cluster.submit_cross_spawn("xstream")
    (vm_shard, _), (img_shard, _) = _halves(cluster, txn)
    stitched = StitchedSubscription(
        _StubProxy(cluster, replicas),
        [txn.args["vm_host"], txn.args["storage_host"]],
    )
    participants = {vm_shard, img_shard}
    seen: set[int] = set()
    for step in plan:
        _apply_step(cluster, step)
        for shard, event in stitched.poll():
            if event.kind == EVENT_DELTA and event.txid == txn.txid:
                seen.add(shard)
        assert seen in (set(), participants), (
            f"stitched consumer holds half from {sorted(seen)} after {step}"
        )
    cluster.drain()
    for shard, event in stitched.poll():
        if event.kind == EVENT_DELTA and event.txid == txn.txid:
            seen.add(shard)
    if cluster.state_of(txn) is TransactionState.COMMITTED:
        assert seen == participants
    else:
        assert seen == set()


@settings(**_SETTINGS)
@given(st.lists(st.integers(min_value=0, max_value=10), max_size=30))
def test_subscription_delivers_each_commit_group_exactly_once(commit_ids):
    """Redeliver (seq, txid) groups in any pattern: each group reaches the
    subscriber exactly once, whole, in first-delivery order."""
    sub = Subscription(replica=None, path="/")
    for commit in commit_ids:
        sub._deliver(
            [
                SubtreeDelta(
                    EVENT_DELTA, commit + 1, f"t{commit}", f"/vmRoot/h{i}", "createVM"
                )
                for i in range(2)
            ]
        )
    events = sub.poll(refresh=False)
    groups = [event.txid for event in events[::2]]
    first_order = list(dict.fromkeys(f"t{c}" for c in commit_ids))
    assert groups == first_order
    # Whole groups, contiguous: pairs share txid.
    for first, second in zip(events[::2], events[1::2]):
        assert first.txid == second.txid
    assert len(events) == 2 * len(first_order)
