"""Property tests for cross-shard two-phase commit (PR 3).

Hypothesis drives *sequences* of controller crashes — any failure point,
targeting the coordinator or the participant shard, repeated — through a
mixed single-/cross-shard workload and asserts the protocol invariant:
every cross-shard transaction ends fully committed on both shards or fully
absent from both, never half-applied, and no acknowledged outcome is ever
lost.

Exactly one shard is fault-wired at a time (the injector's dead-process
semantics are per-crash, not per-shard); when a plan entry fires, the
felled shard fails over to a clean replica and the next entry re-wires its
target shard.  Entries whose point is unreachable in the remaining
workload simply never fire — the invariants must hold either way.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.testing import (
    ALL_FAILURE_POINTS,
    CrashPoint,
    FaultInjector,
    ShardedCluster,
)

#: A crash plan entry: (failure point, shard whose controller is faulty).
_crash = st.tuples(st.sampled_from(ALL_FAILURE_POINTS), st.sampled_from([0, 1]))


def _run_with_crash_plan(plan):
    injector = FaultInjector()
    cluster = ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=TropicConfig(checkpoint_every=1),
        injector=injector,
        faulty_shards=(plan[0][1],) if plan else (),
    )
    if plan:
        point = plan[0][0]
        injector.arm(point, injector.hits(point))

    local = [cluster.submit_spawn(f"l{i}", host_index=i % 4) for i in range(2)]
    cross = [cluster.submit_cross_spawn(f"x{i}", vm_host_index=i) for i in range(2)]

    consumed = 0
    for _ in range(5_000):
        progressed = False
        for shard in cluster.shard_ids:
            try:
                if cluster.controllers[shard].step():
                    progressed = True
            except CrashPoint:
                consumed += 1
                cluster.controllers[shard] = cluster.new_controller(
                    shard, faulty=False
                )
                if consumed < len(plan):
                    point, target = plan[consumed]
                    # Re-wire the next target (a fresh replica picks up the
                    # fault hooks; arming also revives the dead injector).
                    cluster.controllers[target] = cluster.new_controller(
                        target, faulty=True
                    )
                    injector.arm(point, injector.hits(point))
                progressed = True
            if cluster.workers[shard].step():
                progressed = True
        if not progressed and cluster.queues_empty():
            break
    else:
        raise AssertionError("cluster did not quiesce under the crash plan")
    return cluster, local, cross


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(_crash, min_size=0, max_size=3))
def test_any_crash_interleaving_is_atomic(plan):
    cluster, local, cross = _run_with_crash_plan(plan)

    # Single-shard transactions always survive controller crashes.
    for txn in local:
        assert cluster.state_of(txn) is TransactionState.COMMITTED

    # Cross-shard atomicity: both shards or neither, matching the outcome.
    for txn in cross:
        state = cluster.state_of(txn)
        vm_host, storage_host = txn.args["vm_host"], txn.args["storage_host"]
        vm_name = txn.args["vm_name"]
        vm_there = cluster.model(cluster.router.shard_of(vm_host)).exists(
            f"{vm_host}/{vm_name}"
        )
        image_there = cluster.model(cluster.router.shard_of(storage_host)).exists(
            f"{storage_host}/{vm_name}-disk"
        )
        assert vm_there == image_there, f"{txn.txid} half-applied"
        if state is TransactionState.COMMITTED:
            assert vm_there
        else:
            assert state in (TransactionState.ABORTED, TransactionState.FAILED)
            assert not vm_there

    # Acknowledged outcomes are stable across every crash in the plan.
    for acked in cluster.acked:
        assert cluster.state_of(acked) is acked.state

    # Nothing leaks: locks or outstanding maps.
    for shard in cluster.shard_ids:
        assert cluster.controllers[shard].lock_manager.active_transactions() == set()
        assert cluster.controllers[shard].outstanding == {}
