"""Property tests for copy-on-write snapshots (PR 5).

Two invariants the CoW rebuild must never break:

* **snapshot immutability** — a snapshot (fork) taken before an arbitrary
  mutation sequence is byte-identical after it: no mutation may leak
  through the structural sharing, whichever side mutates; and
* **recovery equality** — a checkpoint written from a CoW-forked model
  reassembles to exactly the model the seed deep-copy path produced, so
  leader failover and replica bootstrap are unaffected by sharing.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import DataModelError, UnknownPathError
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel

HOSTS = 3
VMS = 2


def build_model() -> DataModel:
    model = DataModel()
    model.create("/vmRoot", "vmRoot")
    model.create("/storageRoot", "storageRoot")
    for h in range(HOSTS):
        model.create(f"/vmRoot/host{h}", "vmHost", {"mem_mb": 4096, "images": []})
        for v in range(VMS):
            model.create(f"/vmRoot/host{h}/vm{v}", "vm", {"state": "stopped"})
        model.create(f"/storageRoot/store{h}", "storageHost", {"capacity_gb": 100.0})
    return model


def dumps(model: DataModel) -> str:
    return json.dumps(model.to_dict(), sort_keys=True)


# -- mutation strategy -------------------------------------------------------
#
# Each operation is a tuple interpreted by apply_op; paths are drawn from
# the unit population above (existing or not — invalid operations are
# allowed to fail, what matters is that they never corrupt a snapshot).

host_idx = st.integers(0, HOSTS)  # one past the end: may miss
vm_idx = st.integers(0, VMS)
attr_val = st.one_of(st.integers(-100, 100), st.booleans(),
                     st.text("ab", max_size=3))

op_strategy = st.one_of(
    st.tuples(st.just("set_attrs"), host_idx, vm_idx, attr_val),
    st.tuples(st.just("create_vm"), host_idx, st.integers(0, 9)),
    st.tuples(st.just("delete_vm"), host_idx, vm_idx),
    st.tuples(st.just("delete_host"), host_idx),
    st.tuples(st.just("create_host"), st.integers(0, 9)),
    st.tuples(st.just("fence"), host_idx),
    st.tuples(st.just("direct_write"), host_idx, vm_idx, attr_val),
    st.tuples(st.just("replace"), host_idx),
)


def apply_op(model: DataModel, op: tuple) -> None:
    kind = op[0]
    try:
        if kind == "set_attrs":
            model.set_attrs(f"/vmRoot/host{op[1]}/vm{op[2]}", extra=op[3])
        elif kind == "create_vm":
            model.create(f"/vmRoot/host{op[1]}/vm{op[2]}", "vm", {"state": "new"})
        elif kind == "delete_vm":
            model.delete(f"/vmRoot/host{op[1]}/vm{op[2]}")
        elif kind == "delete_host":
            model.delete(f"/vmRoot/host{op[1]}", recursive=True)
        elif kind == "create_host":
            model.create(f"/vmRoot/host{op[1]}", "vmHost", {"mem_mb": 1})
        elif kind == "fence":
            model.mark_inconsistent(f"/vmRoot/host{op[1]}")
        elif kind == "direct_write":
            # The action-simulation idiom: claim the subtree, then mutate
            # through the Node API (descendants included).
            host = model.get_for_write(f"/vmRoot/host{op[1]}")
            vm = host.child(f"vm{op[2]}")
            if vm is not None:
                vm["state"] = op[3]
            else:
                host.add_child(Node(f"vm{op[2]}", "vm", {"state": op[3]}))
        elif kind == "replace":
            model.replace_subtree(
                f"/vmRoot/host{op[1]}",
                Node(f"host{op[1]}", "vmHost", {"mem_mb": 7}),
            )
    except (DataModelError, UnknownPathError):
        pass  # invalid op against the current tree shape: fine


class TestSnapshotImmutability:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=20))
    def test_snapshot_is_byte_identical_after_mutations(self, ops):
        model = build_model()
        snapshot = model.clone()
        frozen = dumps(snapshot)
        for op in ops:
            apply_op(model, op)
        assert dumps(snapshot) == frozen

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=20))
    def test_original_is_byte_identical_after_fork_mutations(self, ops):
        model = build_model()
        frozen = dumps(model)
        fork = model.clone()
        for op in ops:
            apply_op(fork, op)
        assert dumps(model) == frozen

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=12),
           st.lists(op_strategy, min_size=1, max_size=12))
    def test_interleaved_snapshots_pin_their_states(self, first, second):
        """Snapshots taken at different points each freeze their state."""
        model = build_model()
        snap_a = model.clone()
        frozen_a = dumps(snap_a)
        for op in first:
            apply_op(model, op)
        snap_b = model.clone()
        frozen_b = dumps(snap_b)
        for op in second:
            apply_op(model, op)
        assert dumps(snap_a) == frozen_a
        assert dumps(snap_b) == frozen_b

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=15))
    def test_fork_equals_deep_clone_after_mutations(self, ops):
        """Applying the same ops to a CoW fork and to a deep clone must
        produce identical trees — sharing is an optimisation, never a
        semantic."""
        model = build_model()
        fork = model.clone()
        deep = model.deep_clone()
        for op in ops:
            apply_op(fork, op)
            apply_op(deep, op)
        assert dumps(fork) == dumps(deep)


class TestRecoveryEquality:
    def _store(self) -> TropicStore:
        ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
        return TropicStore(KVStore(CoordinationClient(ensemble), "/tropic/store"))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=15))
    def test_checkpoint_from_cow_fork_equals_deep_copy_path(self, ops):
        """Checkpoints written from a CoW-shared model reassemble to the
        same model the seed deep-copy path produces."""
        model = build_model()
        for op in ops:
            apply_op(model, op)
        # Hold live snapshots across the serialisation, as fleet views do.
        snapshot = model.clone()

        cow_store = self._store()
        cow_store.save_checkpoint(model, applied_seq=0)
        restored_cow, _ = cow_store.load_checkpoint()

        deep_store = self._store()
        deep_store.save_checkpoint(model.deep_clone(), applied_seq=0)
        restored_deep, _ = deep_store.load_checkpoint()

        assert dumps(restored_cow) == dumps(restored_deep) == dumps(model)
        assert dumps(snapshot) == dumps(model)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy, min_size=1, max_size=12))
    def test_incremental_checkpoint_under_forks_matches_full(self, ops):
        """Dirty-unit incremental checkpoints stay correct when snapshots
        are forked between mutations (forks must not eat dirty marks)."""
        store = self._store()
        model = build_model()
        store.save_checkpoint(model, applied_seq=0)
        model.clear_dirty()
        snapshots = []
        for index, op in enumerate(ops):
            apply_op(model, op)
            if index % 3 == 0:
                snapshots.append(model.clone())
        store.save_checkpoint_incremental(model, applied_seq=1)
        restored, _ = store.load_checkpoint()
        assert dumps(restored) == dumps(model)
