"""Wound-wait prepare admission under concurrent cross-shard 2PC (PR 9).

The fleet-wide prepare ticket is gone: disjoint cross-shard prepares run
fully in parallel and conflicts are resolved by txid age — the older
transaction wounds a younger prepare-phase lock holder (abort the attempt
via the presumed-abort decision path, retry as a fresh attempt after a
seeded backoff); the younger transaction waits for the older.  This suite
proves the replacement protocol over *interleavings* of 2-4 concurrent
cross-shard transactions with overlapping participant sets:

* **No deadlock** — every interleaving (hypothesis-chosen stepping order
  over both controllers and both workers) quiesces within bounded rounds;
  wait-for edges only ever point young -> old, so no cycle can form.
* **No livelock / bounded wounds** — the oldest transaction is never
  wounded, and the total number of wounds per run is bounded; every
  transaction commits once the contention clears.
* **Txid-order wounds** — every wound recorded by the spy is inflicted by
  a strictly older (lexicographically smaller, zero-padded monotonic)
  txid, on both the coordinator-local and the wound-message paths.
* **Atomicity** — both shards or neither, for every cross-shard
  transaction, at every fenced replica read taken mid-interleaving and in
  the final models; recovered replicas reproduce the incumbent model.
* **Crash safety** — the new ``2pc-pre-wound``/``2pc-post-wound``/
  ``2pc-concurrent-prepare`` edges (and every pre-existing failure point)
  leave the protocol recoverable: a wounded PREPARED participant resolves
  through the decision log exactly as any other abort.

Contention is real, not simulated: the cluster runs the *aggressive*
scheduler (the §3.1.1 policy that schedules past a blocked queue head),
so a younger cross-shard transaction genuinely overtakes a blocked older
one and ends up holding prepare-phase locks the older transaction then
claims back by wounding.  Under the default FIFO scheduler age order is
preserved and wounds cannot occur — which is itself asserted below.
"""

from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import TropicConfig
from repro.coordination.kvstore import KVStore
from repro.core.controller import Controller
from repro.core.events import wound_message
from repro.core.persistence import TropicStore
from repro.core.readfence import fence_replica_sources
from repro.core.replica import ReadReplica
from repro.core.twopc import DECISION_ABORT, DECISION_COMMIT
from repro.core.txn import TransactionState
from repro.testing import (
    ALL_FAILURE_POINTS,
    CrashPoint,
    FaultInjector,
    ShardedCluster,
)
from repro.testing.faults import (
    TWOPC_CONCURRENT_PREPARE,
    TWOPC_POST_WOUND,
    TWOPC_PRE_WOUND,
)

import pytest

#: Aggressive scheduling is what makes younger-overtakes-older (and hence
#: wounds) reachable; tight checkpoints keep the checkpoint crash edges
#: reachable inside short workloads.
_CONTENTION = dict(checkpoint_every=2, scheduler_policy="aggressive")

#: Lexicographically below every real txid (they start at txn-000001):
#: a synthetic "oldest transaction in the fleet" for directed wounds.
_ANCIENT = "txn-000000"


@contextmanager
def record_wounds():
    """Spy on every wound actually inflicted: (shard, victim, wounded_by)."""
    ledger: list[tuple[int, str, str]] = []
    original = Controller._wound_cross_shard

    def spy(self, txn, by):
        ledger.append((self.shard_id, txn.txid, by))
        return original(self, txn, by)

    Controller._wound_cross_shard = spy
    try:
        yield ledger
    finally:
        Controller._wound_cross_shard = original


def _contended_cluster(injector=None, faulty_shards=(), **config_overrides):
    config = TropicConfig(**{**_CONTENTION, **config_overrides})
    return ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=config,
        injector=injector,
        faulty_shards=faulty_shards,
    )


def _vm_hosts_of(cluster, shard):
    return [
        host
        for host in cluster.inventory.vm_hosts
        if cluster.router.shard_of(host) == shard
    ]


def _host_index(cluster, host):
    return cluster.inventory.vm_hosts.index(host)


def _assert_atomic(cluster, cross):
    """Both shards or neither, matching the terminal outcome."""
    for txn in cross:
        state = cluster.state_of(txn)
        vm_host, storage_host = txn.args["vm_host"], txn.args["storage_host"]
        vm_name = txn.args["vm_name"]
        vm_there = cluster.model(cluster.router.shard_of(vm_host)).exists(
            f"{vm_host}/{vm_name}"
        )
        image_there = cluster.model(cluster.router.shard_of(storage_host)).exists(
            f"{storage_host}/{vm_name}-disk"
        )
        assert vm_there == image_there, f"{txn.txid} half-applied"
        if state is TransactionState.COMMITTED:
            assert vm_there
        else:
            assert state in (TransactionState.ABORTED, TransactionState.FAILED)
            assert not vm_there


def _assert_no_leaks(cluster):
    for shard in cluster.shard_ids:
        assert cluster.controllers[shard].lock_manager.active_transactions() == set()
        assert cluster.controllers[shard].outstanding == {}


def _assert_recovery_equal(cluster):
    """A fresh replica recovering purely from the store reproduces each
    shard's model — including after wounds, retries and crashes."""
    for shard in cluster.shard_ids:
        incumbent = cluster.model(shard).to_dict()
        fresh = cluster.new_controller(shard, faulty=False)
        fresh.recover()
        assert fresh.model.to_dict() == incumbent, (
            f"shard {shard}: recovered model diverged"
        )


def _assert_fenced_reads_atomic(cluster, cross):
    """A fenced replica read taken *now* — possibly mid-protocol — must be
    cross-shard atomic for every transaction in ``cross`` (PR 7's read
    fence composed with PR 9's concurrent prepares)."""
    replicas = {}
    for shard in cluster.shard_ids:
        store = TropicStore(
            KVStore(cluster.client, f"/tropic/store/shard-{shard}"),
            shard_id=shard,
            num_shards=cluster.num_shards,
        )
        replicas[shard] = ReadReplica(
            store, cluster.schema, cluster.procedures, shard_id=shard
        )
        replicas[shard].refresh(force=True)
    fenced = fence_replica_sources(replicas, set(), cluster.twopc)
    models = {}
    for shard, replica in replicas.items():
        if shard in fenced.degraded:
            continue
        if shard in fenced.rewinds:
            models[shard] = fenced.rewinds[shard][0]
        else:
            models[shard] = replica.model(refresh=False)
    for txn in cross:
        vm_host, storage_host = txn.args["vm_host"], txn.args["storage_host"]
        vm_shard = cluster.router.shard_of(vm_host)
        img_shard = cluster.router.shard_of(storage_host)
        if vm_shard not in models or img_shard not in models:
            continue
        name = txn.args["vm_name"]
        vm_there = models[vm_shard].exists(f"{vm_host}/{name}")
        image_there = models[img_shard].exists(f"{storage_host}/{name}-disk")
        assert vm_there == image_there, f"fenced read tore {name}"


def _wound_recipe(cluster):
    """The deterministic younger-holds-older-claims interleaving.

    A single-shard blocker holds the older transaction's compute host, so
    the aggressive scheduler lets the *younger* cross-shard transaction
    overtake and acquire the storage host both of them need (a coordinator
    locks its full rwset locally, foreign paths included).  When the older
    transaction next runs it finds the younger PREPARING on the shared
    path and wounds it.  Returns (blocker, older, younger); the blocker's
    physical work is still pending, so the caller controls exactly when
    the contention clears.
    """
    shard0_hosts = _vm_hosts_of(cluster, 0)
    assert len(shard0_hosts) >= 2
    blocker = cluster.submit_spawn(
        "blocker", host_index=_host_index(cluster, shard0_hosts[1])
    )
    older = cluster.submit_cross_spawn(
        "ww-old", vm_host_index=_host_index(cluster, shard0_hosts[1])
    )
    younger = cluster.submit_cross_spawn(
        "ww-young", vm_host_index=_host_index(cluster, shard0_hosts[0])
    )
    assert older.txid < younger.txid
    assert older.args["storage_host"] == younger.args["storage_host"]
    return blocker, older, younger


# ----------------------------------------------------------------------
# Directed interleavings: the wound paths, step by step
# ----------------------------------------------------------------------


class TestDirectedWounds:
    def test_blocked_older_coordinator_wounds_younger_preparing_holder(self):
        cluster = _contended_cluster()
        with record_wounds() as ledger:
            blocker, older, younger = _wound_recipe(cluster)

            # One pass: the blocker starts (holding older's vm host), the
            # older defers, the younger overtakes into PREPARING, holding
            # the shared storage host.
            cluster.controllers[0].step()
            assert ledger == []
            assert cluster.state_of(younger) is TransactionState.PREPARING

            # Next pass: the older transaction claims the shared storage
            # host back from the younger PREPARING holder — wound by age.
            cluster.controllers[0].step()
            assert ledger == [(0, younger.txid, older.txid)]

        coordinator = cluster.controllers[0]
        assert coordinator.stats["cross_shard_wounded"] == 1
        # The wound's abort decision is durable before the retry: a
        # participant that persisted this attempt resolves it through the
        # decision log (the wound-without-decision analysis rule pins the
        # decide-before-release ordering in the source).
        assert cluster.twopc.decision(younger.txid, 0) == DECISION_ABORT
        # The victim is requeued as a fresh attempt, cooling down.
        wounded = {t.txid: t for t in coordinator.todo.transactions()}[younger.txid]
        assert wounded.state is TransactionState.DEFERRED
        assert wounded.wound_count == 1
        assert wounded.wound_cooldown >= 1
        assert wounded.defer_count >= 1
        # Its locks are gone: the older transaction is only still waiting
        # on the single-shard blocker, which is past wounding.
        assert younger.txid not in coordinator.lock_manager.active_transactions()

        # Let the blocker finish; everyone commits — wounds defer, they
        # never decide outcomes.
        cluster.drain()
        for txn in (blocker, older, younger):
            assert cluster.state_of(txn) is TransactionState.COMMITTED
        # The retry cleared the wound's abort record before re-preparing;
        # the surviving decision is the commit.
        assert cluster.twopc.decision(younger.txid, 0) == DECISION_COMMIT
        _assert_atomic(cluster, [older, younger])
        _assert_no_leaks(cluster)
        _assert_recovery_equal(cluster)

    def test_fifo_scheduling_preserves_age_order_and_never_wounds(self):
        """Under the default FIFO policy the queue never lets a younger
        transaction overtake, so the same contention resolves by waiting
        alone — wound-wait degrades to plain age-ordered admission."""
        cluster = _contended_cluster(scheduler_policy="fifo")
        with record_wounds() as ledger:
            blocker, older, younger = _wound_recipe(cluster)
            cluster.drain()
        assert ledger == []
        for txn in (blocker, older, younger):
            assert cluster.state_of(txn) is TransactionState.COMMITTED
        _assert_no_leaks(cluster)

    def test_prepared_foreign_slice_draws_a_wound_message(self):
        """An older transaction conflicting with a PREPARED slice of a
        *foreign* coordinator cannot wound locally — it reports the holder
        to that coordinator with a wound message, exactly once."""
        cluster = _contended_cluster()
        txn = cluster.submit_cross_spawn("remote", vm_host_index=0)
        cluster.controllers[0].step()  # coordinator: PREPARING, prepare out
        cluster.controllers[1].step()  # participant: slice PREPARED + locked
        participant = cluster.controllers[1]
        assert participant.outstanding[txn.txid].state is TransactionState.PREPARED

        requests = participant.lock_manager.requests_for(
            participant.outstanding[txn.txid].rwset
        )
        conflicts = participant.lock_manager.find_conflicts(_ANCIENT, requests)
        assert conflicts, "the prepared slice must hold the contested locks"

        wounded_locally = participant._wound_or_wait(_ANCIENT, conflicts)
        assert wounded_locally is False  # foreign coordinator: message, not wound
        sent = [
            (shard, message)
            for shard, message in participant._outbound
            if message.get("kind") == "wound"
        ]
        assert len(sent) == 1
        shard, message = sent[0]
        assert shard == 0  # routed to the victim's coordinator
        assert message["txid"] == txn.txid
        assert message["by"] == _ANCIENT
        assert participant.stats["cross_shard_wounds_sent"] == 1

        # Dedup: the same requester re-checking the same holder does not
        # flood the coordinator.
        participant._wound_or_wait(_ANCIENT, conflicts)
        assert participant.stats["cross_shard_wounds_sent"] == 1

    def test_wound_message_defers_a_preparing_coordinator(self):
        """Coordinator side of the message path: a wound arriving while
        the victim is still PREPARING aborts the attempt through the
        decision log and requeues it — then the retry commits."""
        cluster = _contended_cluster()
        txn = cluster.submit_cross_spawn("victim", vm_host_index=0)
        cluster.controllers[0].step()  # PREPARING (participant never stepped)
        assert cluster.state_of(txn) is TransactionState.PREPARING

        with record_wounds() as ledger:
            cluster.input_queues[0].put(wound_message(txn.txid, _ANCIENT, 1))
            cluster.controllers[0].step()
        assert ledger == [(0, txn.txid, _ANCIENT)]
        assert cluster.twopc.decision(txn.txid, 0) == DECISION_ABORT

        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        assert cluster.twopc.decision(txn.txid, 0) == DECISION_COMMIT
        _assert_atomic(cluster, [txn])
        _assert_no_leaks(cluster)

    def test_stale_wound_messages_are_dropped_idempotently(self):
        """Wounds are advisory: anything but an older txid targeting a
        local PREPARING coordinator is silently ignored."""
        cluster = _contended_cluster()
        local = cluster.submit_spawn("plain", host_index=0)
        cross = cluster.submit_cross_spawn("busy", vm_host_index=0)
        cluster.controllers[0].step()  # local STARTED, cross PREPARING

        with record_wounds() as ledger:
            # Unknown transaction; single-shard STARTED holder; a younger
            # "wounder" (equal and greater txids); missing/odd `by`.
            for message in (
                wound_message("txn-999999", _ANCIENT, 1),
                wound_message(local.txid, _ANCIENT, 1),
                wound_message(cross.txid, cross.txid, 1),
                wound_message(cross.txid, "txn-999999", 1),
                {"kind": "wound", "txid": cross.txid, "by": None, "shard": 1},
            ):
                cluster.input_queues[0].put(message)
            cluster.controllers[0].step()
        assert ledger == []
        assert cluster.controllers[0].stats["cross_shard_wounded"] == 0

        cluster.drain()
        for txn in (local, cross):
            assert cluster.state_of(txn) is TransactionState.COMMITTED
        _assert_no_leaks(cluster)


# ----------------------------------------------------------------------
# Directed crashes at the new wound edges
# ----------------------------------------------------------------------


class TestWoundCrashPoints:
    def _crash_at(self, point):
        injector = FaultInjector()
        cluster = _contended_cluster(injector=injector, faulty_shards=(0,))
        injector.arm(point, injector.hits(point))
        return injector, cluster

    @pytest.mark.parametrize("point", [TWOPC_PRE_WOUND, TWOPC_POST_WOUND])
    def test_crash_mid_wound_recovers_atomically(self, point):
        """Dying at either wound edge never tears a transaction: before
        the wound is durable the successor presumed-aborts the PREPARING
        victim; after it, the abort decision already resolves every
        participant.  Either way the survivors commit and recovery
        reproduces the models."""
        injector, cluster = self._crash_at(point)
        blocker, older, younger = _wound_recipe(cluster)
        with pytest.raises(CrashPoint):
            for _ in range(50):
                cluster.controllers[0].step()
        assert injector.fired[-1].point == point
        cluster.controllers[0] = cluster.new_controller(0, faulty=False)
        cluster.drain(failover=True)

        for txn in (blocker, older, younger):
            state = cluster.state_of(txn)
            assert state is not None and cluster.load(txn).is_terminal
        assert cluster.state_of(blocker) is TransactionState.COMMITTED
        assert cluster.state_of(older) is TransactionState.COMMITTED
        _assert_atomic(cluster, [older, younger])
        _assert_no_leaks(cluster)
        _assert_recovery_equal(cluster)
        _assert_fenced_reads_atomic(cluster, [older, younger])

    def test_crash_entering_a_concurrent_prepare_recovers(self):
        """``2pc-concurrent-prepare`` fires as a coordinator fans out while
        another cross-shard transaction is mid-protocol on the same shard —
        the concurrency the ticket used to forbid.  A death there leaves
        an un-persisted attempt, which recovery simply requeues (while
        presumed-aborting the transaction already mid-prepare)."""
        injector, cluster = self._crash_at(TWOPC_CONCURRENT_PREPARE)
        # Two cross-shard transactions with *disjoint* lock sets (homes on
        # opposite shards, so vm hosts and storage hosts all differ) share
        # the coordinator: the first is mid-protocol when the second fans
        # out, which is exactly the edge.
        foreign_home = _vm_hosts_of(cluster, 1)[0]
        remote = cluster.submit_cross_spawn(
            "conc-remote", vm_host_index=_host_index(cluster, foreign_home)
        )
        cluster.controllers[0].step()
        assert (
            cluster.controllers[0].outstanding[remote.txid].state
            is TransactionState.PREPARING
        )
        local_home = _vm_hosts_of(cluster, 0)[0]
        local = cluster.submit_cross_spawn(
            "conc-local", vm_host_index=_host_index(cluster, local_home)
        )
        with pytest.raises(CrashPoint):
            for _ in range(50):
                cluster.controllers[0].step()
        assert injector.fired[-1].point == TWOPC_CONCURRENT_PREPARE
        cluster.controllers[0] = cluster.new_controller(0, faulty=False)
        cluster.drain(failover=True)

        # The transaction whose coordinator died mid-prepare is presumed
        # aborted by the successor; the one whose attempt was never
        # persisted is requeued and commits.
        assert cluster.state_of(remote) is TransactionState.ABORTED
        assert cluster.state_of(local) is TransactionState.COMMITTED
        _assert_atomic(cluster, [remote, local])
        _assert_no_leaks(cluster)
        _assert_recovery_equal(cluster)


# ----------------------------------------------------------------------
# Hypothesis: arbitrary interleavings and crash plans
# ----------------------------------------------------------------------

#: An interleaving is a sequence of component activations: controller or
#: worker, on either shard.
_component = st.tuples(st.sampled_from(["controller", "worker"]), st.sampled_from([0, 1]))

#: A crash plan entry, as in test_twopc_properties: (point, faulty shard).
_crash = st.tuples(st.sampled_from(ALL_FAILURE_POINTS), st.sampled_from([0, 1]))


def _submit_contenders(cluster, homes, with_blocker):
    """2-4 cross-shard transactions with overlapping participant sets
    (same-home transactions additionally share their foreign storage
    host), optionally behind a single-shard blocker on the first home."""
    shard_hosts = {shard: _vm_hosts_of(cluster, shard) for shard in cluster.shard_ids}
    blockers = []
    if with_blocker:
        host = shard_hosts[homes[0]][0]
        blockers.append(
            cluster.submit_spawn("blk", host_index=_host_index(cluster, host))
        )
    cross = []
    for i, home in enumerate(homes):
        hosts = shard_hosts[home]
        host = hosts[i % len(hosts)]
        cross.append(
            cluster.submit_cross_spawn(
                f"ww{i}", vm_host_index=_host_index(cluster, host)
            )
        )
    return blockers, cross


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    homes=st.lists(st.sampled_from([0, 1]), min_size=2, max_size=4),
    with_blocker=st.booleans(),
    schedule=st.lists(_component, min_size=0, max_size=30),
)
def test_interleaved_concurrent_prepares_commit_without_deadlock(
    homes, with_blocker, schedule
):
    """Any stepping order over 2-4 contending cross-shard transactions
    quiesces with everything committed: wounds happen only in txid order,
    are bounded (no livelock), and fenced reads taken mid-protocol never
    tear — all with zero crash faults, isolating pure concurrency."""
    cluster = _contended_cluster()
    with record_wounds() as ledger:
        blockers, cross = _submit_contenders(cluster, homes, with_blocker)
        for kind, shard in schedule:
            if kind == "controller":
                cluster.controllers[shard].step()
            else:
                cluster.workers[shard].step()
        # A fenced replica read in the thick of the interleaving.
        _assert_fenced_reads_atomic(cluster, cross)
        cluster.drain()

    oldest = min(txn.txid for txn in cross + blockers)
    for shard, victim, by in ledger:
        assert by < victim, "a wound must come from a strictly older txid"
        assert victim != oldest, "the oldest transaction is never wounded"
    # Bounded wounds: contention between n transactions cannot wound
    # unboundedly (no livelock); the constant is generous — observed runs
    # wound a handful of times at most.
    assert len(ledger) <= 3 * len(cross) * max(1, len(cross) - 1)

    for txn in blockers + cross:
        assert cluster.state_of(txn) is TransactionState.COMMITTED
    _assert_atomic(cluster, cross)
    _assert_fenced_reads_atomic(cluster, cross)
    _assert_no_leaks(cluster)
    _assert_recovery_equal(cluster)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    homes=st.lists(st.sampled_from([0, 1]), min_size=2, max_size=3),
    plan=st.lists(_crash, min_size=0, max_size=3),
)
def test_crashed_contended_interleavings_stay_atomic(homes, plan):
    """Controller-death sequences at any failure point — including the
    new wound edges — over contending concurrent prepares: atomicity,
    acked-outcome stability, txid-order wounds and recovered-model
    equality all hold, exactly as the ticketed protocol promised."""
    injector = FaultInjector()
    cluster = ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=TropicConfig(**_CONTENTION),
        injector=injector,
        faulty_shards=(plan[0][1],) if plan else (),
    )
    if plan:
        point = plan[0][0]
        injector.arm(point, injector.hits(point))

    with record_wounds() as ledger:
        blockers, cross = _submit_contenders(cluster, homes, with_blocker=True)
        consumed = 0
        for _ in range(5_000):
            progressed = False
            for shard in cluster.shard_ids:
                try:
                    if cluster.controllers[shard].step():
                        progressed = True
                except CrashPoint:
                    consumed += 1
                    cluster.controllers[shard] = cluster.new_controller(
                        shard, faulty=False
                    )
                    if consumed < len(plan):
                        point, target = plan[consumed]
                        cluster.controllers[target] = cluster.new_controller(
                            target, faulty=True
                        )
                        injector.arm(point, injector.hits(point))
                    progressed = True
                if cluster.workers[shard].step():
                    progressed = True
            if not progressed and cluster.queues_empty():
                break
        else:
            raise AssertionError("cluster did not quiesce under the crash plan")

    for shard, victim, by in ledger:
        assert by < victim

    # Single-shard blockers always survive controller crashes.
    for txn in blockers:
        assert cluster.state_of(txn) is TransactionState.COMMITTED
    # Cross-shard: terminal, atomic, and consistent with the decision log.
    for txn in cross:
        loaded = cluster.load(txn)
        assert loaded is not None and loaded.is_terminal
    _assert_atomic(cluster, cross)
    # Acknowledged outcomes are stable across every crash in the plan.
    for acked in cluster.acked:
        assert cluster.state_of(acked) is acked.state
    _assert_no_leaks(cluster)
    _assert_recovery_equal(cluster)
    _assert_fenced_reads_atomic(cluster, cross)
