"""Property-based tests for the shard routing layer (PR 2).

Invariants proved here:

* every resource path routes to exactly one shard, always in range;
* routing is *stable across process restarts* — a shard map round-tripped
  through its persisted form (and a freshly constructed router) makes
  identical decisions, and the hash fallback is content-stable (CRC-32,
  not Python's salted ``hash``);
* the shard map *partitions* the tree: ownership is decided by the
  second-level unit prefix, so no path (and no unit) is owned by two
  shards, deeper paths inherit their unit's owner, and per-shard ownership
  sets are pairwise disjoint while covering every unit;
* the cross-shard policy behaves as documented (reject raises with the
  involved shards; pin picks the lowest deterministically).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CrossShardTransaction
from repro.core.sharding import (
    RouteDecision,
    ShardMap,
    ShardRouter,
    colocated_assignments,
    extract_paths,
    is_global_path,
    stable_shard,
    unit_key,
)
from repro.datamodel.path import ResourcePath

component = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8)
deep_path = st.lists(component, min_size=2, max_size=5).map(lambda p: "/" + "/".join(p))
any_path = st.lists(component, min_size=0, max_size=5).map(lambda p: "/" + "/".join(p))
num_shards = st.integers(min_value=1, max_value=8)


@st.composite
def shard_maps(draw):
    n = draw(num_shards)
    keys = draw(st.lists(deep_path, max_size=6, unique=True))
    assignments = {key: draw(st.integers(0, n - 1)) for key in keys}
    return ShardMap(n, assignments)


class TestOwnership:
    @given(shard_maps(), any_path)
    def test_every_path_routes_to_exactly_one_in_range_shard(self, shard_map, path):
        shard = shard_map.shard_of(path)
        assert isinstance(shard, int)
        assert 0 <= shard < shard_map.num_shards
        # Deterministic: asking again gives the same answer.
        assert shard_map.shard_of(path) == shard

    @given(shard_maps(), deep_path, st.lists(component, min_size=0, max_size=3))
    def test_descendants_inherit_their_units_owner(self, shard_map, path, suffix):
        """The partition is by subtree: any path below a unit is owned by
        the unit's shard — no path can be owned by two shards."""
        deeper = path + ("/" + "/".join(suffix) if suffix else "")
        assert shard_map.shard_of(deeper) == shard_map.shard_of(unit_key(path))

    @given(shard_maps(), st.lists(deep_path, min_size=1, max_size=12, unique=True))
    def test_per_shard_ownership_sets_partition_the_units(self, shard_map, paths):
        units = {unit_key(p) for p in paths}
        owned = {
            shard: {u for u in units if shard_map.owns(shard, u)}
            for shard in range(shard_map.num_shards)
        }
        # Pairwise disjoint ...
        for a in range(shard_map.num_shards):
            for b in range(a + 1, shard_map.num_shards):
                assert not (owned[a] & owned[b])
        # ... and jointly exhaustive.
        assert set().union(*owned.values()) == units

    @given(st.integers(1, 8),
           st.lists(deep_path, min_size=1, max_size=12, unique=True),
           st.integers(1, 4))
    def test_colocated_groups_land_on_one_shard(self, n, paths, group_size):
        # Chunk disjoint unit keys into groups; each group must co-locate.
        units = sorted({unit_key(p) for p in paths})
        groups = [units[i:i + group_size] for i in range(0, len(units), group_size)]
        shard_map = ShardMap(n, colocated_assignments(groups, n))
        for group in groups:
            owners = {shard_map.shard_of(path) for path in group}
            assert len(owners) == 1


class TestRestartStability:
    @given(shard_maps(), st.lists(any_path, max_size=8))
    def test_routing_survives_persist_and_reload(self, shard_map, paths):
        """A 'process restart': the map is serialised to its stored form
        and reloaded by a brand-new router; every decision must match."""
        reloaded = ShardMap.from_dict(shard_map.to_dict())
        assert reloaded == shard_map
        for path in paths:
            assert reloaded.shard_of(path) == shard_map.shard_of(path)

    @given(deep_path, num_shards)
    def test_hash_fallback_is_content_stable(self, path, n):
        # Known CRC-32 anchors: stable across processes and Python builds
        # (unlike the salted builtin hash()).
        assert stable_shard(unit_key(path), n) == stable_shard(unit_key(path), n)
        assert stable_shard("/vmRoot/vmHost0", 4) == 3435013667 % 4

    def test_known_key_regression_anchor(self):
        import zlib

        for key in ("/vmRoot/vmHost0", "/storageRoot/storageHost3", "/netRoot/router0"):
            assert stable_shard(key, 8) == zlib.crc32(key.encode()) % 8


class TestRoutingPolicy:
    def _router(self, n, policy="reject"):
        return ShardRouter(ShardMap(n, {"/a/one": 0, "/a/two": 1 % n, "/a/three": 2 % n}),
                           policy)

    def test_single_shard_args_route_to_owner(self):
        router = self._router(4)
        decision = router.route_args({"x": "/a/one/leaf", "y": "/a/one"})
        assert decision == RouteDecision(
            shard=0, shards=frozenset({0}), paths=("/a/one/leaf", "/a/one")
        )
        assert router.resolve("p", {"x": "/a/one/leaf"}) == 0

    def test_cross_shard_rejected_with_involved_shards(self):
        router = self._router(4)
        try:
            router.resolve("p", {"x": "/a/one", "y": "/a/two"})
        except CrossShardTransaction as exc:
            assert exc.shards == [0, 1]
        else:  # pragma: no cover
            raise AssertionError("cross-shard submission was not rejected")

    def test_pin_policy_picks_lowest_shard_deterministically(self):
        router = self._router(4, policy="pin")
        assert router.resolve("p", {"x": "/a/two", "y": "/a/three"}) == 1
        assert router.resolve("p", {"x": "/a/three", "y": "/a/two"}) == 1

    def test_global_paths_span_every_shard(self):
        router = self._router(3)
        decision = router.route_args({"x": "/a", "y": "/a/one"})
        assert decision.global_scope and decision.cross_shard
        assert decision.shards == frozenset({0, 1, 2})
        # ... but a single-shard deployment routes everything to shard 0.
        single = ShardRouter(ShardMap(1, {}))
        assert single.resolve("p", {"x": "/a", "y": "/a/one"}) == 0

    def test_pathless_args_route_to_default_shard(self):
        router = self._router(4)
        assert router.resolve("p", {"count": 3, "name": "no-paths"}) == 0
        assert router.resolve("p", None) == 0

    @given(st.lists(deep_path, min_size=1, max_size=6, unique=True), num_shards)
    @settings(max_examples=50)
    def test_resolve_matches_member_ownership(self, paths, n):
        router = ShardRouter(ShardMap(n, {}), policy="pin")
        shard = router.resolve("p", {str(i): p for i, p in enumerate(paths)})
        owners = {router.shard_of(p) for p in paths}
        expected = min(owners)  # single owner, or the deterministic pin
        assert shard == expected


class TestPathExtraction:
    def test_nested_structures_are_scanned(self):
        args = {
            "vm_host": "/vmRoot/vmHost3",
            "vms": [{"storage_host": "/storageRoot/storageHost1"}],
            "nested": {"deep": ["/netRoot/router0"]},
            "not_paths": ["name", 42, None, True],
        }
        assert sorted(extract_paths(args)) == [
            "/netRoot/router0", "/storageRoot/storageHost1", "/vmRoot/vmHost3",
        ]

    def test_non_path_strings_are_ignored(self):
        assert list(extract_paths({"x": "vm-1", "y": "/bad path!", "z": ""})) == []

    @given(any_path)
    def test_extracted_paths_parse(self, path):
        for found in extract_paths({"p": path}):
            ResourcePath.parse(found)

    def test_global_path_detection(self):
        assert is_global_path("/")
        assert is_global_path("/vmRoot")
        assert not is_global_path("/vmRoot/vmHost0")
        assert not is_global_path("/vmRoot/vmHost0/vm1")
