"""Property-based tests for the transactional guarantees themselves:
atomicity of simulation and physical rollback, lock isolation, trace
scaling and gateway namespacing."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constraints import ConstraintEngine
from repro.core.locks import LockManager
from repro.core.physical import PhysicalExecutor
from repro.core.simulation import LogicalExecutor
from repro.core.txn import ReadWriteSet, Transaction
from repro.datamodel.path import ResourcePath
from repro.gateway.tenants import Tenant
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures
from repro.workloads.trace import Trace, TraceEvent

SCHEMA = build_schema()
PROCEDURES = build_procedures()

spawn_request = st.fixed_dictionaries(
    {
        "vm_name": st.text("abcdefgh", min_size=1, max_size=6),
        "mem_mb": st.sampled_from([256, 512, 1024, 2048, 4096, 8192]),
        "host_index": st.integers(0, 2),
    }
)


def _make_executor():
    inventory = build_inventory(num_vm_hosts=3, num_storage_hosts=1,
                                host_mem_mb=2048, with_devices=False)
    executor = LogicalExecutor(inventory.model, SCHEMA, PROCEDURES,
                               ConstraintEngine(SCHEMA))
    return inventory, executor


def _spawn_txn(request) -> Transaction:
    return Transaction(
        procedure="spawnVM",
        args={
            "vm_name": request["vm_name"],
            "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": f"/vmRoot/vmHost{request['host_index']}",
            "mem_mb": request["mem_mb"],
        },
    )


class TestLogicalAtomicity:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(spawn_request, min_size=1, max_size=6))
    def test_aborted_simulations_leave_no_trace(self, requests):
        """Whatever mix of fitting and oversized spawns is simulated, an
        aborted transaction never changes the logical model, and a
        successful one is exactly undone by its rollback."""
        inventory, executor = _make_executor()
        for request in requests:
            before = inventory.model.to_dict()
            txn = _spawn_txn(request)
            outcome = executor.simulate(txn)
            if not outcome.ok:
                assert inventory.model.to_dict() == before
            else:
                executor.rollback(txn)
                assert inventory.model.to_dict() == before

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(spawn_request, min_size=1, max_size=6, unique_by=lambda r: r["vm_name"]))
    def test_memory_constraint_never_violated(self, requests):
        """No sequence of committed simulations can overcommit a host."""
        inventory, executor = _make_executor()
        for request in requests:
            executor.simulate(_spawn_txn(request))
        for host_path in inventory.vm_hosts:
            host = inventory.model.get(host_path)
            used = sum(vm.get("mem_mb", 0) for vm in host.children.values()
                       if vm.entity_type == "vm" and vm.get("state") == "running")
            assert used <= host.get("mem_mb")


class TestPhysicalAtomicity:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 4), st.text("abcdef", min_size=1, max_size=6))
    def test_failed_action_rolls_back_all_device_state(self, fail_at, vm_name):
        """Injecting a failure at any of the five spawn actions leaves every
        device exactly as it was before the transaction."""
        inventory = build_inventory(num_vm_hosts=2, num_storage_hosts=1,
                                    host_mem_mb=4096, with_devices=True)
        executor = LogicalExecutor(inventory.model, SCHEMA, PROCEDURES,
                                   ConstraintEngine(SCHEMA))
        txn = _spawn_txn({"vm_name": vm_name, "mem_mb": 512, "host_index": 0})
        assert executor.simulate(txn).ok

        before = inventory.registry.build_physical_model().to_dict()
        action = txn.log[fail_at].action
        device_path = txn.log[fail_at].path
        inventory.registry.device_at(device_path).faults.fail_next(action)

        outcome = PhysicalExecutor(inventory.registry).execute(txn)
        assert outcome.outcome == "aborted"
        assert inventory.registry.build_physical_model().to_dict() == before

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.text("abcdef", min_size=1, max_size=6))
    def test_successful_execution_matches_logical_state(self, vm_name):
        inventory = build_inventory(num_vm_hosts=2, num_storage_hosts=1,
                                    host_mem_mb=4096, with_devices=True)
        executor = LogicalExecutor(inventory.model, SCHEMA, PROCEDURES,
                                   ConstraintEngine(SCHEMA))
        txn = _spawn_txn({"vm_name": vm_name, "mem_mb": 512, "host_index": 1})
        assert executor.simulate(txn).ok
        assert PhysicalExecutor(inventory.registry).execute(txn).committed
        from repro.datamodel.snapshot import diff_models

        assert diff_models(inventory.model,
                           inventory.registry.build_physical_model()).is_empty


class TestLockIsolation:
    write_paths = st.sets(
        st.sampled_from(["/a", "/a/b", "/a/b/c", "/a/d", "/e", "/e/f"]),
        min_size=1, max_size=3,
    )

    @settings(max_examples=60, deadline=None)
    @given(write_paths, write_paths)
    def test_granted_writers_never_overlap_hierarchically(self, writes_a, writes_b):
        """If two transactions both hold their write locks, no written path
        of one is equal to, an ancestor of, or a descendant of a written
        path of the other (the multi-granularity guarantee of §3.1.3)."""
        manager = LockManager()
        assert manager.try_acquire("t1", ReadWriteSet(writes=writes_a)) is None
        granted = manager.try_acquire("t2", ReadWriteSet(writes=writes_b)) is None
        overlapping = any(
            ResourcePath.parse(a) == ResourcePath.parse(b)
            or ResourcePath.parse(a).is_ancestor_of(ResourcePath.parse(b))
            or ResourcePath.parse(b).is_ancestor_of(ResourcePath.parse(a))
            for a in writes_a
            for b in writes_b
        )
        if granted:
            assert not overlapping
        else:
            assert overlapping

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["t1", "t2", "t3"]), write_paths),
                    min_size=1, max_size=8))
    def test_release_always_restores_a_clean_manager(self, operations):
        manager = LockManager()
        for txid, writes in operations:
            manager.try_acquire(txid, ReadWriteSet(writes=writes))
        for txid in ("t1", "t2", "t3"):
            manager.release_all(txid)
        assert manager.total_locked_paths() == 0
        assert manager.active_transactions() == set()


class TestTraceScaling:
    events = st.lists(
        st.tuples(st.floats(min_value=0, max_value=59, allow_nan=False),
                  st.text("abcde", min_size=1, max_size=4)),
        min_size=1, max_size=30,
    )

    @settings(max_examples=40, deadline=None)
    @given(events, st.integers(1, 5))
    def test_scaling_multiplies_every_bucket_exactly(self, raw, multiplier):
        trace = Trace([TraceEvent(t, "spawn", {"vm_name": f"vm-{i}-{name}"})
                       for i, (t, name) in enumerate(raw)], duration_s=60)
        scaled = trace.scaled(multiplier)
        assert len(scaled) == multiplier * len(trace)
        original = trace.per_second_counts()
        assert scaled.per_second_counts() == [multiplier * c for c in original]
        names = [e.args["vm_name"] for e in scaled]
        assert len(set(names)) == len(names)

    @settings(max_examples=40, deadline=None)
    @given(events, st.floats(min_value=1, max_value=30, allow_nan=False),
           st.floats(min_value=31, max_value=59, allow_nan=False))
    def test_slice_preserves_events_and_rebases(self, raw, start, end):
        trace = Trace([TraceEvent(t, name) for t, name in raw], duration_s=60)
        window = trace.slice(start, end)
        assert len(window) == sum(1 for t, _ in raw if start <= t < end)
        assert all(0 <= e.time < end - start for e in window)


class TestGatewayNamespacing:
    names = st.text("abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=16)

    @settings(max_examples=60, deadline=None)
    @given(st.text("abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8), names)
    def test_qualify_unqualify_roundtrip(self, tenant_name, resource):
        tenant = Tenant(name=tenant_name, api_key="k")
        qualified = tenant.qualify(resource)
        assert tenant.owns(qualified)
        assert tenant.unqualify(qualified) == resource
        # Qualification is idempotent.
        assert tenant.qualify(qualified) == qualified

    @settings(max_examples=60, deadline=None)
    @given(st.text("abcdefgh", min_size=1, max_size=8),
           st.text("abcdefgh", min_size=1, max_size=8), names)
    def test_tenants_never_own_each_others_resources(self, first, second, resource):
        if first == second or first.startswith(second) or second.startswith(first):
            return
        a, b = Tenant(name=first, api_key="x"), Tenant(name=second, api_key="y")
        assert not b.owns(a.qualify(resource))
