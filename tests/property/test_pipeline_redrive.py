"""Property test: the pipelined write path keeps tokens exactly-once.

The pipelined group commit (PR 10) defers flushes and inputQ acks across
a bounded window of sealed steps, which widens the ambiguous crash
surface: ``pipeline-window-crash`` loses *several* steps' buffered writes
at once, and ``pipeline-post-flush-pre-ack`` leaves durable effects with
unacked messages.  Hypothesis interleaves crashes at exactly those edges
with client-side re-drives of the same idempotency tokens and asserts
the same contract as :mod:`tests.property.test_idempotency` proves for
the serial path: one token → one transaction → one terminal state, and a
committed spawn appears in the applied log at most once.

The cluster here runs at ``pipeline_depth=3`` so the window genuinely
holds multiple sealed steps when the crash lands; at depth 1 the
window-crash edge is unreachable (see
``tests/integration/test_failure_points.py``).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import TropicConfig
from repro.core.events import request_message
from repro.core.txn import Transaction, TransactionState
from repro.testing import (
    PIPELINE_FAILURE_POINTS,
    CrashPoint,
    FaultInjector,
    ShardedCluster,
)

_NUM_OPS = 4

#: Crash plans are drawn from the pipeline edges only — the serial edges
#: are covered by test_idempotency — and bias toward the window crash,
#: the one edge the serial path cannot produce.
_crash = st.tuples(
    st.sampled_from(PIPELINE_FAILURE_POINTS + ("pipeline-window-crash",)),
    st.integers(0, 2),
)


def _submit_tokened(cluster: ShardedCluster, token: str, index: int) -> str:
    """Client-side tokened submit; a token-index hit re-drives the
    original transaction instead of minting a new one."""
    args = {
        "vm_name": f"vm{index}",
        "image_template": "template-small",
        "storage_host": cluster.inventory.storage_host_for(0),
        "vm_host": cluster.inventory.vm_hosts[0],
        "mem_mb": 256,
    }
    shard = cluster.router.plan("spawnVM", args).shard
    store = cluster.stores[shard]
    entry = store.lookup_token(token)
    if entry is not None:
        doc = store.load_transaction(entry["txid"])
        if doc is not None and not doc.is_terminal:
            cluster.input_queues[shard].put(request_message(entry["txid"]))
        return entry["txid"]
    txn = Transaction(procedure="spawnVM", args=args, idempotency_token=token)
    txn.mark(TransactionState.INITIALIZED, 0.0)
    with store.batch():
        store.save_transaction(txn)
        store.record_token(token, txn.txid, txn.state.value)
    cluster.submitted.append(txn)
    cluster.input_queues[shard].put(request_message(txn.txid))
    return txn.txid


def _drive(cluster: ShardedCluster, injector: FaultInjector, plan: list) -> None:
    consumed = 0
    for _ in range(5_000):
        progressed = False
        try:
            if cluster.controllers[0].step():
                progressed = True
        except CrashPoint:
            consumed += 1
            # Failover; re-wire the fault hooks only while plan entries
            # remain (a dead injector would wedge a clean successor).
            rearm = consumed < len(plan)
            cluster.controllers[0] = cluster.new_controller(0, faulty=rearm)
            if rearm:
                point, offset = plan[consumed]
                injector.arm(point, injector.hits(point) + offset)
            progressed = True
        if cluster.workers[0].step():
            progressed = True
        if not progressed and cluster.queues_empty():
            return
    raise AssertionError("cluster did not quiesce under the crash plan")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    st.lists(_crash, min_size=0, max_size=3),
    st.lists(st.integers(0, _NUM_OPS - 1), min_size=0, max_size=6),
)
def test_window_crashes_with_tokened_redrives_apply_exactly_once(plan, retry_indices):
    injector = FaultInjector()
    cluster = ShardedCluster(
        num_shards=1,
        config=TropicConfig(checkpoint_every=2, pipeline_depth=3),
        injector=injector,
        faulty_shards=(0,) if plan else (),
    )
    if plan:
        point, offset = plan[0]
        injector.arm(point, injector.hits(point) + offset)

    tokens = {i: f"tok-{i}" for i in range(_NUM_OPS)}
    txids = {i: {_submit_tokened(cluster, tokens[i], i)} for i in range(_NUM_OPS)}
    # Mid-flight re-drives interleaved with execution: from the client's
    # side a crashed window is indistinguishable from a slow commit, so
    # it retries the token while earlier steps may or may not be durable.
    for index in retry_indices:
        _drive(cluster, injector, plan)
        txids[index].add(_submit_tokened(cluster, tokens[index], index))
    _drive(cluster, injector, plan)
    # Post-drain re-drives must resolve to the same txid.
    for index in range(_NUM_OPS):
        txids[index].add(_submit_tokened(cluster, tokens[index], index))
    _drive(cluster, injector, plan)

    store = cluster.stores[0]
    applied = [txid for _, txid in store.applied_entries(0)]
    for index in range(_NUM_OPS):
        assert len(txids[index]) == 1, (tokens[index], txids[index])
        txid = next(iter(txids[index]))
        entry = store.lookup_token(tokens[index])
        assert entry is not None and entry["txid"] == txid
        doc = store.load_transaction(txid)
        assert doc is not None and doc.is_terminal
        # The applied log never names a txid twice, even when a re-drive
        # raced a window whose flush was lost to the crash.
        assert applied.count(txid) <= 1
        if doc.state is TransactionState.COMMITTED:
            assert cluster.model(0).exists(f"/vmRoot/vmHost0/vm{index}")

    for acked in cluster.acked:
        assert cluster.state_of(acked) is acked.state
    assert cluster.controllers[0].outstanding == {}
    assert cluster.controllers[0].lock_manager.active_transactions() == set()
