"""Property test: tokened submission is exactly-once under any crash plan.

Hypothesis interleaves controller crashes at arbitrary failure points
with client-side re-drives of the same idempotency tokens — including
the ambiguous crash-between-commit-and-ack window and re-drives *after*
the transaction already finished — and asserts the exactly-once
contract: one token maps to exactly one transaction, that transaction
reaches exactly one terminal state, and a committed spawn is applied to
the model exactly once (the applied log names its txid at most once).

This is the client half of the fault-tolerance story (the chaos soak in
``tests/integration/test_chaos.py`` is the systems half): a retry driven
by :mod:`repro.common.retry` after an ambiguous failure must never
double-apply, because the token→txid index — persisted in the same group
commit as the transaction document, and rebuilt from the committed log on
recovery — resolves every re-drive to the original transaction.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import TropicConfig
from repro.core.events import request_message
from repro.core.txn import Transaction, TransactionState
from repro.testing import (
    FAILURE_POINTS,
    CrashPoint,
    FaultInjector,
    ShardedCluster,
)

_NUM_OPS = 4

#: A crash plan entry: (failure point, extra-occurrence offset), so plans
#: can crash on the first hit of a point or let a few pass first.
_crash = st.tuples(st.sampled_from(FAILURE_POINTS), st.integers(0, 2))


def _submit_tokened(cluster: ShardedCluster, token: str, index: int) -> str:
    """Client-side tokened submit (what ``Platform.submit`` does): check
    the token index first; a hit re-drives the original transaction."""
    args = {
        "vm_name": f"vm{index}",
        "image_template": "template-small",
        "storage_host": cluster.inventory.storage_host_for(0),
        "vm_host": cluster.inventory.vm_hosts[0],
        "mem_mb": 256,
    }
    shard = cluster.router.plan("spawnVM", args).shard
    store = cluster.stores[shard]
    entry = store.lookup_token(token)
    if entry is not None:
        doc = store.load_transaction(entry["txid"])
        if doc is not None and not doc.is_terminal:
            cluster.input_queues[shard].put(request_message(entry["txid"]))
        return entry["txid"]
    txn = Transaction(procedure="spawnVM", args=args, idempotency_token=token)
    txn.mark(TransactionState.INITIALIZED, 0.0)
    with store.batch():
        store.save_transaction(txn)
        store.record_token(token, txn.txid, txn.state.value)
    cluster.submitted.append(txn)
    cluster.input_queues[shard].put(request_message(txn.txid))
    return txn.txid


def _drive(cluster: ShardedCluster, injector: FaultInjector, plan: list) -> None:
    consumed = 0
    for _ in range(5_000):
        progressed = False
        try:
            if cluster.controllers[0].step():
                progressed = True
        except CrashPoint:
            consumed += 1
            # A fresh replica takes over.  It is re-wired with the fault
            # hooks only when another plan entry remains (arming revives
            # the dead injector); otherwise the successor must be clean —
            # a dead injector swallows queue acks, modelling the dead
            # process, and would wedge a faulty-but-never-armed leader.
            rearm = consumed < len(plan)
            cluster.controllers[0] = cluster.new_controller(0, faulty=rearm)
            if rearm:
                point, offset = plan[consumed]
                injector.arm(point, injector.hits(point) + offset)
            progressed = True
        if cluster.workers[0].step():
            progressed = True
        if not progressed and cluster.queues_empty():
            return
    raise AssertionError("cluster did not quiesce under the crash plan")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    st.lists(_crash, min_size=0, max_size=3),
    st.lists(st.integers(0, _NUM_OPS - 1), min_size=0, max_size=6),
)
def test_tokened_retries_apply_exactly_once(plan, retry_indices):
    injector = FaultInjector()
    cluster = ShardedCluster(
        num_shards=1,
        config=TropicConfig(checkpoint_every=2),
        injector=injector,
        faulty_shards=(0,) if plan else (),
    )
    if plan:
        point, offset = plan[0]
        injector.arm(point, injector.hits(point) + offset)

    tokens = {i: f"tok-{i}" for i in range(_NUM_OPS)}
    txids = {i: {_submit_tokened(cluster, tokens[i], i)} for i in range(_NUM_OPS)}
    # Interleave mid-flight re-drives (the client's view: an ambiguous
    # failure happened, retry with the same token) with execution.
    for index in retry_indices:
        _drive(cluster, injector, plan)
        txids[index].add(_submit_tokened(cluster, tokens[index], index))
    _drive(cluster, injector, plan)
    # Post-drain re-drives: every token retried once more after its
    # transaction finished must resolve to the same txid, not a new one.
    for index in range(_NUM_OPS):
        txids[index].add(_submit_tokened(cluster, tokens[index], index))
    _drive(cluster, injector, plan)

    store = cluster.stores[0]
    applied = [txid for _, txid in store.applied_entries(0)]
    for index in range(_NUM_OPS):
        # Exactly one transaction per token, however many times it was
        # submitted, crashed over, and re-driven.
        assert len(txids[index]) == 1, (tokens[index], txids[index])
        txid = next(iter(txids[index]))
        entry = store.lookup_token(tokens[index])
        assert entry is not None and entry["txid"] == txid
        doc = store.load_transaction(txid)
        assert doc is not None and doc.is_terminal
        # Applied exactly once: the applied log never names a txid twice.
        assert applied.count(txid) <= 1
        if doc.state is TransactionState.COMMITTED:
            assert cluster.model(0).exists(f"/vmRoot/vmHost0/vm{index}")

    # Every acked outcome is stable and nothing is left in flight.
    for acked in cluster.acked:
        assert cluster.state_of(acked) is acked.state
    assert cluster.controllers[0].outstanding == {}
    assert cluster.controllers[0].lock_manager.active_transactions() == set()
