"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.locks import LockManager, LockMode, compatible
from repro.core.txn import ExecutionLog, ReadWriteSet, Transaction, TransactionState
from repro.datamodel.path import ResourcePath
from repro.datamodel.tree import DataModel
from repro.metrics.stats import cdf_points, percentile
from repro.workloads.ec2 import EC2TraceParams, synthesize_launch_counts

# -- strategies --------------------------------------------------------------

path_component = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)
path_strategy = st.lists(path_component, min_size=0, max_size=5).map(ResourcePath)
nonempty_path = st.lists(path_component, min_size=1, max_size=5).map(ResourcePath)
attrs_strategy = st.dictionaries(
    path_component,
    st.one_of(st.integers(-1000, 1000), st.booleans(), path_component),
    max_size=4,
)


class TestPathProperties:
    @given(path_strategy)
    def test_parse_str_roundtrip(self, path):
        assert ResourcePath.parse(str(path)) == path

    @given(nonempty_path)
    def test_parent_is_strict_ancestor(self, path):
        assert path.parent.is_ancestor_of(path)
        assert path.parent.depth == path.depth - 1

    @given(path_strategy, path_component)
    def test_child_relationship(self, path, name):
        child = path.child(name)
        assert child.parent == path
        assert path.is_ancestor_of(child)
        assert child.relative_to(path) == (name,)

    @given(path_strategy)
    def test_ancestors_are_prefixes(self, path):
        ancestors = list(path.ancestors(include_self=True))
        assert ancestors[-1] == path
        for shorter, longer in zip(ancestors, ancestors[1:]):
            assert shorter.is_ancestor_of(longer)


class TestDataModelProperties:
    @given(st.lists(st.tuples(path_component, attrs_strategy), min_size=1, max_size=10))
    def test_serialisation_roundtrip(self, hosts):
        model = DataModel()
        model.create("/root1", "container")
        for index, (name, attrs) in enumerate(hosts):
            model.ensure(f"/root1/{name}-{index}", "vmHost", attrs)
        restored = DataModel.from_dict(model.to_dict())
        assert restored.to_dict() == model.to_dict()
        assert restored.count() == model.count()

    @given(st.lists(path_component, min_size=1, max_size=10, unique=True))
    def test_create_then_delete_restores_count(self, names):
        model = DataModel()
        base = model.count()
        for name in names:
            model.create(f"/{name}", "vmHost")
        for name in names:
            model.delete(f"/{name}")
        assert model.count() == base


class TestLockProperties:
    @given(st.sampled_from(list(LockMode)), st.sampled_from(list(LockMode)))
    def test_compatibility_is_symmetric(self, a, b):
        assert compatible(a, b) == compatible(b, a)

    @given(st.sets(st.text("abc/", min_size=1, max_size=12), min_size=1, max_size=6))
    def test_acquire_then_release_leaves_no_state(self, raw_paths):
        paths = ["/" + p.strip("/").replace("//", "/") for p in raw_paths if p.strip("/")]
        if not paths:
            return
        rwset = ReadWriteSet(writes=set(paths))
        manager = LockManager()
        assert manager.try_acquire("t1", rwset) is None
        manager.release_all("t1")
        assert manager.total_locked_paths() == 0
        assert manager.active_transactions() == set()

    @given(
        st.lists(st.sampled_from(["/a/x", "/a/y", "/b/x", "/b/y"]), min_size=1, max_size=4),
        st.lists(st.sampled_from(["/a/x", "/a/y", "/b/x", "/b/y"]), min_size=1, max_size=4),
    )
    def test_disjoint_write_sets_never_conflict(self, writes_a, writes_b):
        writes_b = [p for p in writes_b if p not in writes_a]
        manager = LockManager()
        assert manager.try_acquire("t1", ReadWriteSet(writes=set(writes_a))) is None
        conflict = manager.try_acquire("t2", ReadWriteSet(writes=set(writes_b)))
        assert conflict is None  # siblings only take intention locks on shared ancestors

    @given(st.sampled_from(["/a", "/a/b", "/a/b/c"]))
    def test_overlapping_writes_always_conflict(self, path):
        manager = LockManager()
        assert manager.try_acquire("t1", ReadWriteSet(writes={"/a/b"})) is None
        assert manager.try_acquire("t2", ReadWriteSet(writes={path})) is not None


class TestTransactionProperties:
    @given(
        st.text("abcdefg", min_size=1, max_size=10),
        st.dictionaries(path_component, st.integers(-5, 5), max_size=3),
        st.sampled_from(list(TransactionState)),
    )
    def test_serialisation_roundtrip(self, procedure, args, state):
        txn = Transaction(procedure, args)
        txn.mark(state, 1.0)
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.procedure == procedure
        assert restored.args == args
        assert restored.state == state

    @given(st.lists(st.tuples(path_component, path_component), min_size=1, max_size=8))
    def test_execution_log_sequence_numbers_are_dense(self, steps):
        log = ExecutionLog()
        for path, action in steps:
            log.append("/" + path, action, [], None, [])
        assert [record.seq for record in log] == list(range(1, len(steps) + 1))
        restored = ExecutionLog.from_dict(log.to_dict())
        assert [r.action for r in restored] == [r.action for r in log]


class TestStatsProperties:
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=100))
    def test_percentile_bounded_by_min_max(self, values):
        for q in (0, 25, 50, 75, 100):
            result = percentile(values, q)
            assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=100))
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        points = cdf_points(values)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        xs = [value for value, _ in points]
        assert xs == sorted(xs)


class TestWorkloadProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(60, 600), st.integers(1, 8), st.integers(0, 10_000))
    def test_ec2_calibration_always_met(self, duration, mean_rate, seed):
        total = duration * mean_rate
        params = EC2TraceParams(duration_s=duration, total_spawns=total,
                                peak_rate=14, seed=seed)
        counts = synthesize_launch_counts(params)
        assert len(counts) == duration
        assert sum(counts) == total
        assert max(counts) <= 14
        assert min(counts) >= 0
