"""Seeded chaos soak (PR 6): end-to-end fault tolerance.

Each scenario composes, from one deterministic seed, controller crashes
at named failure points, coordination-ensemble faults (session expiry,
connection loss, latency spikes, partitions), leader kills and a client
that retries with idempotency tokens — over a concurrent single-shard +
cross-shard (2PC) spawn workload on a two-shard cluster.  The scenario
then asserts the invariants that define "no lost or duplicated work":

* **exactly-once per token** — every idempotency token maps to exactly
  one transaction, terminal, applied at most once;
* **zero acked loss** — every committed acknowledgement corresponds to a
  VM running on the devices and present in the logical model;
* **no duplicate application** — no committed ack is delivered twice;
* **recovery equality** — a fresh controller recovering from the store
  rebuilds the incumbent leader's exact model;
* **layer agreement** — the reconciler finds logical == physical;
* **no leaked locks**.

The soak runs ``CHAOS_SOAK_SEEDS`` fixed seeds (CI gates on this), and
the aggregate assertions prove the soak actually exercised the fault
space — crashes fired, ensemble faults fired, duplicates and retries
happened — so a regression that silently disables injection fails here
rather than producing a vacuous green run.
"""

from __future__ import annotations

import pytest

from repro.testing import ChaosScenario, run_chaos

#: Fixed seed set: CI and `make chaos` run exactly these (>= 20 per the
#: acceptance criteria).  Append seeds rather than replacing them — a
#: seed that once found a bug is a regression test forever.
CHAOS_SOAK_SEEDS = tuple(range(24))


@pytest.fixture(scope="module")
def soak_reports():
    """Run the whole soak once; individual tests assert per-seed slices."""
    return {seed: run_chaos(seed) for seed in CHAOS_SOAK_SEEDS}


@pytest.mark.parametrize("seed", CHAOS_SOAK_SEEDS)
def test_scenario_invariants_hold(soak_reports, seed):
    report = soak_reports[seed]
    assert report.ok, "invariant violations:\n" + "\n".join(report.failures)
    # Every submitted operation reached a terminal outcome (nothing lost,
    # nothing stuck non-terminal behind a crashed leader or dead session).
    assert report.committed + report.aborted == report.submits


def test_soak_exercised_controller_crashes(soak_reports):
    crashes = [c for r in soak_reports.values() for c in r.crashes]
    assert len(crashes) >= 10, crashes
    # Both single-shard failure points and 2PC protocol points fired.
    assert any("2pc" in c for c in crashes), crashes
    assert any("2pc" not in c for c in crashes), crashes


def test_soak_exercised_concurrent_cross_shard_bursts(soak_reports):
    """PR 9: the workload includes back-to-back bursts of overlapping
    cross-shard submissions, so the soak drives wound-wait's concurrent
    prepare admission (not just isolated 2PC transactions)."""
    assert sum(r.cross_bursts for r in soak_reports.values()) >= 5


def test_soak_exercised_ensemble_faults(soak_reports):
    faults = [f for r in soak_reports.values() for f in r.ensemble_faults]
    kinds = {f.split("@")[0] for f in faults}
    assert len(faults) >= 15, faults
    # All four injectable fault kinds occurred somewhere in the soak.
    assert {"expire-session", "connection-loss", "latency-spike", "partition"} <= kinds


def test_soak_exercised_client_side_retries(soak_reports):
    reports = soak_reports.values()
    assert sum(r.duplicate_submits for r in reports) >= 10
    assert sum(r.client_retries for r in reports) >= 10
    assert sum(r.leader_kills for r in reports) >= 1


def test_scenario_is_deterministic():
    """Same seed, same scenario: the plan and the outcome both replay."""
    first = ChaosScenario(7)
    second = ChaosScenario(7)
    assert first.ops == second.ops
    assert first.crash_plan == second.crash_plan
    assert first.fault_plan == second.fault_plan
    one, two = first.run(), second.run()
    assert one.ok and two.ok
    assert one.committed == two.committed
    assert one.crashes == two.crashes
    assert one.ensemble_faults == two.ensemble_faults


def test_distinct_seeds_produce_distinct_plans():
    plans = {
        (tuple(s.crash_plan), tuple(s.fault_plan), tuple(s.ops))
        for s in (ChaosScenario(seed) for seed in CHAOS_SOAK_SEEDS)
    }
    assert len(plans) > 1
