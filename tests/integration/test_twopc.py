"""Cross-shard two-phase commit (PR 3 tentpole).

A transaction spanning two controller shards must be atomic, isolated and
recoverable at cross-shard scope: the coordinator simulates and locks, the
participants validate and durably prepare their log slices, and the commit
decision is logged in the global coordination namespace before any fan-out.

The fault matrix here crashes the coordinator *and* the participant at
every 2PC protocol edge (pre/post-prepare, pre/post-decision) plus every
generic controller failure point, fails the shard over, and asserts:

* the cross-shard transaction is atomic — effects exist on *both* owner
  shards or on neither, matching its terminal state;
* no acknowledged transaction is lost or double-applied;
* single-shard traffic is never disturbed;
* no locks leak and no lingering wound state survives quiescence.
"""

import pytest

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.testing import (
    ALL_FAILURE_POINTS,
    PRE_DISPATCH,
    FaultInjector,
    ShardedCluster,
)

_CONFIG = TropicConfig(checkpoint_every=1)


def _cluster(injector=None, faulty_shards=()):
    return ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=_CONFIG,
        with_devices=True,
        injector=injector,
        faulty_shards=faulty_shards,
    )


def _cross_effects(cluster, txn):
    """(vm_present, image_present) as seen by the respective owner shards."""
    vm_host = txn.args["vm_host"]
    storage_host = txn.args["storage_host"]
    vm_owner = cluster.router.shard_of(vm_host)
    storage_owner = cluster.router.shard_of(storage_host)
    vm_name = txn.args["vm_name"]
    return (
        cluster.model(vm_owner).exists(f"{vm_host}/{vm_name}"),
        cluster.model(storage_owner).exists(f"{storage_host}/{vm_name}-disk"),
    )


def assert_cross_shard_atomic(cluster, txn):
    """Committed => effects on both owner shards; otherwise on neither."""
    state = cluster.state_of(txn)
    vm_there, image_there = _cross_effects(cluster, txn)
    assert vm_there == image_there, (
        f"{txn.txid} half-applied: vm={vm_there} image={image_there}"
    )
    if state is TransactionState.COMMITTED:
        assert vm_there and image_there
    else:
        assert state in (TransactionState.ABORTED, TransactionState.FAILED)
        assert not vm_there and not image_there


def assert_clean(cluster):
    for shard in cluster.shard_ids:
        assert cluster.controllers[shard].lock_manager.active_transactions() == set()
        assert cluster.controllers[shard].outstanding == {}


class TestTwoPhaseCommitHappyPath:
    def test_cross_shard_transaction_commits_atomically(self):
        cluster = _cluster()
        txn = cluster.submit_cross_spawn("crossy")
        assert txn.is_cross_shard and txn.coordinator == min(txn.participants)
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        assert_cross_shard_atomic(cluster, txn)
        # Both shards hold a committed document under the same txid: the
        # coordinator's full record and the participant's prepare slice.
        for shard in txn.participants:
            doc = cluster.stores[shard].load_transaction(txn.txid)
            assert doc is not None and doc.state is TransactionState.COMMITTED
        assert cluster.twopc.decision(txn.txid) == "commit"
        assert_clean(cluster)

    def test_owner_shard_sees_the_foreign_write(self):
        """The pin visibility hazard is gone under 2pc: the storage host's
        *owner* observes the image a foreign-coordinated spawn created."""
        cluster = _cluster()
        txn = cluster.submit_cross_spawn("visible")
        cluster.drain()
        storage_host = txn.args["storage_host"]
        owner = cluster.router.shard_of(storage_host)
        assert owner != txn.coordinator
        assert cluster.model(owner).exists(f"{storage_host}/visible-disk")

    def test_constraint_violation_on_participant_aborts_both_shards(self):
        """The participant validates against its authoritative model: an
        oversized spawn aborts with zero effects anywhere."""
        cluster = ShardedCluster(
            num_shards=2, cross_shard_policy="2pc", host_mem_mb=1024
        )
        txn = cluster.submit_cross_spawn("whale", mem_mb=4096)
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.ABORTED
        assert_cross_shard_atomic(cluster, txn)
        assert_clean(cluster)

    def test_mixed_workload_drains_clean(self):
        cluster = _cluster()
        local = [cluster.submit_spawn(f"l{i}", host_index=i % 4) for i in range(4)]
        cross = [cluster.submit_cross_spawn(f"x{i}", vm_host_index=i % 4)
                 for i in range(3)]
        cluster.drain()
        for txn in local:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
        for txn in cross:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            assert_cross_shard_atomic(cluster, txn)
        assert_clean(cluster)

    def test_single_shard_collapse_uses_fast_path(self):
        """A nominally cross-shard submission whose simulation touches one
        shard only downgrades to the ordinary dispatch (pin fast path)."""
        cluster = _cluster()
        # Same-shard vm+storage, but force the 2PC stamping as if routing
        # had seen foreign paths.
        txn = cluster.submit_spawn("collapsed", host_index=0)
        txn2 = cluster.stores[cluster.shard_of(txn)].load_transaction(txn.txid)
        assert not txn2.is_cross_shard  # routing already collapsed it
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED


class TestTwoPhaseCommitFaultMatrix:
    """Crash the coordinator shard (0) or the participant shard (1) at
    every named failure point and assert atomic, clean recovery."""

    @pytest.mark.parametrize("faulty_shard", [0, 1])
    @pytest.mark.parametrize("point", ALL_FAILURE_POINTS)
    def test_crash_recovers_atomically(self, point, faulty_shard):
        injector = FaultInjector().arm(point, 0)
        cluster = _cluster(injector=injector, faulty_shards=(faulty_shard,))
        local = [cluster.submit_spawn(f"l{i}", host_index=i % 4) for i in range(2)]
        cross = cluster.submit_cross_spawn("crossy")
        cluster.drain(failover=True)

        # Single-shard traffic commits regardless of the crash.
        for txn in local:
            assert cluster.state_of(txn) is TransactionState.COMMITTED

        # The cross-shard transaction is atomic in every outcome.
        assert_cross_shard_atomic(cluster, cross)

        # Acknowledged outcomes are never lost: whatever the client was
        # told still matches the stores after failover.
        for acked in cluster.acked:
            final = cluster.state_of(acked)
            assert final is acked.state, (
                f"{acked.txid} acknowledged {acked.state} but recovered {final}"
            )

        # Devices agree with the logical layer on every owned subtree.
        for shard in cluster.shard_ids:
            assert cluster.detect_is_clean(shard)
        assert_clean(cluster)

    @pytest.mark.parametrize("point,faulty_shard", [
        ("2pc-pre-prepare", 0),
        ("2pc-pre-decision", 0),
        ("2pc-post-decision", 0),
        ("2pc-post-prepare", 1),
    ])
    def test_twopc_points_actually_fire(self, point, faulty_shard):
        """Each protocol edge is reachable in its role (coordinator edges
        on the coordinator shard, the post-prepare edge on a participant)."""
        injector = FaultInjector().arm(point, 0)
        cluster = _cluster(injector=injector, faulty_shards=(faulty_shard,))
        cluster.submit_cross_spawn("crossy")
        cluster.drain(failover=True)
        assert [crash.point for crash in injector.fired] == [point]

    def test_presumed_abort_on_coordinator_prepare_crash(self):
        """A coordinator that dies before the prepare fan-out presumed-
        aborts on failover: the abort decision is logged, participants
        never stay prepared, and the client sees a clean abort."""
        injector = FaultInjector().arm("2pc-pre-prepare", 0)
        cluster = _cluster(injector=injector, faulty_shards=(0,))
        cross = cluster.submit_cross_spawn("doomed")
        cluster.drain(failover=True)
        assert cluster.state_of(cross) is TransactionState.ABORTED
        assert cluster.twopc.decision(cross.txid) == "abort"
        assert_cross_shard_atomic(cluster, cross)
        assert_clean(cluster)


class TestDispatchLossWindow:
    """The bugfix satellite: a leader crash between the group-commit flush
    and the phyQ ``put_many`` used to strand STARTED transactions."""

    def test_lost_dispatch_is_redispatched_exactly_once(self):
        injector = FaultInjector().arm(PRE_DISPATCH, 0)
        cluster = ShardedCluster(num_shards=1, injector=injector,
                                 faulty_shards=(0,))
        txn = cluster.submit_spawn("lost")
        cluster.drain(failover=True)
        assert [crash.point for crash in injector.fired] == [PRE_DISPATCH]
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        successor = cluster.controllers[0]
        assert successor.stats["redispatched"] == 1
        # Executed exactly once: the device has one running VM.
        device = cluster.inventory.registry.device_at(txn.args["vm_host"])
        assert device.vm_state("lost") == "running"
        assert cluster.stores[0].last_dispatch_stamp()["epoch"] >= 1
        # Claim records are GC'd wholesale at the next quiesce-point
        # checkpoint (nothing is in flight here, so it may run).
        assert cluster.stores[0].load_claim(txn.txid) is not None
        assert successor.checkpoint()
        assert cluster.stores[0].load_claim(txn.txid) is None
        assert cluster.reconciler().detect().is_empty

    def test_claimed_transaction_is_not_redispatched(self):
        """If a worker already claimed (and possibly executed) the item,
        recovery must NOT re-dispatch — the result will arrive."""
        cluster = ShardedCluster(num_shards=1)
        txn = cluster.submit_spawn("claimed")
        controller = cluster.controllers[0]
        while controller.step():
            pass
        assert cluster.state_of(txn) is TransactionState.STARTED
        assert cluster.workers[0].step()  # claims, executes, sends result
        assert cluster.stores[0].load_claim(txn.txid) is not None
        successor = cluster.replace_controller(0)
        cluster.drain()
        assert successor.stats["redispatched"] == 0
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        device = cluster.inventory.registry.device_at(txn.args["vm_host"])
        assert device.vm_state("claimed") == "running"

    def test_duplicate_dispatch_executes_once(self):
        """A duplicate execute message (e.g. conservative re-dispatch) is
        made inert by the claim create-if-absent."""
        from repro.core.events import execute_message

        cluster = ShardedCluster(num_shards=1)
        txn = cluster.submit_spawn("dup")
        controller = cluster.controllers[0]
        while controller.step():
            pass
        # Inject a duplicate execute message by hand.
        cluster.phy_queues[0].put(execute_message(txn.txid, epoch=99))
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        worker = cluster.workers[0]
        assert worker.transactions_processed == 1
        assert worker.duplicate_dispatches_skipped == 1
        device = cluster.inventory.registry.device_at(txn.args["vm_host"])
        assert device.vm_state("dup") == "running"


class TestDecisionRecordGC:
    """Decision-record retention (the former ROADMAP open item): records in
    ``/tropic/2pc/decisions`` are mark-and-swept once every participating
    shard has completed a quiesce-point checkpoint after the decision —
    piggybacked on the checkpoint like the worker-claim GC, so nothing
    rides the per-commit write path."""

    def _checkpoint_all(self, cluster):
        for shard in cluster.shard_ids:
            assert cluster.controllers[shard].checkpoint()

    def test_resolved_decision_is_swept_after_two_checkpoint_rounds(self):
        cluster = _cluster()
        txn = cluster.submit_cross_spawn("gc-me")
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        # Mark (coordinator's checkpoint) + horizon publication round, then
        # a sweep round once every participant's horizon moved past it.
        self._checkpoint_all(cluster)
        self._checkpoint_all(cluster)
        assert cluster.twopc.decision(txn.txid) is None
        horizons = cluster.twopc.horizons()
        assert set(horizons) == set(cluster.shard_ids)

    def test_gcd_decision_is_never_needed_by_recovery(self):
        """After the decision is swept, both shards fail over and recover
        to the same committed state: resolved transactions (terminal
        documents everywhere) never consult the decision log."""
        cluster = _cluster()
        txn = cluster.submit_cross_spawn("gc-recover")
        cluster.drain()
        self._checkpoint_all(cluster)
        self._checkpoint_all(cluster)
        assert cluster.twopc.decision(txn.txid) is None
        before = {s: cluster.model(s).to_dict() for s in cluster.shard_ids}
        for shard in cluster.shard_ids:
            cluster.replace_controller(shard)
        cluster.drain()
        for shard in cluster.shard_ids:
            assert cluster.model(shard).to_dict() == before[shard]
            doc = cluster.stores[shard].load_transaction(txn.txid)
            assert doc is not None and doc.state is TransactionState.COMMITTED
        assert_cross_shard_atomic(cluster, txn)
        assert_clean(cluster)

    def test_unresolved_participant_blocks_the_sweep(self):
        """A participant that has not checkpointed past the mark keeps the
        record alive — the retention invariant that makes the GC safe."""
        # No automatic checkpoints: only the explicit ones below publish
        # horizons, so the participant's silence is actually observable.
        cluster = ShardedCluster(
            num_shards=2,
            cross_shard_policy="2pc",
            config=TropicConfig(checkpoint_every=100_000),
        )
        txn = cluster.submit_cross_spawn("kept")
        cluster.drain()
        participant = next(s for s in txn.participants if s != txn.coordinator)
        coordinator = cluster.controllers[txn.coordinator]
        # Only the coordinator checkpoints: mark happens, sweep must not.
        assert coordinator.checkpoint()
        assert coordinator.checkpoint()
        assert cluster.twopc.decision(txn.txid) == "commit"
        # Once the participant checkpoints twice (past the mark), the
        # coordinator's next checkpoint sweeps.
        assert cluster.controllers[participant].checkpoint()
        assert coordinator.checkpoint()
        assert cluster.twopc.decision(txn.txid) is None


class TestPrepareDeadline:
    """Prepare-phase deadline (the former ROADMAP open item): a coordinator
    stuck in PREPARING past ``config.prepare_timeout`` — e.g. a participant
    shard down with no replica to fail over to — presumed-aborts and frees
    its prepare locks."""

    _DEADLINE_CONFIG = TropicConfig(checkpoint_every=1, prepare_timeout=0.02)

    def _stuck_coordinator(self, injector=None, faulty_shards=()):
        cluster = ShardedCluster(
            num_shards=2,
            cross_shard_policy="2pc",
            config=self._DEADLINE_CONFIG,
            injector=injector,
            faulty_shards=faulty_shards,
        )
        txn = cluster.submit_cross_spawn("stuck")
        coordinator = cluster.controllers[txn.coordinator]
        # Step ONLY the coordinator: the prepare fans out, but the silent
        # participant shard never votes.
        while coordinator.step():
            pass
        doc = cluster.stores[txn.coordinator].load_transaction(txn.txid)
        assert doc.state is TransactionState.PREPARING
        assert txn.txid in coordinator.lock_manager.active_transactions()
        return cluster, txn, coordinator

    def test_stuck_coordinator_presumed_aborts_and_frees_its_locks(self):
        import time

        cluster, txn, coordinator = self._stuck_coordinator()
        time.sleep(0.03)  # past prepare_timeout
        assert coordinator.step()
        assert cluster.state_of(txn) is TransactionState.ABORTED
        assert cluster.twopc.decision(txn.txid) == "abort"
        assert txn.txid not in coordinator.lock_manager.active_transactions()
        assert coordinator.stats["prepare_timeouts"] == 1
        # The participant comes back: its queued (stale) prepare resolves
        # against the abort decision and the fleet converges clean.
        cluster.drain()
        assert_cross_shard_atomic(cluster, txn)
        assert_clean(cluster)

    def test_coordinator_crash_during_timeout_abort_recovers(self):
        """Fault-matrix point for the deadline: the coordinator dies at the
        2pc-post-decision edge of the timeout abort (decision durable, fan-
        out lost); the successor and the returning participant still
        converge on the abort."""
        import time

        injector = FaultInjector().arm("2pc-post-decision", 0)
        cluster, txn, coordinator = self._stuck_coordinator(
            injector=injector, faulty_shards=(0,)
        )
        assert txn.coordinator == 0
        time.sleep(0.03)
        cluster.drain(failover=True)
        assert [crash.point for crash in injector.fired] == ["2pc-post-decision"]
        assert cluster.twopc.decision(txn.txid) == "abort"
        assert cluster.state_of(txn) is TransactionState.ABORTED
        assert_cross_shard_atomic(cluster, txn)
        assert_clean(cluster)


class TestLegacyTicketUpgrade:
    """Upgrade compatibility: builds before wound-wait serialised every
    cross-shard prepare behind a fleet-wide ticket znode.  A store that
    last ran one of those can still hold the ticket; 2PC recovery must
    delete it (it was pure admission control, never consulted for
    correctness) and proceed to normal wound-wait operation."""

    def test_recovery_clears_a_persisted_ticket_znode(self):
        from repro.core.twopc import TwoPCLog

        cluster = _cluster()
        before = cluster.submit_cross_spawn("pre-upgrade")
        cluster.drain()
        assert cluster.state_of(before) is TransactionState.COMMITTED

        # An old build left its fleet-wide prepare ticket behind.
        cluster.twopc.kv.put(TwoPCLog.LEGACY_TICKET_KEY, before.txid)

        # Fail the coordinator shard over: the successor's 2PC recovery
        # (first step) sweeps the stale znode as a clean no-op.
        cluster.controllers[0] = cluster.new_controller(0)
        cluster.controllers[0].step()
        assert cluster.twopc.kv.get(TwoPCLog.LEGACY_TICKET_KEY) is None

        # Wound-wait needs no admission control: cross-shard traffic on
        # the recovered cluster runs and commits without the ticket.
        after = [
            cluster.submit_cross_spawn(f"post-upgrade-{i}", vm_host_index=i)
            for i in range(2)
        ]
        cluster.drain()
        for txn in after:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            assert_cross_shard_atomic(cluster, txn)
        assert cluster.twopc.kv.get(TwoPCLog.LEGACY_TICKET_KEY) is None
        assert_clean(cluster)
