"""Integration test: the hosting workload drives a realistic TCloud mix (§6.2)."""

import pytest

from repro.tcloud.entities import build_schema
from repro.tcloud.service import build_tcloud
from repro.workloads.hosting import HostingTraceParams, hosting_trace
from repro.workloads.loadgen import LoadGenerator


@pytest.fixture
def cloud():
    cloud = build_tcloud(num_vm_hosts=6, num_storage_hosts=3, host_mem_mb=16384)
    cloud.platform.start()
    yield cloud
    cloud.platform.stop()


class TestHostingWorkload:
    def test_replay_sync_commits_most_operations(self, cloud):
        trace = hosting_trace(HostingTraceParams(num_operations=60, seed=11))
        generator = LoadGenerator(cloud, seed=11)
        result = generator.replay_sync(trace)
        assert result.submitted > 0
        assert result.committed > 0.8 * result.submitted
        assert result.failed == 0
        # Latencies were recorded for completed transactions.
        assert len(result.latencies) == result.committed + result.aborted

    def test_constraints_hold_throughout_replay(self, cloud):
        trace = hosting_trace(HostingTraceParams(num_operations=40, seed=3))
        LoadGenerator(cloud, seed=3).replay_sync(trace)
        schema = build_schema()
        assert schema.check_subtree(cloud.platform.leader().model) == []
        # Logical and physical layers agree at the end of the replay.
        assert cloud.platform.reconciler().detect().is_empty

    def test_error_injection_produces_aborts_not_corruption(self, cloud):
        """§6.3 scenario: random failures in the last step of spawn/migrate.

        The paper injects the error into the forward execution of the last
        action only; undo actions are not failed, so every affected
        transaction aborts cleanly and none ends up *failed*.
        """
        for path in cloud.inventory.vm_hosts:
            device = cloud.inventory.registry.device_at(path)
            device.faults.fail_with_probability(
                0.3, "startVM", message="random error", phase="forward"
            )
        trace = hosting_trace(HostingTraceParams(num_operations=40, seed=5))
        result = LoadGenerator(cloud, seed=5).replay_sync(trace)
        assert result.aborted > 0
        assert result.committed > 0
        # Every abort rolled back cleanly: constraints hold and no VM is half-created.
        schema = build_schema()
        assert schema.check_subtree(cloud.platform.leader().model) == []
        stats = cloud.platform.controller_stats()
        assert stats["failed"] == 0

    def test_mixed_operations_reach_terminal_states(self, cloud):
        trace = hosting_trace(HostingTraceParams(num_operations=30, seed=9))
        LoadGenerator(cloud, seed=9).replay_sync(trace)
        counts = cloud.platform.store.count_by_state()
        active = counts["accepted"] + counts["started"] + counts["deferred"]
        assert active == 0
