"""Simulation-time foreign-write detection (PR 5 satellite).

Routing is argument-path based, so a stored procedure whose *simulation*
writes paths on shards absent from its arguments used to land those writes
silently on the executing shard's bootstrap-frozen foreign copies under
``cross_shard_policy="reject"``/``"pin"``.  The controller now detects the
divergence from the simulated read/write set: ``reject`` aborts loudly,
``pin`` warns (its documented visibility hazard), and ``2pc`` upgrades the
transaction into a real cross-shard two-phase commit.
"""

from __future__ import annotations

import pytest

from repro.core.txn import TransactionState
from repro.testing import ShardedCluster

IMAGE = "sneaky-image"


def _register_sneaky(cluster: ShardedCluster) -> None:
    """A procedure that writes a host never named in its arguments (the
    auto-placement pattern): routing sees a single-shard submission."""

    def sneaky_import(ctx, vm_host: str, hidden_target: str):
        ctx.do(vm_host, "importImage", IMAGE)
        ctx.do(f"/vmRoot/{hidden_target}", "importImage", IMAGE)
        return "ok"

    if not cluster.procedures.has("sneakyImport"):
        cluster.procedures.register("sneakyImport", sneaky_import)


def _split_hosts(cluster: ShardedCluster) -> tuple[str, str]:
    """(a shard-0 host, a host owned by another shard)."""
    by_shard: dict[int, list[str]] = {}
    for host in cluster.inventory.vm_hosts:
        by_shard.setdefault(cluster.router.shard_of(host), []).append(host)
    assert len(by_shard) > 1, "fleet must span both shards"
    local = by_shard[0][0]
    foreign = next(hosts[0] for shard, hosts in by_shard.items() if shard != 0)
    return local, foreign


class TestRejectPolicy:
    def test_foreign_sim_write_aborts_instead_of_corrupting(self):
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="reject")
        _register_sneaky(cluster)
        local, foreign = _split_hosts(cluster)
        txn = cluster.submit(
            "sneakyImport",
            {"vm_host": local, "hidden_target": foreign.rsplit("/", 1)[-1]},
        )
        cluster.drain()
        final = cluster.load(txn)
        assert final.state is TransactionState.ABORTED
        assert "cross-shard writes" in (final.error or "")
        executing = cluster.shard_of(local)
        assert cluster.controllers[executing].stats["foreign_write_rejects"] == 1
        # Neither copy of the foreign host saw the write, and the local
        # simulation was rolled back.
        for shard in cluster.shard_ids:
            model = cluster.model(shard)
            assert IMAGE not in model.get(foreign).get("imported_images", [])
            assert IMAGE not in model.get(local).get("imported_images", [])

    def test_single_shard_simulation_is_unaffected(self):
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="reject")
        _register_sneaky(cluster)
        local, _ = _split_hosts(cluster)
        txn = cluster.submit(
            "sneakyImport",
            {"vm_host": local, "hidden_target": local.rsplit("/", 1)[-1]},
        )
        cluster.drain()
        assert cluster.load(txn).state is TransactionState.COMMITTED


class TestPinPolicy:
    def test_foreign_sim_write_warns_and_records_the_hazard(self):
        with pytest.warns(DeprecationWarning):
            cluster = ShardedCluster(num_shards=2, cross_shard_policy="pin")
        _register_sneaky(cluster)
        local, foreign = _split_hosts(cluster)
        txn = cluster.submit(
            "sneakyImport",
            {"vm_host": local, "hidden_target": foreign.rsplit("/", 1)[-1]},
        )
        with pytest.warns(RuntimeWarning, match="bootstrap-frozen"):
            cluster.drain()
        final = cluster.load(txn)
        assert final.state is TransactionState.COMMITTED
        executing = cluster.shard_of(local)
        assert cluster.controllers[executing].stats["foreign_write_pins"] >= 1
        # Pin's documented hazard, now surfaced instead of silent: the
        # executing shard's copy has the write, the owner's copy does not.
        owner = cluster.router.shard_of(foreign)
        assert IMAGE in cluster.model(executing).get(foreign).get("imported_images", [])
        assert IMAGE not in cluster.model(owner).get(foreign).get("imported_images", [])


class TestTwoPCUpgrade:
    def test_foreign_sim_write_upgrades_to_cross_shard_commit(self):
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="2pc")
        _register_sneaky(cluster)
        local, foreign = _split_hosts(cluster)
        txn = cluster.submit(
            "sneakyImport",
            {"vm_host": local, "hidden_target": foreign.rsplit("/", 1)[-1]},
        )
        cluster.drain()
        final = cluster.load(txn)
        assert final.state is TransactionState.COMMITTED
        executing = cluster.shard_of(local)
        stats = cluster.controllers[executing].stats
        assert stats["cross_shard_upgrades"] >= 1
        assert stats["cross_shard_committed"] >= 1
        # Atomic and visible on the *owners'* authoritative models.
        owner = cluster.router.shard_of(foreign)
        assert IMAGE in cluster.model(owner).get(foreign).get("imported_images", [])
        assert IMAGE in cluster.model(executing).get(local).get("imported_images", [])
