"""Controller failure-point injection (§2.3), single-shard and sharded.

The paper claims that "whenever the lead controller fails at any possible
failure point, the new leader ... is able to restore the state of the
controller at failure time".  Two complementary harnesses prove it here:

* **round-based crashes** — abandon the controller after every prefix of
  its processing rounds and finish with a fresh replica (the seed's
  original test, now built on :class:`repro.testing.ShardedCluster`), and
* a **deterministic fault-injection matrix** — crash a *shard* controller
  at each named failure point (pre-commit, post-commit/pre-ack,
  pre-checkpoint, mid-checkpoint) by occurrence index, fail the shard over
  to a clean replica, and assert the recovered data model is identical to
  a fault-free control run with no acknowledged transaction lost.
"""

import pytest

from repro.common.config import TropicConfig
from repro.core.txn import Transaction, TransactionState
from repro.testing import (
    FAILURE_POINTS,
    PIPELINE_FAILURE_POINTS,
    FaultInjector,
    ShardedCluster,
)


def run_with_crash_after(cluster: ShardedCluster, crash_after_rounds: int) -> None:
    """Drive the (single-shard) cluster for a bounded number of rounds,
    then abandon the controller (the crash) and finish with a fresh one."""
    for _ in range(crash_after_rounds):
        progressed = cluster.step_all()
        if not progressed and cluster.queues_empty():
            break
    # Crash: the first controller's memory is simply discarded.
    cluster.replace_controller(0)
    cluster.drain()


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("crash_after_rounds", list(range(0, 10)))
    def test_no_transaction_lost_or_double_applied(self, make_cluster, crash_after_rounds):
        cluster = make_cluster()
        txns = [cluster.submit_spawn(f"vm{i}", host_index=i % 4) for i in range(3)]
        run_with_crash_after(cluster, crash_after_rounds)
        successor = cluster.controllers[0]

        # Every submitted transaction reached COMMITTED exactly once.
        for txn in txns:
            final = cluster.load(txn)
            assert final.state is TransactionState.COMMITTED, (
                f"{txn.txid} ended as {final.state} after a crash at "
                f"round {crash_after_rounds}")

        # The logical layer has each VM exactly once and the physical layer
        # agrees (no lost or duplicated device effects).
        for index in range(3):
            path = f"/vmRoot/vmHost{index % 4}/vm{index}"
            assert successor.model.exists(path)
            assert successor.model.get(path)["state"] == "running"
            device = cluster.inventory.registry.device_at(f"/vmRoot/vmHost{index % 4}")
            assert device.vm_state(f"vm{index}") == "running"
        assert cluster.reconciler().detect().is_empty

        # No locks leak across the failover.
        assert successor.lock_manager.active_transactions() == set()

    @pytest.mark.parametrize("crash_after_rounds", [1, 2, 3])
    def test_constraint_aborts_survive_failover(self, make_cluster, crash_after_rounds):
        """A transaction that must abort (memory constraint) still aborts —
        and only aborts — when the controller fails around its execution."""
        cluster = make_cluster(host_mem_mb=1024)
        good = cluster.submit_spawn("fits", host_index=0)
        bad = cluster.submit_spawn("too-big", host_index=0, mem_mb=4096)

        run_with_crash_after(cluster, crash_after_rounds)
        assert cluster.state_of(good) is TransactionState.COMMITTED
        assert cluster.state_of(bad) is TransactionState.ABORTED
        host = cluster.inventory.registry.device_at("/vmRoot/vmHost0")
        assert host.vm_state("fits") == "running"
        assert host.vm_state("too-big") is None
        assert cluster.reconciler().detect().is_empty


class TestCrashWhileInPhysicalLayer:
    def test_result_arriving_after_failover_is_cleaned_up(self, make_cluster):
        """The worker finishes a transaction while no controller is alive;
        the next leader must pick up the result and commit exactly once."""
        cluster = make_cluster()
        txn = cluster.submit_spawn("orphan")
        # Accept, simulate, lock and enqueue to phyQ ... then die.
        first = cluster.controllers[0]
        while first.step():
            pass
        assert cluster.state_of(txn) is TransactionState.STARTED

        assert cluster.workers[0].step()  # physical execution, no leader alive

        cluster.replace_controller(0)
        cluster.drain()
        successor = cluster.controllers[0]
        assert cluster.state_of(txn) is TransactionState.COMMITTED
        assert successor.model.get("/vmRoot/vmHost0/orphan")["state"] == "running"
        assert successor.lock_manager.active_transactions() == set()
        assert cluster.reconciler().detect().is_empty

    def test_repeated_failovers_between_every_transaction(self, make_cluster):
        """A new leader for every transaction: state is rebuilt from the
        store each time and the fleet stays consistent throughout."""
        cluster = make_cluster()
        for index in range(5):
            txn = cluster.submit_spawn(f"gen{index}", host_index=index % 4)
            cluster.replace_controller(0)  # previous leader is gone
            cluster.drain()
            assert cluster.state_of(txn) is TransactionState.COMMITTED
        final = cluster.replace_controller(0)
        final.recover()
        assert final.model.count("vm") == 5
        assert cluster.reconciler().detect().is_empty


# ----------------------------------------------------------------------
# Deterministic shard fault matrix (PR 2 tentpole proof)
# ----------------------------------------------------------------------

#: Aggressive checkpointing so the checkpoint failure points are reachable
#: within a short deterministic workload.
_MATRIX_CONFIG = TropicConfig(checkpoint_every=1)
_NUM_SHARDS = 2
_FAULTY_SHARD = 0
_WORKLOAD = 6  # spawns spread across both shards' hosts


def _run_workload(cluster: ShardedCluster, failover: bool) -> list[Transaction]:
    txns = [cluster.submit_spawn(f"vm{i}", host_index=i % 4) for i in range(_WORKLOAD)]
    cluster.drain(failover=failover)
    return txns


def _control_run() -> tuple[list[dict], set[str], list[Transaction]]:
    """Fault-free reference: per-shard model dicts + committed txn names."""
    cluster = ShardedCluster(
        num_shards=_NUM_SHARDS, config=_MATRIX_CONFIG, with_devices=True
    )
    txns = _run_workload(cluster, failover=False)
    models = [cluster.model(s).to_dict() for s in cluster.shard_ids]
    committed = {
        t.args["vm_name"]
        for t in txns
        if cluster.state_of(t) is TransactionState.COMMITTED
    }
    return models, committed, txns


class TestShardFaultMatrix:
    """Crash shard 0's controller at every named failure point and assert
    the replacement recovers an identical data model and loses no
    acknowledged transaction."""

    @pytest.fixture(scope="class")
    def control(self):
        return _control_run()

    @pytest.mark.parametrize("occurrence", [0, 1, 2, 3])
    @pytest.mark.parametrize("point", FAILURE_POINTS)
    def test_shard_failover_recovers_identical_model(self, control, point, occurrence):
        control_models, control_committed, _ = control
        injector = FaultInjector().arm(point, occurrence)
        cluster = ShardedCluster(
            num_shards=_NUM_SHARDS,
            config=_MATRIX_CONFIG,
            with_devices=True,
            injector=injector,
            faulty_shards=(_FAULTY_SHARD,),
        )
        txns = _run_workload(cluster, failover=True)

        # The data model of every shard is identical to the fault-free run.
        for shard in cluster.shard_ids:
            assert cluster.model(shard).to_dict() == control_models[shard], (
                f"shard {shard} diverged after crash at {point}#{occurrence}"
            )

        # No submitted transaction is lost and outcomes match the control.
        for txn in txns:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            assert txn.args["vm_name"] in control_committed

        # No acknowledged transaction is lost: everything the client was
        # notified about (including notifications delivered *before* the
        # crash, e.g. at post-commit-pre-ack) is still committed, exactly
        # once, in the recovered store and on the devices.
        acked_commits = [t for t in cluster.acked
                         if t.state is TransactionState.COMMITTED]
        seen: set[str] = set()
        for txn in acked_commits:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            vm = txn.args["vm_name"]
            assert vm not in seen, f"{vm} acknowledged twice as committed"
            seen.add(vm)
            host = txn.args["vm_host"]
            device = cluster.inventory.registry.device_at(host)
            assert device.vm_state(vm) == "running"

        # Cross-layer agreement over each shard's owned subtrees and no
        # leaked locks on either shard.
        for shard in cluster.shard_ids:
            assert cluster.detect_is_clean(shard)
            assert cluster.controllers[shard].lock_manager.active_transactions() == set()

        # The sibling shard must be completely unaffected by the fault.
        assert all(crash.point == point for crash in injector.fired)

    def test_matrix_actually_fires_every_point(self):
        """Guard against the matrix silently testing nothing: at occurrence
        0 every named point must be reachable in this workload."""
        for point in FAILURE_POINTS:
            injector = FaultInjector().arm(point, 0)
            cluster = ShardedCluster(
                num_shards=_NUM_SHARDS,
                config=_MATRIX_CONFIG,
                with_devices=True,
                injector=injector,
                faulty_shards=(_FAULTY_SHARD,),
            )
            _run_workload(cluster, failover=True)
            assert [crash.point for crash in injector.fired] == [point]


# ----------------------------------------------------------------------
# Pipelined write-path fault matrix (PR 10 tentpole proof)
# ----------------------------------------------------------------------

#: Same aggressive checkpointing as the serial matrix, but with a real
#: in-flight commit window (depth 3): flushes and inputQ acks are
#: deferred across steps, so a crash can lose several steps at once.
_PIPELINE_MATRIX_CONFIG = TropicConfig(checkpoint_every=1, pipeline_depth=3)


class TestPipelineFaultMatrix:
    """Crash shard 0's pipelined controller at every pipeline crash edge
    and assert the replacement recovers the exact data model of the
    fault-free *serial* control run — the pipeline must be invisible to
    crash-recovery semantics, not merely self-consistent."""

    @pytest.fixture(scope="class")
    def control(self):
        return _control_run()

    def test_pipelined_run_matches_serial_control(self, control):
        """Fault-free equivalence: a depth-3 pipelined run commits the
        same transactions and produces the same models as the serial
        write path."""
        control_models, control_committed, _ = control
        cluster = ShardedCluster(
            num_shards=_NUM_SHARDS, config=_PIPELINE_MATRIX_CONFIG, with_devices=True
        )
        txns = _run_workload(cluster, failover=False)
        for shard in cluster.shard_ids:
            assert cluster.model(shard).to_dict() == control_models[shard]
        committed = {
            t.args["vm_name"]
            for t in txns
            if cluster.state_of(t) is TransactionState.COMMITTED
        }
        assert committed == control_committed

    @pytest.mark.parametrize("occurrence", [0, 1, 2, 3])
    @pytest.mark.parametrize("point", PIPELINE_FAILURE_POINTS)
    def test_pipeline_failover_recovers_identical_model(self, control, point, occurrence):
        control_models, control_committed, _ = control
        injector = FaultInjector().arm(point, occurrence)
        cluster = ShardedCluster(
            num_shards=_NUM_SHARDS,
            config=_PIPELINE_MATRIX_CONFIG,
            with_devices=True,
            injector=injector,
            faulty_shards=(_FAULTY_SHARD,),
        )
        txns = _run_workload(cluster, failover=True)

        # Every shard's recovered model equals the serial fault-free run:
        # losing a whole unflushed window must be indistinguishable (after
        # re-drive) from never having built it.
        for shard in cluster.shard_ids:
            assert cluster.model(shard).to_dict() == control_models[shard], (
                f"shard {shard} diverged after crash at {point}#{occurrence}"
            )

        # No submitted transaction is lost or duplicated.
        for txn in txns:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            assert txn.args["vm_name"] in control_committed

        # Acked-exactly-once: a client notified of a commit (possibly from
        # a post-flush step whose acks were lost) keeps that commit.
        acked_commits = [t for t in cluster.acked
                        if t.state is TransactionState.COMMITTED]
        seen: set[str] = set()
        for txn in acked_commits:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
            vm = txn.args["vm_name"]
            assert vm not in seen, f"{vm} acknowledged twice as committed"
            seen.add(vm)
            device = cluster.inventory.registry.device_at(txn.args["vm_host"])
            assert device.vm_state(vm) == "running"

        for shard in cluster.shard_ids:
            assert cluster.detect_is_clean(shard)
            assert cluster.controllers[shard].lock_manager.active_transactions() == set()
        assert all(crash.point == point for crash in injector.fired)

    def test_matrix_actually_fires_every_point(self):
        """At occurrence 0 every pipeline edge must be reachable at depth
        3 — including ``pipeline-window-crash``, which needs a seal to
        find an older sealed step already in the window."""
        for point in PIPELINE_FAILURE_POINTS:
            injector = FaultInjector().arm(point, 0)
            cluster = ShardedCluster(
                num_shards=_NUM_SHARDS,
                config=_PIPELINE_MATRIX_CONFIG,
                with_devices=True,
                injector=injector,
                faulty_shards=(_FAULTY_SHARD,),
            )
            _run_workload(cluster, failover=True)
            assert [crash.point for crash in injector.fired] == [point]

    def test_window_crash_unreachable_at_depth_one(self):
        """At depth 1 every seal is flushed immediately, so a seal can
        never find an older sealed step in the window: the widest crash
        edge simply does not exist on the serial path."""
        injector = FaultInjector().arm("pipeline-window-crash", 0)
        cluster = ShardedCluster(
            num_shards=_NUM_SHARDS,
            config=_MATRIX_CONFIG,
            with_devices=True,
            injector=injector,
            faulty_shards=(_FAULTY_SHARD,),
        )
        txns = _run_workload(cluster, failover=True)
        assert injector.fired == []
        for txn in txns:
            assert cluster.state_of(txn) is TransactionState.COMMITTED
