"""Controller failure-point injection (§2.3).

The paper claims that "whenever the lead controller fails at any possible
failure point, the new leader ... is able to restore the state of the
controller at failure time".  These tests crash the controller after every
prefix of its processing steps — by simply abandoning the instance and
handing the persistent store to a brand-new controller — and check that the
submitted transactions are neither lost nor applied twice, in either layer.
"""

import pytest

from repro.common.config import TropicConfig
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.persistence import TropicStore
from repro.core.reconcile import Reconciler
from repro.core.txn import Transaction, TransactionState
from repro.core.worker import Worker
from repro.core.events import request_message
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures


class Environment:
    """Store, queues, devices, and factories for controllers/workers."""

    def __init__(self, num_hosts: int = 4, host_mem_mb: int = 8192):
        self.ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=60.0)
        self.client = CoordinationClient(self.ensemble)
        self.store = TropicStore(KVStore(self.client))
        self.input_queue = DistributedQueue(self.client, "/queues/inputQ")
        self.phy_queue = DistributedQueue(self.client, "/queues/phyQ")
        self.inventory = build_inventory(num_vm_hosts=num_hosts, num_storage_hosts=2,
                                         host_mem_mb=host_mem_mb, with_devices=True)
        self.store.save_checkpoint(self.inventory.model, 0)
        self.config = TropicConfig()
        self.schema = build_schema()
        self.procedures = build_procedures()
        self._generation = 0

    def new_controller(self) -> Controller:
        """A fresh controller replica (the 'newly elected leader')."""
        self._generation += 1
        return Controller(
            name=f"ctrl-{self._generation}",
            config=self.config,
            store=self.store,
            input_queue=self.input_queue,
            phy_queue=self.phy_queue,
            schema=self.schema,
            procedures=self.procedures,
        )

    def new_worker(self) -> Worker:
        return Worker("worker-0", self.store, self.phy_queue, self.input_queue,
                      self.inventory.registry, config=self.config)

    def submit_spawn(self, vm_name: str, vm_host: str = "/vmRoot/vmHost0") -> Transaction:
        txn = Transaction(
            procedure="spawnVM",
            args={
                "vm_name": vm_name,
                "image_template": "template-small",
                "storage_host": "/storageRoot/storageHost0",
                "vm_host": vm_host,
                "mem_mb": 512,
            },
        )
        txn.mark(TransactionState.INITIALIZED, 0.0)
        self.store.save_transaction(txn)
        self.input_queue.put(request_message(txn.txid))
        return txn

    def drain(self, controller: Controller, worker: Worker, max_rounds: int = 10_000) -> None:
        """Run controller and worker to quiescence."""
        for _ in range(max_rounds):
            progressed = controller.step()
            if worker.step():
                progressed = True
            if (not progressed and self.input_queue.is_empty()
                    and self.phy_queue.is_empty()):
                return
        raise AssertionError("environment did not quiesce")

    def reconciler(self, controller: Controller) -> Reconciler:
        return Reconciler(controller, self.inventory.registry)


def run_with_crash_after(env: Environment, txns: list[Transaction],
                         crash_after_rounds: int) -> Controller:
    """Drive a first controller for a bounded number of rounds, then abandon
    it (the crash) and finish the workload with a fresh replica."""
    first = env.new_controller()
    worker = env.new_worker()
    for _ in range(crash_after_rounds):
        progressed = first.step()
        if worker.step():
            progressed = True
        if not progressed and env.input_queue.is_empty() and env.phy_queue.is_empty():
            break
    # Crash: the first controller's memory is simply discarded.
    successor = env.new_controller()
    env.drain(successor, worker)
    return successor


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("crash_after_rounds", list(range(0, 10)))
    def test_no_transaction_lost_or_double_applied(self, crash_after_rounds):
        env = Environment()
        txns = [env.submit_spawn(f"vm{i}", vm_host=f"/vmRoot/vmHost{i % 4}")
                for i in range(3)]
        successor = run_with_crash_after(env, txns, crash_after_rounds)

        # Every submitted transaction reached COMMITTED exactly once.
        for txn in txns:
            final = env.store.load_transaction(txn.txid)
            assert final.state is TransactionState.COMMITTED, (
                f"{txn.txid} ended as {final.state} after a crash at "
                f"round {crash_after_rounds}")

        # The logical layer has each VM exactly once and the physical layer
        # agrees (no lost or duplicated device effects).
        for index in range(3):
            path = f"/vmRoot/vmHost{index % 4}/vm{index}"
            assert successor.model.exists(path)
            assert successor.model.get(path)["state"] == "running"
            device = env.inventory.registry.device_at(f"/vmRoot/vmHost{index % 4}")
            assert device.vm_state(f"vm{index}") == "running"
        assert env.reconciler(successor).detect().is_empty

        # No locks leak across the failover.
        assert successor.lock_manager.active_transactions() == set()

    @pytest.mark.parametrize("crash_after_rounds", [1, 2, 3])
    def test_constraint_aborts_survive_failover(self, crash_after_rounds):
        """A transaction that must abort (memory constraint) still aborts —
        and only aborts — when the controller fails around its execution."""
        env = Environment(host_mem_mb=1024)
        good = env.submit_spawn("fits", vm_host="/vmRoot/vmHost0")
        bad = Transaction(
            procedure="spawnVM",
            args={"vm_name": "too-big", "image_template": "template-small",
                  "storage_host": "/storageRoot/storageHost0",
                  "vm_host": "/vmRoot/vmHost0", "mem_mb": 4096},
        )
        bad.mark(TransactionState.INITIALIZED, 0.0)
        env.store.save_transaction(bad)
        env.input_queue.put(request_message(bad.txid))

        successor = run_with_crash_after(env, [good, bad], crash_after_rounds)
        assert env.store.load_transaction(good.txid).state is TransactionState.COMMITTED
        assert env.store.load_transaction(bad.txid).state is TransactionState.ABORTED
        host = env.inventory.registry.device_at("/vmRoot/vmHost0")
        assert host.vm_state("fits") == "running"
        assert host.vm_state("too-big") is None
        assert env.reconciler(successor).detect().is_empty


class TestCrashWhileInPhysicalLayer:
    def test_result_arriving_after_failover_is_cleaned_up(self):
        """The worker finishes a transaction while no controller is alive;
        the next leader must pick up the result and commit exactly once."""
        env = Environment()
        txn = env.submit_spawn("orphan")
        first = env.new_controller()
        # Accept, simulate, lock and enqueue to phyQ ... then die.
        first.run_until_idle()
        assert env.store.load_transaction(txn.txid).state is TransactionState.STARTED

        worker = env.new_worker()
        assert worker.step()  # physical execution happens with no leader alive

        successor = env.new_controller()
        env.drain(successor, worker)
        assert env.store.load_transaction(txn.txid).state is TransactionState.COMMITTED
        assert successor.model.get("/vmRoot/vmHost0/orphan")["state"] == "running"
        assert successor.lock_manager.active_transactions() == set()
        assert env.reconciler(successor).detect().is_empty

    def test_repeated_failovers_between_every_transaction(self):
        """A new leader for every transaction: state is rebuilt from the
        store each time and the fleet stays consistent throughout."""
        env = Environment()
        worker = env.new_worker()
        for index in range(5):
            txn = env.submit_spawn(f"gen{index}", vm_host=f"/vmRoot/vmHost{index % 4}")
            leader = env.new_controller()  # previous leader is gone
            env.drain(leader, worker)
            assert env.store.load_transaction(txn.txid).state is TransactionState.COMMITTED
        final = env.new_controller()
        final.recover()
        assert final.model.count("vm") == 5
        assert env.reconciler(final).detect().is_empty
