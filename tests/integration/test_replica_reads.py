"""Fleet-wide reads through the read-replica subsystem (PR 4 tentpole).

These tests simulate the multi-process deployment the subsystem exists
for: several :class:`~repro.core.platform.TropicPlatform` instances share
one coordination ensemble, each hosting a subset of the shards (one
"process" per platform).  A process hosting only shard 0 of a 4-shard
fleet serves ``model_view(consistency="replica")`` equal to the union of
the shard leaders' models at a quiesce point — the constructive
replacement for the PR 3 ``ShardUnavailable`` refusal — while strict
``consistency="leader"`` still refuses partial hosting.

The crashing-leader tests reuse the deterministic fault harness
(:mod:`repro.testing`) to assert the replica watermark is monotonic and
converges through failovers.
"""

from __future__ import annotations

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ShardUnavailable
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.replica import EVENT_DELTA, ReadReplica
from repro.core.twopc import DECISION_COMMIT
from repro.core.txn import TransactionState
from repro.datamodel.snapshot import diff_models
from repro.tcloud.procedures import disk_image_name
from repro.testing import (
    POST_COMMIT_PRE_ACK,
    PRE_COMMIT,
    FaultInjector,
    ShardedCluster,
)
from repro.tcloud.service import build_tcloud

NUM_SHARDS = 4


def _fleet(local_shards_per_process):
    """Build one platform ("process") per local-shard list, all sharing a
    single coordination ensemble — the multi-process deployment shape."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(num_shards=NUM_SHARDS, logical_only=True)
    clouds = []
    for local in local_shards_per_process:
        cloud = build_tcloud(
            num_vm_hosts=8,
            num_storage_hosts=4,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local,
        )
        cloud.platform.start()
        clouds.append(cloud)
    return clouds


def _spawn_everywhere(clouds, count_per_host=1):
    """Spawn VMs on every compute host, routed through the process hosting
    the owning shard; returns the number of committed spawns."""
    inventory = clouds[0].inventory
    router = clouds[0].platform.shard_router
    committed = 0
    for repeat in range(count_per_host):
        for index, host in enumerate(inventory.vm_hosts):
            shard = router.shard_of(host)
            cloud = next(
                c for c in clouds if shard in c.platform.local_shards
            )
            txn = cloud.platform.submit(
                "spawnVM",
                {
                    "vm_name": f"vm-{repeat}-{index}",
                    "image_template": "template-small",
                    "storage_host": inventory.storage_host_for(index),
                    "vm_host": host,
                    "mem_mb": 256,
                },
            )
            assert txn.state is TransactionState.COMMITTED
            committed += 1
    return committed


def _leader_of(clouds, shard):
    cloud = next(c for c in clouds if shard in c.platform.local_shards)
    return cloud.platform.leader(shard)


class TestMultiProcessFleetView:
    def test_shard0_process_serves_the_union_of_leader_models(self):
        """The acceptance scenario: a process hosting only shard 0 of a
        4-shard fleet returns a replica-backed fleet view equal, unit by
        unit, to the owning leaders' models at a quiesce point."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]  # hosts shard 0 only
        committed = _spawn_everywhere(clouds)
        fleet = observer.platform.fleet_view(consistency="replica")

        assert fleet.consistency == "replica"
        assert fleet.replica_shards() == [1, 2, 3]
        assert fleet.model.count("vm") == committed
        # Every second-level unit matches its owning leader's copy exactly.
        router = observer.platform.shard_router
        for top_name, top in fleet.model.root.children.items():
            for child_name in top.children:
                path = f"/{top_name}/{child_name}"
                leader = _leader_of(clouds, router.shard_of(path))
                assert leader.model.exists(path)
                assert diff_models(fleet.model, leader.model, path).is_empty
        # ... and no owned unit is missing from the view.
        for shard in range(NUM_SHARDS):
            leader = _leader_of(clouds, shard)
            for top_name, top in leader.model.root.children.items():
                for child_name in top.children:
                    path = f"/{top_name}/{child_name}"
                    if router.shard_of(path) == shard:
                        assert fleet.model.exists(path)

    def test_replica_watermarks_match_owner_applied_seq_at_quiesce(self):
        clouds = _fleet([[0], [1, 2, 3]])
        observer, owner = clouds
        _spawn_everywhere(clouds)
        fleet = observer.platform.fleet_view()
        assert fleet.watermarks[0].source == "leader"
        for shard in (1, 2, 3):
            mark = fleet.watermarks[shard]
            assert mark.source == "replica"
            assert mark.applied_txn == owner.platform.shards[shard].store.applied_seq()

    def test_leader_consistency_still_refuses_partial_hosting(self):
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        with pytest.raises(ShardUnavailable) as excinfo:
            observer.platform.model_view(consistency="leader")
        assert excinfo.value.shards == [1, 2, 3]
        # The full-hosting merge of both processes' leaders is unaffected:
        # each process still reads its own shards strictly.
        for cloud in clouds:
            for shard in cloud.platform.local_shards:
                assert cloud.platform.leader(shard).model.exists("/vmRoot")

    def test_cold_start_observer_catches_up_after_owners_appear(self):
        """An observer that starts (and reads) before the owning processes
        have committed anything serves their subtrees once they exist —
        the checkpoint/applied watches fire and the replicas catch up."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        early = observer.platform.fleet_view()
        assert early.model.count("vm") == 0
        committed = _spawn_everywhere(clouds)
        late = observer.platform.fleet_view()
        assert late.model.count("vm") == committed
        for shard in (1, 2, 3):
            assert late.watermarks[shard].applied_txn >= 1

    def test_service_layer_reads_work_from_the_partial_process(self):
        """TCloud's read helpers go through model_view(): the shard-0
        process can answer fleet inventory questions it used to refuse."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        committed = _spawn_everywhere(clouds)
        assert observer.vm_count() == committed
        assert observer.platform.resource_count() == clouds[1].platform.resource_count()


class TestWatermarkUnderFailover:
    def _replica_for(self, cluster, shard=0):
        store = TropicStore(KVStore(cluster.client, f"/tropic/store/shard-{shard}"))
        return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)

    @pytest.mark.parametrize("point", [PRE_COMMIT, POST_COMMIT_PRE_ACK])
    def test_watermark_is_monotonic_across_leader_crashes(self, point):
        """The replica tails a shard whose leader crashes mid-stream (fault
        harness crash + clean-successor failover): the watermark never
        regresses, and at quiesce the replica equals the recovered leader."""
        injector = FaultInjector().arm(point, 1)
        cluster = ShardedCluster(
            num_shards=1,
            config=TropicConfig(checkpoint_every=3),
            injector=injector,
            faulty_shards=(0,),
        )
        replica = self._replica_for(cluster)
        for i in range(6):
            cluster.submit_spawn(f"vm{i}", host_index=i % 4)
        marks = [replica.applied_txn]
        for _ in range(10_000):
            progressed = cluster.step_all(failover=True)
            replica.refresh()
            marks.append(replica.applied_txn)
            if not progressed and cluster.queues_empty():
                break
        assert injector.fired, "the armed crash point never fired"
        assert all(a <= b for a, b in zip(marks, marks[1:])), marks
        assert replica.model().to_dict() == cluster.model(0).to_dict()
        assert replica.applied_txn == cluster.stores[0].applied_seq()
        for i in range(6):
            assert cluster.state_of(
                cluster.submitted[i]
            ) is TransactionState.COMMITTED

    def test_replica_survives_checkpointing_leader_and_failover(self):
        """Checkpoints truncate the log under the replica while the leader
        is replaced; the replica re-bootstraps as needed and converges."""
        cluster = ShardedCluster(
            num_shards=1, config=TropicConfig(checkpoint_every=2)
        )
        replica = self._replica_for(cluster)
        replica.model()
        for i in range(3):
            cluster.submit_spawn(f"a{i}", host_index=i)
        cluster.drain()
        replica.refresh()
        watermark = replica.applied_txn
        cluster.replace_controller(0)
        for i in range(3):
            cluster.submit_spawn(f"b{i}", host_index=i)
        cluster.drain()
        replica.refresh()
        assert replica.applied_txn >= watermark
        assert replica.model().to_dict() == cluster.model(0).to_dict()


def _twopc_fleet():
    """Writer process hosting shards 0 and 1, observer hosting shard 2
    only, under the 2PC cross-shard policy — every participant of a
    0<->1 cross-shard commit is replica-served at the observer (PR 7)."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        num_shards=3,
        logical_only=True,
        checkpoint_every=100_000,
        cross_shard_policy="2pc",
    )

    def build(local):
        cloud = build_tcloud(
            num_vm_hosts=9,
            num_storage_hosts=6,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local,
        )
        cloud.platform.start()
        return cloud

    return build([0, 1]), build([2])


def _cross_pairs(cloud, count):
    """``count`` distinct (vm_host, storage_host) pairs spanning two
    shards, neither of them the observer's shard 2."""
    router = cloud.platform.shard_router
    pairs = []
    for vm_host in cloud.inventory.vm_hosts:
        a = router.shard_of(vm_host)
        if a == 2:
            continue
        for storage_host in cloud.inventory.storage_hosts:
            b = router.shard_of(storage_host)
            if b != a and b != 2:
                pairs.append((vm_host, storage_host))
                break
        if len(pairs) == count:
            return pairs
    raise AssertionError(f"only {len(pairs)} cross-shard pairs available")


def _step_writer_shard(platform, shard) -> bool:
    progressed = platform.leader(shard).step()
    for worker in platform.shards[shard].workers:
        if worker.step():
            progressed = True
    return progressed


class TestCrossShardAtomicReads:
    """PR 7 satellite: 2PC commits interleaved with concurrent replica
    fleet views and stitched subscription consumption — no view and no
    released stream prefix ever holds exactly one participant's half."""

    def _spawn_cross(self, platform, name, vm_host, storage_host):
        return platform.submit(
            "spawnVM",
            {
                "vm_name": name,
                "image_template": "template-small",
                "storage_host": storage_host,
                "vm_host": vm_host,
                "mem_mb": 128,
            },
            wait=False,
        )

    def test_interleaved_commits_never_tear_the_fleet_view(self):
        """Three overlapping cross-shard commits driven step-by-step with
        a fenced fleet view taken between every step: each commit is
        always both-or-neither visible, and all converge to visible."""
        writer, observer = _twopc_fleet()
        with writer.platform, observer.platform:
            pairs = _cross_pairs(writer, 3)
            handles = [
                self._spawn_cross(writer.platform, f"x{i}", vm, sh)
                for i, (vm, sh) in enumerate(pairs)
            ]
            expected = [
                (f"{vm}/x{i}", f"{sh}/{disk_image_name(f'x{i}')}")
                for i, (vm, sh) in enumerate(pairs)
            ]
            for _ in range(10_000):
                progressed = False
                for shard in (0, 1):
                    progressed |= _step_writer_shard(writer.platform, shard)
                    view = observer.platform.fleet_view(consistency="replica")
                    for vm_path, image_path in expected:
                        vm_there = view.model.exists(vm_path)
                        image_there = view.model.exists(image_path)
                        assert vm_there == image_there, (
                            f"torn mid-interleaving: {vm_path}={vm_there} "
                            f"{image_path}={image_there}"
                        )
                if not progressed and all(h.is_done() for h in handles):
                    break
            writer.platform.run_until_idle()
            for handle in handles:
                assert handle.wait(timeout=30.0).state is TransactionState.COMMITTED
            final = observer.platform.fleet_view(consistency="replica").model
            for vm_path, image_path in expected:
                assert final.exists(vm_path) and final.exists(image_path)

    def test_stitched_stream_holds_a_half_until_the_other_is_available(self):
        """The subscription-side tentpole: a stitched consumer of both
        halves' subtrees never receives the coordinator's slice of a
        cross-shard commit while the other participant's half is neither
        streamed nor applied — and receives both once it is."""
        writer, observer = _twopc_fleet()
        with writer.platform, observer.platform:
            (vm_host, storage_host), = _cross_pairs(writer, 1)
            stitched = observer.platform.read_proxy.subscribe_many(
                [vm_host, storage_host]
            )
            assert stitched.poll() == []
            txn, coordinator, lagging = _drive_torn(
                writer.platform, "xstitch", vm_host, storage_host
            )
            held = stitched.poll()
            assert all(event.txid != txn.txid for _, event in held if event.path), (
                "a half of the torn commit leaked through the stitch"
            )
            assert stitched.pending() > 0  # the coordinator's half is held
            writer.platform.run_until_idle()
            released = stitched.poll()
            by_shard = {}
            for shard, event in released:
                if event.txid == txn.txid and event.kind == EVENT_DELTA:
                    by_shard.setdefault(shard, []).append(event)
            assert set(by_shard) == {coordinator, lagging}, (
                f"stitched release missing a half: {sorted(by_shard)}"
            )
            paths = {e.path for events in by_shard.values() for e in events}
            assert any(p.startswith(vm_host) for p in paths)
            assert any(p.startswith(storage_host) for p in paths)

    def test_stitched_stream_stays_atomic_through_the_whole_protocol(self):
        """Step sweep with a stitched consumer polling after every step:
        at every poll boundary the consumer's accumulated deltas cover
        both participants of each cross-shard commit or neither."""
        writer, observer = _twopc_fleet()
        with writer.platform, observer.platform:
            pairs = _cross_pairs(writer, 2)
            paths = [p for pair in pairs for p in pair]
            stitched = observer.platform.read_proxy.subscribe_many(paths)
            handles = [
                self._spawn_cross(writer.platform, f"s{i}", vm, sh)
                for i, (vm, sh) in enumerate(pairs)
            ]
            shards_of = {
                handle.txid: sorted(
                    {
                        writer.platform.shard_router.shard_of(h)
                        for h in pairs[i]
                    }
                )
                for i, handle in enumerate(handles)
            }
            seen: dict[str, set[int]] = {}
            for _ in range(10_000):
                progressed = False
                for shard in (0, 1):
                    progressed |= _step_writer_shard(writer.platform, shard)
                    for ev_shard, event in stitched.poll():
                        if event.kind == EVENT_DELTA and event.txid in shards_of:
                            seen.setdefault(event.txid, set()).add(ev_shard)
                    for txid, shards in seen.items():
                        assert shards == set(shards_of[txid]), (
                            f"{txid}: consumer holds half from {sorted(shards)}, "
                            f"participants are {shards_of[txid]}"
                        )
                if not progressed and all(h.is_done() for h in handles):
                    break
            writer.platform.run_until_idle()
            for ev_shard, event in stitched.poll():
                if event.kind == EVENT_DELTA and event.txid in shards_of:
                    seen.setdefault(event.txid, set()).add(ev_shard)
            committed = [
                h.txid
                for h in handles
                if h.wait(timeout=30.0).state is TransactionState.COMMITTED
            ]
            for txid in committed:
                assert seen.get(txid) == set(shards_of[txid])


def _drive_torn(platform, name, vm_host, storage_host):
    """Drive a cross-shard spawn to the torn window: commit decision
    durable and the coordinator committed while the other participant's
    decision message stays unprocessed.  Returns (txn, coordinator,
    lagging)."""
    router = platform.shard_router
    shard_a, shard_b = router.shard_of(vm_host), router.shard_of(storage_host)
    handle = platform.submit(
        "spawnVM",
        {
            "vm_name": name,
            "image_template": "template-small",
            "storage_host": storage_host,
            "vm_host": vm_host,
            "mem_mb": 128,
        },
        wait=False,
    )
    txid = handle.txid
    coordinator = platform.shard_of_txn(txid)
    lagging = shard_b if coordinator == shard_a else shard_a
    for _ in range(10_000):
        if platform.twopc.decision(txid, coordinator) == DECISION_COMMIT:
            break
        _step_writer_shard(platform, lagging)
        _step_writer_shard(platform, coordinator)
    else:
        raise AssertionError("2PC never reached a commit decision")
    for _ in range(10_000):
        txn = platform.load_transaction(txid)
        if txn is not None and txn.state is TransactionState.COMMITTED:
            break
        _step_writer_shard(platform, coordinator)
    else:
        raise AssertionError("coordinator never committed")
    assert txid not in platform.shards[lagging].store.applied_txids()
    return txn, coordinator, lagging
