"""Fleet-wide reads through the read-replica subsystem (PR 4 tentpole).

These tests simulate the multi-process deployment the subsystem exists
for: several :class:`~repro.core.platform.TropicPlatform` instances share
one coordination ensemble, each hosting a subset of the shards (one
"process" per platform).  A process hosting only shard 0 of a 4-shard
fleet serves ``model_view(consistency="replica")`` equal to the union of
the shard leaders' models at a quiesce point — the constructive
replacement for the PR 3 ``ShardUnavailable`` refusal — while strict
``consistency="leader"`` still refuses partial hosting.

The crashing-leader tests reuse the deterministic fault harness
(:mod:`repro.testing`) to assert the replica watermark is monotonic and
converges through failovers.
"""

from __future__ import annotations

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ShardUnavailable
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.replica import ReadReplica
from repro.core.txn import TransactionState
from repro.datamodel.snapshot import diff_models
from repro.testing import (
    POST_COMMIT_PRE_ACK,
    PRE_COMMIT,
    FaultInjector,
    ShardedCluster,
)
from repro.tcloud.service import build_tcloud

NUM_SHARDS = 4


def _fleet(local_shards_per_process):
    """Build one platform ("process") per local-shard list, all sharing a
    single coordination ensemble — the multi-process deployment shape."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(num_shards=NUM_SHARDS, logical_only=True)
    clouds = []
    for local in local_shards_per_process:
        cloud = build_tcloud(
            num_vm_hosts=8,
            num_storage_hosts=4,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local,
        )
        cloud.platform.start()
        clouds.append(cloud)
    return clouds


def _spawn_everywhere(clouds, count_per_host=1):
    """Spawn VMs on every compute host, routed through the process hosting
    the owning shard; returns the number of committed spawns."""
    inventory = clouds[0].inventory
    router = clouds[0].platform.shard_router
    committed = 0
    for repeat in range(count_per_host):
        for index, host in enumerate(inventory.vm_hosts):
            shard = router.shard_of(host)
            cloud = next(
                c for c in clouds if shard in c.platform.local_shards
            )
            txn = cloud.platform.submit(
                "spawnVM",
                {
                    "vm_name": f"vm-{repeat}-{index}",
                    "image_template": "template-small",
                    "storage_host": inventory.storage_host_for(index),
                    "vm_host": host,
                    "mem_mb": 256,
                },
            )
            assert txn.state is TransactionState.COMMITTED
            committed += 1
    return committed


def _leader_of(clouds, shard):
    cloud = next(c for c in clouds if shard in c.platform.local_shards)
    return cloud.platform.leader(shard)


class TestMultiProcessFleetView:
    def test_shard0_process_serves_the_union_of_leader_models(self):
        """The acceptance scenario: a process hosting only shard 0 of a
        4-shard fleet returns a replica-backed fleet view equal, unit by
        unit, to the owning leaders' models at a quiesce point."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]  # hosts shard 0 only
        committed = _spawn_everywhere(clouds)
        fleet = observer.platform.fleet_view(consistency="replica")

        assert fleet.consistency == "replica"
        assert fleet.replica_shards() == [1, 2, 3]
        assert fleet.model.count("vm") == committed
        # Every second-level unit matches its owning leader's copy exactly.
        router = observer.platform.shard_router
        for top_name, top in fleet.model.root.children.items():
            for child_name in top.children:
                path = f"/{top_name}/{child_name}"
                leader = _leader_of(clouds, router.shard_of(path))
                assert leader.model.exists(path)
                assert diff_models(fleet.model, leader.model, path).is_empty
        # ... and no owned unit is missing from the view.
        for shard in range(NUM_SHARDS):
            leader = _leader_of(clouds, shard)
            for top_name, top in leader.model.root.children.items():
                for child_name in top.children:
                    path = f"/{top_name}/{child_name}"
                    if router.shard_of(path) == shard:
                        assert fleet.model.exists(path)

    def test_replica_watermarks_match_owner_applied_seq_at_quiesce(self):
        clouds = _fleet([[0], [1, 2, 3]])
        observer, owner = clouds
        _spawn_everywhere(clouds)
        fleet = observer.platform.fleet_view()
        assert fleet.watermarks[0].source == "leader"
        for shard in (1, 2, 3):
            mark = fleet.watermarks[shard]
            assert mark.source == "replica"
            assert mark.applied_txn == owner.platform.shards[shard].store.applied_seq()

    def test_leader_consistency_still_refuses_partial_hosting(self):
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        with pytest.raises(ShardUnavailable) as excinfo:
            observer.platform.model_view(consistency="leader")
        assert excinfo.value.shards == [1, 2, 3]
        # The full-hosting merge of both processes' leaders is unaffected:
        # each process still reads its own shards strictly.
        for cloud in clouds:
            for shard in cloud.platform.local_shards:
                assert cloud.platform.leader(shard).model.exists("/vmRoot")

    def test_cold_start_observer_catches_up_after_owners_appear(self):
        """An observer that starts (and reads) before the owning processes
        have committed anything serves their subtrees once they exist —
        the checkpoint/applied watches fire and the replicas catch up."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        early = observer.platform.fleet_view()
        assert early.model.count("vm") == 0
        committed = _spawn_everywhere(clouds)
        late = observer.platform.fleet_view()
        assert late.model.count("vm") == committed
        for shard in (1, 2, 3):
            assert late.watermarks[shard].applied_txn >= 1

    def test_service_layer_reads_work_from_the_partial_process(self):
        """TCloud's read helpers go through model_view(): the shard-0
        process can answer fleet inventory questions it used to refuse."""
        clouds = _fleet([[0], [1, 2, 3]])
        observer = clouds[0]
        committed = _spawn_everywhere(clouds)
        assert observer.vm_count() == committed
        assert observer.platform.resource_count() == clouds[1].platform.resource_count()


class TestWatermarkUnderFailover:
    def _replica_for(self, cluster, shard=0):
        store = TropicStore(KVStore(cluster.client, f"/tropic/store/shard-{shard}"))
        return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)

    @pytest.mark.parametrize("point", [PRE_COMMIT, POST_COMMIT_PRE_ACK])
    def test_watermark_is_monotonic_across_leader_crashes(self, point):
        """The replica tails a shard whose leader crashes mid-stream (fault
        harness crash + clean-successor failover): the watermark never
        regresses, and at quiesce the replica equals the recovered leader."""
        injector = FaultInjector().arm(point, 1)
        cluster = ShardedCluster(
            num_shards=1,
            config=TropicConfig(checkpoint_every=3),
            injector=injector,
            faulty_shards=(0,),
        )
        replica = self._replica_for(cluster)
        for i in range(6):
            cluster.submit_spawn(f"vm{i}", host_index=i % 4)
        marks = [replica.applied_txn]
        for _ in range(10_000):
            progressed = cluster.step_all(failover=True)
            replica.refresh()
            marks.append(replica.applied_txn)
            if not progressed and cluster.queues_empty():
                break
        assert injector.fired, "the armed crash point never fired"
        assert all(a <= b for a, b in zip(marks, marks[1:])), marks
        assert replica.model().to_dict() == cluster.model(0).to_dict()
        assert replica.applied_txn == cluster.stores[0].applied_seq()
        for i in range(6):
            assert cluster.state_of(
                cluster.submitted[i]
            ) is TransactionState.COMMITTED

    def test_replica_survives_checkpointing_leader_and_failover(self):
        """Checkpoints truncate the log under the replica while the leader
        is replaced; the replica re-bootstraps as needed and converges."""
        cluster = ShardedCluster(
            num_shards=1, config=TropicConfig(checkpoint_every=2)
        )
        replica = self._replica_for(cluster)
        replica.model()
        for i in range(3):
            cluster.submit_spawn(f"a{i}", host_index=i)
        cluster.drain()
        replica.refresh()
        watermark = replica.applied_txn
        cluster.replace_controller(0)
        for i in range(3):
            cluster.submit_spawn(f"b{i}", host_index=i)
        cluster.drain()
        replica.refresh()
        assert replica.applied_txn >= watermark
        assert replica.model().to_dict() == cluster.model(0).to_dict()
