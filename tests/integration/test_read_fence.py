"""Cross-shard-atomic replica reads: the decision-log-aware read fence.

The replica read path (PR 4/5) merges per-shard snapshots at independent
watermarks, so a ``fleet_view(consistency="replica")`` taken between a
2PC coordinator's commit and a participant's decision processing used to
show exactly one participant's slice of the transaction — a *torn*
cross-shard read, violating the atomicity the write path's two-phase
commit pays for.

These tests construct that window deterministically: a cross-shard
spawnVM is driven shard-by-shard (inline stepping) until the commit
decision is durable and the coordinator has applied its slice, while the
participant's decision message is withheld in its inputQ.  The fenced
view must contain *both* halves (the fence advances the lagging replica
past the durable decision) or neither — never one; ``fence=False``
reproduces the historical tear as a regression sentinel.
"""

from __future__ import annotations


from repro.common.config import TropicConfig
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.readfence import fence_replica_sources
from repro.core.replica import ReadReplica
from repro.core.twopc import TWOPC_PREFIX, DECISION_COMMIT, TwoPCLog
from repro.core.txn import TransactionState
from repro.tcloud.procedures import disk_image_name
from repro.tcloud.service import build_tcloud
from repro.testing import ShardedCluster

NUM_SHARDS = 3


def _fleet():
    """Writer process hosting shards 0 and 1, observer hosting shard 2
    only — the cross-shard workload below spans shards 0<->1, so both of
    its participants are replica-served at the observer."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        num_shards=NUM_SHARDS,
        logical_only=True,
        checkpoint_every=100_000,
        cross_shard_policy="2pc",
    )

    def build(local):
        return build_tcloud(
            num_vm_hosts=9,
            num_storage_hosts=6,
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local,
        )

    writer = build([0, 1])
    observer = build([2])
    writer.platform.start()
    observer.platform.start()
    return writer, observer


def _cross_pair(cloud):
    """(vm_host, storage_host) on two different shards, neither of them
    the observer's local shard 2."""
    router = cloud.platform.shard_router
    for vm_host in cloud.inventory.vm_hosts:
        a = router.shard_of(vm_host)
        if a == 2:
            continue
        for storage_host in cloud.inventory.storage_hosts:
            b = router.shard_of(storage_host)
            if b != a and b != 2:
                return vm_host, storage_host
    raise AssertionError("no cross-shard host pair off the observer shard")


def _step_shard(platform, shard) -> bool:
    progressed = platform.leader(shard).step()
    for worker in platform.shards[shard].workers:
        if worker.step():
            progressed = True
    return progressed


def _drive_to_torn_window(writer, vm_host, storage_host):
    """Run a cross-shard spawnVM until the commit decision is durable and
    the coordinator has committed, while the *other* participant's
    decision message stays unprocessed in its inputQ.  Returns the txn."""
    platform = writer.platform
    router = platform.shard_router
    shard_a = router.shard_of(vm_host)
    shard_b = router.shard_of(storage_host)
    handle = platform.submit(
        "spawnVM",
        {
            "vm_name": "torn",
            "image_template": "template-small",
            "storage_host": storage_host,
            "vm_host": vm_host,
            "mem_mb": 256,
        },
        wait=False,
    )
    txid = handle.txid
    coordinator = platform.shard_of_txn(txid)
    lagging = shard_b if coordinator == shard_a else shard_a
    twopc = platform.twopc
    # Phase 1: step both shards until the commit decision is durable.
    # The decision is written inside a coordinator step, so stepping the
    # coordinator *last* in each round guarantees the lagging shard never
    # sees the fan-out that follows it.
    for _ in range(10_000):
        if twopc.decision(txid, coordinator) == DECISION_COMMIT:
            break
        _step_shard(platform, lagging)
        _step_shard(platform, coordinator)
    else:
        raise AssertionError("2PC never reached a commit decision")
    # Phase 2: only the coordinator runs until its document is terminal.
    for _ in range(10_000):
        txn = platform.load_transaction(txid)
        if txn is not None and txn.state is TransactionState.COMMITTED:
            break
        _step_shard(platform, coordinator)
    else:
        raise AssertionError("coordinator never committed")
    assert txid not in writer.platform.shards[lagging].store.applied_txids(), (
        "test harness failed to withhold the participant's decision"
    )
    return txn, coordinator, lagging


class TestFleetViewFence:
    def test_unfenced_view_reproduces_the_torn_read(self):
        """Regression sentinel: with the fence disabled, the historical
        bug is visible — the view holds exactly one half of the commit."""
        writer, observer = _fleet()
        with writer.platform, observer.platform:
            vm_host, storage_host = _cross_pair(writer)
            _drive_to_torn_window(writer, vm_host, storage_host)
            view = observer.platform.fleet_view(
                consistency="replica", fence=False
            ).model
            vm_visible = view.exists(f"{vm_host}/torn")
            image_visible = view.exists(
                f"{storage_host}/{disk_image_name('torn')}"
            )
            assert vm_visible != image_visible, (
                "expected the unfenced view to tear (one half only); "
                "did the stepping harness leave the window?"
            )

    def test_fenced_view_is_atomic_across_shards(self):
        """The tentpole: the default replica-consistency view never shows
        a partial cross-shard commit — the fence advances the lagging
        replica past the durable decision before merging."""
        writer, observer = _fleet()
        with writer.platform, observer.platform:
            vm_host, storage_host = _cross_pair(writer)
            _drive_to_torn_window(writer, vm_host, storage_host)
            view = observer.platform.fleet_view(consistency="replica").model
            vm_visible = view.exists(f"{vm_host}/torn")
            image_visible = view.exists(
                f"{storage_host}/{disk_image_name('torn')}"
            )
            assert vm_visible and image_visible, (
                f"torn cross-shard read: vm={vm_visible} image={image_visible}"
            )

    def test_fence_early_application_invalidates_the_cached_view(self):
        """Satellite 1 regression: an unfenced call caches the torn merge;
        the fence's early application changes the lagging replica's model
        *without* moving its ``applied_txn``, so only the ``early_seq``
        component of the cache key keeps the stale entry from being
        served to the fenced call that follows."""
        writer, observer = _fleet()
        with writer.platform, observer.platform:
            vm_host, storage_host = _cross_pair(writer)
            _, _, lagging = _drive_to_torn_window(writer, vm_host, storage_host)
            torn = observer.platform.fleet_view(
                consistency="replica", fence=False
            ).model
            image = disk_image_name("torn")
            assert torn.exists(f"{vm_host}/torn") != torn.exists(
                f"{storage_host}/{image}"
            )
            fenced = observer.platform.fleet_view(consistency="replica").model
            assert fenced.exists(f"{vm_host}/torn")
            assert fenced.exists(f"{storage_host}/{image}")
            replica = observer.platform.read_proxy.replicas()[lagging]
            assert replica.stats["early_applies"] == 1

    def test_fenced_view_stays_atomic_through_the_whole_protocol(self):
        """Sweep: a fenced view taken after every single step of the 2PC
        protocol contains both halves or neither, and converges to both."""
        writer, observer = _fleet()
        with writer.platform, observer.platform:
            vm_host, storage_host = _cross_pair(writer)
            platform = writer.platform
            router = platform.shard_router
            shards = sorted({router.shard_of(vm_host), router.shard_of(storage_host)})
            handle = platform.submit(
                "spawnVM",
                {
                    "vm_name": "swept",
                    "image_template": "template-small",
                    "storage_host": storage_host,
                    "vm_host": vm_host,
                    "mem_mb": 256,
                },
                wait=False,
            )
            image = disk_image_name("swept")
            for _ in range(10_000):
                progressed = False
                for shard in shards:
                    progressed |= _step_shard(platform, shard)
                    view = observer.platform.fleet_view(consistency="replica").model
                    vm_visible = view.exists(f"{vm_host}/swept")
                    image_visible = view.exists(f"{storage_host}/{image}")
                    assert vm_visible == image_visible, (
                        f"torn mid-protocol: vm={vm_visible} image={image_visible}"
                    )
                txn = platform.load_transaction(handle.txid)
                if txn is not None and txn.is_terminal and not progressed:
                    break
            platform.run_until_idle()
            assert handle.wait(timeout=30.0).state is TransactionState.COMMITTED
            final = observer.platform.fleet_view(consistency="replica").model
            assert final.exists(f"{vm_host}/swept")
            assert final.exists(f"{storage_host}/{image}")


class TestFenceCore:
    """The fence core over raw replicas of a ShardedCluster — the same
    deterministic harness the fault matrix uses."""

    def _replicas(self, cluster):
        out = {}
        for shard in cluster.shard_ids:
            store = TropicStore(
                KVStore(cluster.client, f"/tropic/store/shard-{shard}"),
                shard_id=shard,
                num_shards=cluster.num_shards,
            )
            out[shard] = ReadReplica(
                store, cluster.schema, cluster.procedures, shard_id=shard
            )
            out[shard].refresh()
        return out

    def _torn_cluster(self):
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="2pc")
        txn, coordinator, lagging = self._drive_torn(cluster)
        return cluster, txn, coordinator, lagging

    def _drive_torn(self, cluster):
        """Drive a cross-shard commit on a 2-shard cluster until the
        decision is durable and the coordinator applied, withholding the
        participant's decision processing."""
        txn = cluster.submit_cross_spawn("vm-torn")
        coordinator = txn.coordinator
        lagging = next(s for s in txn.participants if s != coordinator)
        for _ in range(10_000):
            if cluster.twopc.decision(txn.txid, coordinator) == DECISION_COMMIT:
                break
            cluster.controllers[lagging].step()
            cluster.workers[lagging].step()
            cluster.controllers[coordinator].step()
            cluster.workers[coordinator].step()
        else:
            raise AssertionError("no commit decision")
        for _ in range(10_000):
            doc = cluster.stores[coordinator].load_transaction(txn.txid)
            if doc is not None and doc.state is TransactionState.COMMITTED:
                break
            cluster.controllers[coordinator].step()
            cluster.workers[coordinator].step()
        assert txn.txid not in cluster.stores[lagging].applied_txids()
        return txn, coordinator, lagging

    def test_fence_advances_the_lagging_participant(self):
        cluster, txn, coordinator, lagging = self._torn_cluster()
        replicas = self._replicas(cluster)
        assert replicas[coordinator].has_applied(txn.txid)
        assert not replicas[lagging].has_applied(txn.txid)
        result = fence_replica_sources(replicas, set(), cluster.twopc)
        assert result.advanced >= 1
        assert not result.degraded
        assert replicas[lagging].has_applied(txn.txid)
        # Both slices are now visible in the replica models.
        vm_host = txn.args["vm_host"]
        storage_host = txn.args["storage_host"]
        image = disk_image_name("vm-torn")
        vm_shard = cluster.router.shard_of(vm_host)
        img_shard = cluster.router.shard_of(storage_host)
        assert replicas[vm_shard].model(refresh=False).exists(f"{vm_host}/vm-torn")
        assert replicas[img_shard].model(refresh=False).exists(
            f"{storage_host}/{image}"
        )

    def test_early_application_is_not_applied_twice(self):
        """The fence applies the prepared slice ahead of the applied log;
        when the participant's own entry later arrives, the replica must
        skip re-application and only advance its watermark."""
        cluster, txn, coordinator, lagging = self._torn_cluster()
        replicas = self._replicas(cluster)
        fence_replica_sources(replicas, set(), cluster.twopc)
        assert replicas[lagging].stats["early_applies"] == 1
        cluster.drain()
        replicas[lagging].refresh()
        assert replicas[lagging].applied_txn == cluster.stores[
            lagging
        ].applied_seq()
        # Model equality with the leader proves no duplicate application.
        assert (
            replicas[lagging].model(refresh=False).to_dict()
            == cluster.model(lagging).to_dict()
        )

    def test_fence_closes_barriers_once_confirmed(self):
        cluster, txn, coordinator, lagging = self._torn_cluster()
        replicas = self._replicas(cluster)
        fence_replica_sources(replicas, set(), cluster.twopc)
        cluster.drain()
        for replica in replicas.values():
            replica.refresh()
        fence_replica_sources(replicas, set(), cluster.twopc)
        assert all(not r.open_barriers() for r in replicas.values())

    def test_fence_rewinds_when_the_decision_is_unreadable(self):
        """When the lagging shard cannot be advanced (decision log
        unreachable), the fence atomically excludes the transaction by
        rewinding the advanced replica to its pre-barrier snapshot."""
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="2pc")
        # Live-tailing replicas: catch-up opens *rewindable* barriers with
        # a true pre-commit fork (a replica bootstrapped after the fact
        # could only degrade here).
        replicas = self._replicas(cluster)
        txn, coordinator, lagging = self._drive_torn(cluster)
        for replica in replicas.values():
            replica.refresh(force=True)
        unreachable = TwoPCLog(KVStore(cluster.client, TWOPC_PREFIX + "-void"))
        result = fence_replica_sources(replicas, set(), unreachable)
        assert coordinator in result.rewinds
        model, applied = result.rewinds[coordinator]
        vm_host = txn.args["vm_host"]
        storage_host = txn.args["storage_host"]
        vm_shard = cluster.router.shard_of(vm_host)
        img_shard = cluster.router.shard_of(storage_host)
        vm_model = model if vm_shard == coordinator else replicas[vm_shard].model(refresh=False)
        img_model = model if img_shard == coordinator else replicas[img_shard].model(refresh=False)
        assert not vm_model.exists(f"{vm_host}/vm-torn")
        assert not img_model.exists(f"{storage_host}/{disk_image_name('vm-torn')}")
        assert applied == replicas[coordinator].applied_txn - 1

    def test_quiesced_fence_is_a_noop(self):
        cluster = ShardedCluster(num_shards=2, cross_shard_policy="2pc")
        cluster.submit_cross_spawn("vm-quiet")
        cluster.drain()
        replicas = self._replicas(cluster)
        result = fence_replica_sources(replicas, set(), cluster.twopc)
        assert result.advanced == 0
        assert not result.rewinds and not result.degraded
