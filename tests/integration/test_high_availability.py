"""Integration tests for the threaded runtime and controller failover (§6.4),
including per-shard failover of the sharded controller (PR 2)."""

import time

import pytest

from repro.core.txn import TransactionState
from repro.tcloud.service import build_tcloud


def _spawn_on(cloud, vm_name, host_index, wait=True, timeout=30.0, mem_mb=512):
    """Spawn pinned to a compute host and its paired storage host (always
    single-shard under the TCloud co-location scheme)."""
    return cloud.spawn_vm(
        vm_name,
        mem_mb=mem_mb,
        vm_host=cloud.inventory.vm_hosts[host_index],
        storage_host=cloud.inventory.storage_host_for(host_index),
        wait=wait,
        timeout=timeout,
    )


@pytest.fixture
def threaded_cloud(threaded_config):
    cloud = build_tcloud(num_vm_hosts=6, num_storage_hosts=2, host_mem_mb=8192,
                         config=threaded_config, threaded=True)
    cloud.platform.start()
    # Give the replicas a moment to elect a leader.
    deadline = time.time() + 5.0
    while time.time() < deadline and cloud.platform.leader_runner() is None:
        time.sleep(0.02)
    yield cloud
    cloud.platform.stop()


class TestThreadedRuntime:
    def test_spawn_on_threaded_runtime(self, threaded_cloud):
        txn = threaded_cloud.spawn_vm("t1", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED
        assert threaded_cloud.find_vm("t1") is not None

    def test_exactly_one_leader(self, threaded_cloud):
        runners = threaded_cloud.platform._controller_runners
        time.sleep(0.2)
        leaders = [r for r in runners if r.is_alive() and r.is_leader]
        assert len(leaders) == 1

    def test_concurrent_submissions_all_terminal(self, threaded_cloud):
        handles = [threaded_cloud.spawn_vm(f"batch{i}", mem_mb=512, wait=False)
                   for i in range(12)]
        results = [handle.wait(timeout=60.0) for handle in handles]
        assert all(txn.is_terminal for txn in results)
        committed = [txn for txn in results if txn.state is TransactionState.COMMITTED]
        assert len(committed) >= 10  # a couple may abort on placement races

    def test_controller_busy_time_grows_under_load(self, threaded_cloud):
        before = threaded_cloud.platform.controller_busy_seconds()
        for index in range(5):
            threaded_cloud.spawn_vm(f"busy{index}", mem_mb=256, timeout=30.0)
        assert threaded_cloud.platform.controller_busy_seconds() > before


class TestFailover:
    def test_no_submitted_transaction_lost_across_failover(self, threaded_cloud):
        platform = threaded_cloud.platform
        # Mix of already-submitted work and work submitted during recovery.
        before = [threaded_cloud.spawn_vm(f"pre{i}", mem_mb=512, wait=False) for i in range(6)]
        killed = platform.kill_leader()
        assert killed is not None
        after = [threaded_cloud.spawn_vm(f"post{i}", mem_mb=512, wait=False) for i in range(4)]
        results = [handle.wait(timeout=60.0) for handle in before + after]
        assert all(txn.is_terminal for txn in results)
        assert sum(txn.state is TransactionState.COMMITTED for txn in results) >= 8
        assert len(platform.live_controller_names()) == 2

    def test_new_leader_elected_within_session_timeout_margin(self, threaded_cloud):
        platform = threaded_cloud.platform
        config = platform.config
        old = platform.kill_leader()
        assert old is not None
        start = time.time()
        deadline = start + 20 * config.session_timeout + 5.0
        new_runner = None
        while time.time() < deadline:
            runner = platform.leader_runner()
            if runner is not None and runner.controller.name != old and runner.controller.recovered:
                new_runner = runner
                break
            time.sleep(0.01)
        assert new_runner is not None, "no follower took over"
        # The new leader serves transactions.
        txn = threaded_cloud.spawn_vm("after-failover", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED

    def test_survives_two_failovers(self, threaded_cloud):
        platform = threaded_cloud.platform
        assert platform.kill_leader() is not None
        txn1 = threaded_cloud.spawn_vm("ha1", timeout=60.0)
        assert platform.kill_leader() is not None
        txn2 = threaded_cloud.spawn_vm("ha2", timeout=60.0)
        assert txn1.state is TransactionState.COMMITTED
        assert txn2.state is TransactionState.COMMITTED
        assert len(platform.live_controller_names()) == 1


@pytest.fixture
def sharded_cloud(threaded_config):
    """A 2-shard threaded deployment: per-shard elections, queues, stores."""
    config = threaded_config.with_overrides(num_shards=2, num_controllers=2)
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=8192,
                         config=config, threaded=True)
    cloud.platform.start()
    deadline = time.time() + 5.0
    while time.time() < deadline and any(
        cloud.platform.leader_runner(shard) is None for shard in (0, 1)
    ):
        time.sleep(0.02)
    yield cloud
    cloud.platform.stop()


class TestShardedFailover:
    def test_each_shard_elects_its_own_leader(self, sharded_cloud):
        platform = sharded_cloud.platform
        for shard in (0, 1):
            runner = platform.leader_runner(shard)
            assert runner is not None
            assert runner.shard == shard

    def test_shard_failover_does_not_disturb_the_other_shard(self, sharded_cloud):
        platform = sharded_cloud.platform
        # Work on both shards, then kill shard 0's leader mid-stream.
        # Hosts 0-3 pair with storageHost0 (shard 0); hosts 4-7 with
        # storageHost1 (shard 1).
        before = [_spawn_on(sharded_cloud, f"pre{i}", host_index=i, wait=False)
                  for i in range(8)]
        killed = platform.kill_leader(shard=0)
        assert killed is not None
        after = [_spawn_on(sharded_cloud, f"post{i}", host_index=i, wait=False)
                 for i in range(8)]
        results = [handle.wait(timeout=60.0) for handle in before + after]
        assert all(txn.is_terminal for txn in results)
        committed = sum(txn.state is TransactionState.COMMITTED for txn in results)
        assert committed == len(results), [t.error for t in results]
        # Shard 0 failed over to its follower; shard 1 kept its replicas.
        assert len(platform.live_controller_names(shard=0)) == 1
        assert len(platform.live_controller_names(shard=1)) == 2
        # Both shards still serve new work after the failover.
        assert _spawn_on(sharded_cloud, "tail0", 0, timeout=30.0).state \
            is TransactionState.COMMITTED
        assert _spawn_on(sharded_cloud, "tail1", 4, timeout=30.0).state \
            is TransactionState.COMMITTED

    def test_sharded_recovery_replays_only_the_shards_own_log(self, sharded_cloud):
        platform = sharded_cloud.platform
        for index in range(4):
            _spawn_on(sharded_cloud, f"seed{index}", host_index=index, timeout=30.0)
        _spawn_on(sharded_cloud, "other", host_index=4, timeout=30.0)
        platform.kill_leader(shard=0)
        deadline = time.time() + 10.0
        runner = None
        while time.time() < deadline:
            runner = platform.leader_runner(shard=0)
            if runner is not None and runner.controller.recovered:
                break
            time.sleep(0.02)
        assert runner is not None and runner.controller.recovered
        leader = runner.controller
        # The new shard-0 leader recovered shard 0's transactions only.
        recovered_txids = set(leader.store.transaction_ids())
        for txid in recovered_txids:
            txn = leader.store.load_transaction(txid)
            assert platform.shard_router.shard_of(txn.args["vm_host"]) == 0
        # Its model still serves shard-0 placements.
        assert _spawn_on(sharded_cloud, "after", 1, timeout=30.0).state \
            is TransactionState.COMMITTED


class TestCoordinationFaults:
    def test_single_coordination_server_crash_is_transparent(self, threaded_cloud):
        platform = threaded_cloud.platform
        platform.ensemble.crash_server(2)
        txn = threaded_cloud.spawn_vm("quorum-ok", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED
        platform.ensemble.restart_server(2)
        txn = threaded_cloud.spawn_vm("after-restart", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED


@pytest.fixture
def twopc_cloud(threaded_config):
    """A 2-shard threaded deployment running cross-shard 2PC."""
    config = threaded_config.with_overrides(
        num_shards=2, num_controllers=2, cross_shard_policy="2pc"
    )
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=8192,
                         config=config, threaded=True)
    cloud.platform.start()
    deadline = time.time() + 5.0
    while time.time() < deadline and any(
        cloud.platform.leader_runner(shard) is None for shard in (0, 1)
    ):
        time.sleep(0.02)
    yield cloud
    cloud.platform.stop()


def _cross_spawn(cloud, vm_name, host_index=0, wait=True, timeout=60.0):
    """Spawn whose VM and disk image live on hosts owned by different
    shards (cross-shard by construction)."""
    platform = cloud.platform
    vm_host = cloud.inventory.vm_hosts[host_index]
    home = platform.shard_router.shard_of(vm_host)
    foreign = next(h for h in cloud.inventory.storage_hosts
                   if platform.shard_router.shard_of(h) != home)
    return cloud.spawn_vm(vm_name, mem_mb=512, vm_host=vm_host,
                          storage_host=foreign, wait=wait, timeout=timeout)


class TestTwoPCFailover:
    """Coordinator-shard failover mid-protocol (threaded runtime)."""

    def test_cross_shard_commit_on_threaded_runtime(self, twopc_cloud):
        txn = _cross_spawn(twopc_cloud, "xvm")
        assert txn.state is TransactionState.COMMITTED
        assert txn.is_cross_shard
        # Both owner shards observe their halves of the transaction.
        platform = twopc_cloud.platform
        storage = txn.args["storage_host"]
        owner = platform.shard_router.shard_of(storage)
        deadline = time.time() + 10.0
        while time.time() < deadline:
            if platform.leader(owner).model.exists(f"{storage}/xvm-disk"):
                break
            time.sleep(0.02)
        assert platform.leader(owner).model.exists(f"{storage}/xvm-disk")
        assert platform.model_view().exists(f"{txn.args['vm_host']}/xvm")

    def test_coordinator_failover_mid_protocol(self, twopc_cloud):
        """Kill the coordinator shard's leader while cross-shard
        transactions are in flight: every transaction must reach a
        terminal state, and committed ones must be atomic across shards."""
        platform = twopc_cloud.platform
        handles = []
        # Mix of single-shard and cross-shard work in flight.
        for index in range(4):
            handles.append(_spawn_on(twopc_cloud, f"s{index}", host_index=index,
                                     wait=False))
        cross = [_cross_spawn(twopc_cloud, f"x{index}", host_index=index,
                              wait=False) for index in range(3)]
        # The coordinator of every cross-shard txn is the lowest involved
        # shard; killing shard 0's leader hits it mid-protocol.
        assert platform.kill_leader(shard=0) is not None
        results = [h.wait(timeout=60.0) for h in handles + cross]
        assert all(txn.is_terminal for txn in results)
        for txn in results[len(handles):]:
            vm_name = txn.args["vm_name"]
            vm_host, storage = txn.args["vm_host"], txn.args["storage_host"]
            vm_owner = platform.shard_router.shard_of(vm_host)
            st_owner = platform.shard_router.shard_of(storage)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                vm_there = platform.leader(vm_owner).model.exists(f"{vm_host}/{vm_name}")
                img_there = platform.leader(st_owner).model.exists(
                    f"{storage}/{vm_name}-disk")
                if vm_there == img_there:
                    break
                time.sleep(0.02)
            assert vm_there == img_there, f"{txn.txid} half-applied after failover"
            if txn.state is TransactionState.COMMITTED:
                assert vm_there
        # The fleet keeps serving both shard-local and cross-shard work.
        assert _spawn_on(twopc_cloud, "tail", 1, timeout=30.0).state \
            is TransactionState.COMMITTED
        assert _cross_spawn(twopc_cloud, "xtail", 1, timeout=60.0).state \
            in (TransactionState.COMMITTED, TransactionState.ABORTED)
