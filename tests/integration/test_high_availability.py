"""Integration tests for the threaded runtime and controller failover (§6.4)."""

import time

import pytest

from repro.core.txn import TransactionState
from repro.tcloud.service import build_tcloud


@pytest.fixture
def threaded_cloud(threaded_config):
    cloud = build_tcloud(num_vm_hosts=6, num_storage_hosts=2, host_mem_mb=8192,
                         config=threaded_config, threaded=True)
    cloud.platform.start()
    # Give the replicas a moment to elect a leader.
    deadline = time.time() + 5.0
    while time.time() < deadline and cloud.platform.leader_runner() is None:
        time.sleep(0.02)
    yield cloud
    cloud.platform.stop()


class TestThreadedRuntime:
    def test_spawn_on_threaded_runtime(self, threaded_cloud):
        txn = threaded_cloud.spawn_vm("t1", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED
        assert threaded_cloud.find_vm("t1") is not None

    def test_exactly_one_leader(self, threaded_cloud):
        runners = threaded_cloud.platform._controller_runners
        time.sleep(0.2)
        leaders = [r for r in runners if r.is_alive() and r.is_leader]
        assert len(leaders) == 1

    def test_concurrent_submissions_all_terminal(self, threaded_cloud):
        handles = [threaded_cloud.spawn_vm(f"batch{i}", mem_mb=512, wait=False)
                   for i in range(12)]
        results = [handle.wait(timeout=60.0) for handle in handles]
        assert all(txn.is_terminal for txn in results)
        committed = [txn for txn in results if txn.state is TransactionState.COMMITTED]
        assert len(committed) >= 10  # a couple may abort on placement races

    def test_controller_busy_time_grows_under_load(self, threaded_cloud):
        before = threaded_cloud.platform.controller_busy_seconds()
        for index in range(5):
            threaded_cloud.spawn_vm(f"busy{index}", mem_mb=256, timeout=30.0)
        assert threaded_cloud.platform.controller_busy_seconds() > before


class TestFailover:
    def test_no_submitted_transaction_lost_across_failover(self, threaded_cloud):
        platform = threaded_cloud.platform
        # Mix of already-submitted work and work submitted during recovery.
        before = [threaded_cloud.spawn_vm(f"pre{i}", mem_mb=512, wait=False) for i in range(6)]
        killed = platform.kill_leader()
        assert killed is not None
        after = [threaded_cloud.spawn_vm(f"post{i}", mem_mb=512, wait=False) for i in range(4)]
        results = [handle.wait(timeout=60.0) for handle in before + after]
        assert all(txn.is_terminal for txn in results)
        assert sum(txn.state is TransactionState.COMMITTED for txn in results) >= 8
        assert len(platform.live_controller_names()) == 2

    def test_new_leader_elected_within_session_timeout_margin(self, threaded_cloud):
        platform = threaded_cloud.platform
        config = platform.config
        old = platform.kill_leader()
        assert old is not None
        start = time.time()
        deadline = start + 20 * config.session_timeout + 5.0
        new_runner = None
        while time.time() < deadline:
            runner = platform.leader_runner()
            if runner is not None and runner.controller.name != old and runner.controller.recovered:
                new_runner = runner
                break
            time.sleep(0.01)
        assert new_runner is not None, "no follower took over"
        # The new leader serves transactions.
        txn = threaded_cloud.spawn_vm("after-failover", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED

    def test_survives_two_failovers(self, threaded_cloud):
        platform = threaded_cloud.platform
        assert platform.kill_leader() is not None
        txn1 = threaded_cloud.spawn_vm("ha1", timeout=60.0)
        assert platform.kill_leader() is not None
        txn2 = threaded_cloud.spawn_vm("ha2", timeout=60.0)
        assert txn1.state is TransactionState.COMMITTED
        assert txn2.state is TransactionState.COMMITTED
        assert len(platform.live_controller_names()) == 1


class TestCoordinationFaults:
    def test_single_coordination_server_crash_is_transparent(self, threaded_cloud):
        platform = threaded_cloud.platform
        platform.ensemble.crash_server(2)
        txn = threaded_cloud.spawn_vm("quorum-ok", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED
        platform.ensemble.restart_server(2)
        txn = threaded_cloud.spawn_vm("after-restart", timeout=30.0)
        assert txn.state is TransactionState.COMMITTED
