"""Integration tests for resource-volatility handling: repair, reload,
TERM/KILL signals and the stalled-transaction watchdog (§4)."""

import threading
import time

import pytest

from repro.core.txn import TransactionState
from repro.tcloud.service import build_tcloud


@pytest.fixture
def cloud():
    cloud = build_tcloud(num_vm_hosts=3, num_storage_hosts=2, host_mem_mb=4096)
    cloud.platform.start()
    yield cloud
    cloud.platform.stop()


class TestRepairScenarios:
    def test_host_reboot_repaired_end_to_end(self, cloud):
        for index in range(3):
            cloud.spawn_vm(f"svc{index}", vm_host="/vmRoot/vmHost0", mem_mb=512)
        host = cloud.inventory.registry.device_at("/vmRoot/vmHost0")
        host.power_cycle()  # all VMs powered off out of band
        report = cloud.platform.repair("/vmRoot/vmHost0")
        assert report.clean
        assert {a for _, a, _ in report.actions_executed} == {"startVM"}
        assert all(host.vm_state(f"svc{i}") == "running" for i in range(3))
        assert cloud.platform.reconciler().detect().is_empty

    def test_transactions_blocked_until_repaired(self, cloud):
        cloud.spawn_vm("vm0", vm_host="/vmRoot/vmHost0", mem_mb=512)
        host = cloud.inventory.registry.device_at("/vmRoot/vmHost0")
        host.power_cycle()
        reconciler = cloud.platform.reconciler()
        reconciler.detect_and_fence("/vmRoot/vmHost0")
        blocked = cloud.spawn_vm("vm1", vm_host="/vmRoot/vmHost0",
                                 storage_host="/storageRoot/storageHost0")
        assert blocked.state is TransactionState.ABORTED
        cloud.platform.repair("/vmRoot/vmHost0")
        unblocked = cloud.spawn_vm("vm1", vm_host="/vmRoot/vmHost0",
                                   storage_host="/storageRoot/storageHost0")
        assert unblocked.state is TransactionState.COMMITTED

    def test_reload_adopts_operator_added_capacity(self, cloud):
        # Operator installs a new template on a storage host out of band.
        storage = cloud.inventory.registry.device_at("/storageRoot/storageHost1")
        storage.add_template("template-huge", size_gb=64.0)
        report = cloud.platform.reload("/storageRoot/storageHost1")
        assert report.applied
        model = cloud.platform.leader().model
        assert model.exists("/storageRoot/storageHost1/template-huge")
        # The new template is immediately usable by transactions.
        txn = cloud.spawn_vm("big", image_template="template-huge",
                             storage_host="/storageRoot/storageHost1")
        assert txn.state is TransactionState.COMMITTED


class TestSignals:
    def test_term_aborts_stalled_transaction_consistently(self, cloud):
        host = cloud.inventory.registry.device_at("/vmRoot/vmHost0")
        host.faults.hang_next("startVM")  # the transaction stalls on the last action
        handle = cloud.spawn_vm("stuck", vm_host="/vmRoot/vmHost0",
                                storage_host="/storageRoot/storageHost0", wait=False)

        stalled = {}

        def drive():
            # The inline runtime blocks inside the hung device call.
            stalled["result"] = cloud.platform.run_until_idle()

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        time.sleep(0.1)
        cloud.platform.send_term(handle.txid)
        host.release_hang()
        driver.join(timeout=10)
        txn = handle.wait(timeout=10)
        assert txn.state is TransactionState.ABORTED
        # Graceful TERM keeps the layers consistent.
        assert cloud.platform.reconciler().detect().is_empty
        assert cloud.find_vm("stuck") is None

    def test_kill_aborts_logical_layer_and_repair_reconciles(self, cloud):
        host = cloud.inventory.registry.device_at("/vmRoot/vmHost1")
        host.faults.hang_next("startVM")
        handle = cloud.spawn_vm("zombie", vm_host="/vmRoot/vmHost1",
                                storage_host="/storageRoot/storageHost1", wait=False)
        driver = threading.Thread(target=cloud.platform.run_until_idle, daemon=True)
        driver.start()
        time.sleep(0.1)
        cloud.platform.send_kill(handle.txid)
        txn = handle.refresh()
        assert txn.state is TransactionState.ABORTED
        # The physical layer is left behind (partially provisioned) and fenced.
        leader = cloud.platform.leader()
        assert leader.model.is_fenced("/vmRoot/vmHost1")
        host.release_hang()
        driver.join(timeout=10)
        # Repair removes the orphaned physical VM and lifts the fence.
        report = cloud.platform.repair("/vmRoot/vmHost1")
        assert host.vm_state("zombie") is None or not report.unrepairable
        assert not leader.model.is_fenced("/vmRoot/vmHost1")

    def test_terminate_stalled_watchdog(self, cloud):
        host = cloud.inventory.registry.device_at("/vmRoot/vmHost2")
        host.faults.hang_next("startVM")
        handle = cloud.spawn_vm("laggard", vm_host="/vmRoot/vmHost2",
                                storage_host="/storageRoot/storageHost0", wait=False)
        driver = threading.Thread(target=cloud.platform.run_until_idle, daemon=True)
        driver.start()
        time.sleep(0.15)
        terminated = cloud.platform.terminate_stalled(txn_timeout=0.05)
        assert handle.txid in terminated
        host.release_hang()
        driver.join(timeout=10)
        assert handle.wait(timeout=10).state is TransactionState.ABORTED
