"""Integration test reproducing Table 1: the execution log of spawnVM."""

from repro.core.txn import TransactionState

#: The paper's Table 1, modulo host/arg naming: (path-prefix, action, undo action).
TABLE1_ROWS = [
    ("/storageRoot/", "cloneImage", "removeImage"),
    ("/storageRoot/", "exportImage", "unexportImage"),
    ("/vmRoot/", "importImage", "unimportImage"),
    ("/vmRoot/", "createVM", "removeVM"),
    ("/vmRoot/", "startVM", "stopVM"),
]


class TestTable1:
    def test_spawn_execution_log_matches_table1(self, inline_cloud):
        txn = inline_cloud.spawn_vm("vm1", image_template="template-small",
                                    vm_host="/vmRoot/vmHost0",
                                    storage_host="/storageRoot/storageHost0")
        assert txn.state is TransactionState.COMMITTED
        assert len(txn.log) == len(TABLE1_ROWS)
        for record, (prefix, action, undo) in zip(txn.log, TABLE1_ROWS):
            assert record.path.startswith(prefix)
            assert record.action == action
            assert record.undo_action == undo

    def test_log_args_reference_image_and_vm(self, inline_cloud):
        txn = inline_cloud.spawn_vm("vm42")
        clone = txn.log[0]
        assert clone.args == ["template-small", "vm42-disk"]
        assert clone.undo_args == ["vm42-disk"]
        create = txn.log[3]
        assert create.args[:2] == ["vm42", "vm42-disk"]
        start = txn.log[4]
        assert start.args == ["vm42"] and start.undo_args == ["vm42"]

    def test_undo_order_restores_initial_state_on_last_step_failure(self, inline_cloud):
        """Failing the 5th action must trigger undo of records 4,3,2,1 (§3.2)."""
        registry = inline_cloud.inventory.registry
        host = registry.device_at("/vmRoot/vmHost1")
        host.faults.fail_next("startVM")
        txn = inline_cloud.spawn_vm("doomed", vm_host="/vmRoot/vmHost1",
                                    storage_host="/storageRoot/storageHost0")
        assert txn.state is TransactionState.ABORTED
        # VM configuration and cloned image are removed everywhere.
        assert host.vm_state("doomed") is None
        assert "doomed-disk" not in host.imported_images
        storage = registry.device_at("/storageRoot/storageHost0")
        assert not storage.has_image("doomed-disk")
        assert inline_cloud.find_vm("doomed") is None
        undo_order = [a for a, _ in host.call_log if a in ("removeVM", "unimportImage")]
        assert undo_order == ["removeVM", "unimportImage"]

    def test_format_table_is_printable(self, inline_cloud):
        txn = inline_cloud.spawn_vm("vmp")
        table = txn.log.format_table()
        assert "cloneImage" in table and "undo action" in table
