"""Runtime lock-order recording vs. the static lock graph.

Enables the recorder, drives a real threaded cluster through a mixed
workload (writes, fleet reads, signals, checkpoints), and asserts every
lock-order edge observed at runtime is present in the statically derived
graph — the analyzer's approximation must over-approximate reality.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.core import load_index
from repro.analysis.lockgraph import build_lock_graph
from repro.analysis.recorder import lock_order_recorder, traced

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def recorder():
    lock_order_recorder.enable()
    lock_order_recorder.reset()
    yield lock_order_recorder
    lock_order_recorder.disable()
    lock_order_recorder.reset()


def test_traced_proxy_records_nesting(recorder):
    import threading

    a = traced(threading.RLock(), "Fix._a")
    b = traced(threading.Lock(), "Fix._b")
    with a:
        with b:
            pass
    with b:
        pass
    edges = recorder.edges()
    assert edges == {("Fix._a", "Fix._b"): 1}
    assert recorder.acquired()["Fix._b"] == 2


def test_traced_is_identity_when_disabled():
    import threading

    lock_order_recorder.disable()
    raw = threading.RLock()
    assert traced(raw, "Fix._raw") is raw


def test_dump_merges_existing_trace(recorder, tmp_path):
    import threading

    a = traced(threading.RLock(), "Fix._a")
    b = traced(threading.Lock(), "Fix._b")
    with a:
        with b:
            pass
    target = tmp_path / "trace.json"
    recorder.dump(target)
    recorder.dump(target)  # second dump merges counts
    data = json.loads(target.read_text(encoding="utf-8"))
    assert data["edges"]["Fix._a -> Fix._b"] == 2


def test_cluster_workload_trace_is_subgraph_of_static_graph(recorder):
    # Locks are wrapped at construction, so the platform must be built
    # *after* the recorder is enabled (the fixture runs first).
    from repro.tcloud.service import build_tcloud
    from repro.workloads.hosting import HostingTraceParams, hosting_trace
    from repro.workloads.loadgen import LoadGenerator

    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=16384)
    cloud.platform.start()
    try:
        trace = hosting_trace(HostingTraceParams(num_operations=20, seed=7))
        result = LoadGenerator(cloud, seed=7).replay_sync(trace)
        assert result.committed > 0
        cloud.platform.model_view()
    finally:
        cloud.platform.stop()

    observed = set(recorder.edges())
    assert observed, "workload recorded no lock-order edges"

    graph = build_lock_graph(load_index(REPO_ROOT / "src" / "repro"))
    static_edges = graph.edge_pairs()
    known = set(graph.nodes)
    missing = {
        (src, dst)
        for src, dst in observed
        if src in known and dst in known and (src, dst) not in static_edges
    }
    assert not missing, (
        f"runtime lock-order edges missing from the static graph: {missing}"
    )
