"""Integration tests for the ACID guarantees of orchestration (§2.2, §3).

Atomicity   — failed orchestrations have no effect in either layer.
Consistency — constraints hold after every committed transaction.
Isolation   — concurrent conflicting orchestrations cannot both commit if
              together they would violate a constraint; non-conflicting
              ones proceed in parallel.
Durability  — committed orchestrations persist on the (mock) devices and
              survive controller loss.
"""

import pytest

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.tcloud.entities import build_schema
from repro.tcloud.service import build_tcloud


@pytest.fixture
def cloud():
    cloud = build_tcloud(num_vm_hosts=3, num_storage_hosts=2, host_mem_mb=2048)
    cloud.platform.start()
    yield cloud
    cloud.platform.stop()


class TestAtomicity:
    @pytest.mark.parametrize("failing_action", ["cloneImage", "importImage", "createVM", "startVM"])
    def test_failure_at_any_step_leaves_no_trace(self, cloud, failing_action):
        registry = cloud.inventory.registry
        device_path = ("/storageRoot/storageHost0" if failing_action == "cloneImage"
                       else "/vmRoot/vmHost0")
        registry.device_at(device_path).faults.fail_next(failing_action)
        txn = cloud.spawn_vm("atom", vm_host="/vmRoot/vmHost0",
                             storage_host="/storageRoot/storageHost0")
        assert txn.state is TransactionState.ABORTED
        assert cloud.find_vm("atom") is None
        assert not registry.device_at("/storageRoot/storageHost0").has_image("atom-disk")
        assert registry.device_at("/vmRoot/vmHost0").vm_state("atom") is None
        # Layers stay consistent after the rollback.
        assert cloud.platform.reconciler().detect().is_empty

    def test_migration_failure_keeps_vm_on_source(self, cloud):
        cloud.spawn_vm("movable", vm_host="/vmRoot/vmHost0")
        registry = cloud.inventory.registry
        registry.device_at("/vmRoot/vmHost1").faults.fail_next("startVM")
        txn = cloud.platform.submit(
            "migrateVM",
            {"vm_name": "movable", "src_host": "/vmRoot/vmHost0",
             "dst_host": "/vmRoot/vmHost1"},
        )
        assert txn.state is TransactionState.ABORTED
        record = cloud.find_vm("movable")
        assert record.host == "/vmRoot/vmHost0"
        assert record.state == "running"
        assert registry.device_at("/vmRoot/vmHost0").vm_state("movable") == "running"
        assert registry.device_at("/vmRoot/vmHost1").vm_state("movable") is None

    def test_undo_failure_yields_failed_state_and_fencing(self, cloud):
        registry = cloud.inventory.registry
        host = registry.device_at("/vmRoot/vmHost0")
        host.faults.fail_next("startVM")    # forces rollback
        host.faults.fail_next("removeVM")   # undo fails -> cross-layer inconsistency
        txn = cloud.spawn_vm("broken", vm_host="/vmRoot/vmHost0",
                             storage_host="/storageRoot/storageHost0")
        assert txn.state is TransactionState.FAILED
        leader = cloud.platform.leader()
        assert leader.model.is_fenced("/vmRoot/vmHost0")
        # Further transactions touching the fenced subtree abort safely.
        blocked = cloud.spawn_vm("after", vm_host="/vmRoot/vmHost0",
                                 storage_host="/storageRoot/storageHost0")
        assert blocked.state is TransactionState.ABORTED
        # Other hosts keep working.
        ok = cloud.spawn_vm("elsewhere", vm_host="/vmRoot/vmHost1",
                            storage_host="/storageRoot/storageHost1")
        assert ok.state is TransactionState.COMMITTED


class TestConsistency:
    def test_constraints_hold_after_every_commit(self, cloud):
        schema = build_schema()
        for index in range(6):
            cloud.spawn_vm(f"c{index}", mem_mb=512)
            violations = schema.check_subtree(cloud.platform.leader().model)
            assert violations == []

    def test_overcommit_rejected_before_touching_devices(self, cloud):
        registry = cloud.inventory.registry
        host = registry.device_at("/vmRoot/vmHost0")
        calls_before = len(host.call_log)
        txn = cloud.spawn_vm("toobig", mem_mb=4096, vm_host="/vmRoot/vmHost0")
        assert txn.state is TransactionState.ABORTED
        assert "capacity" in txn.error
        assert len(host.call_log) == calls_before  # early abort in the logical layer

    def test_sequential_overcommit_caught(self, cloud):
        assert cloud.spawn_vm("a", mem_mb=1024, vm_host="/vmRoot/vmHost0").state \
            is TransactionState.COMMITTED
        assert cloud.spawn_vm("b", mem_mb=1024, vm_host="/vmRoot/vmHost0").state \
            is TransactionState.COMMITTED
        third = cloud.spawn_vm("c", mem_mb=1024, vm_host="/vmRoot/vmHost0")
        assert third.state is TransactionState.ABORTED


class TestIsolation:
    def test_conflicting_spawns_serialise_and_constraint_still_enforced(self):
        cloud = build_tcloud(num_vm_hosts=1, num_storage_hosts=1, host_mem_mb=2048)
        with cloud.platform:
            handles = [
                cloud.spawn_vm(f"iso{i}", mem_mb=1024, vm_host="/vmRoot/vmHost0", wait=False)
                for i in range(3)
            ]
            cloud.platform.run_until_idle()
            results = [h.wait(timeout=10) for h in handles]
            states = sorted(r.state.value for r in results)
            assert states.count("committed") == 2
            assert states.count("aborted") == 1
            # Never more memory committed than the host has.
            util = cloud.host_utilisation()["/vmRoot/vmHost0"]
            assert util["mem_used_mb"] <= 2048

    def test_non_conflicting_spawns_all_commit(self, cloud):
        handles = [
            cloud.spawn_vm(f"par{i}", mem_mb=256, vm_host=f"/vmRoot/vmHost{i}",
                           storage_host=f"/storageRoot/storageHost{i % 2}", wait=False)
            for i in range(3)
        ]
        cloud.platform.run_until_idle()
        assert all(h.wait(10).state is TransactionState.COMMITTED for h in handles)

    def test_deferred_transaction_eventually_commits(self, cloud):
        first = cloud.spawn_vm("d1", vm_host="/vmRoot/vmHost0", wait=False)
        second = cloud.spawn_vm("d2", vm_host="/vmRoot/vmHost0", wait=False)
        cloud.platform.run_until_idle()
        assert first.wait(10).state is TransactionState.COMMITTED
        assert second.wait(10).state is TransactionState.COMMITTED
        stats = cloud.platform.controller_stats()
        assert stats["deferred"] >= 1


class TestDurability:
    def test_committed_state_visible_on_devices_and_after_recovery(self, cloud):
        cloud.spawn_vm("durable", vm_host="/vmRoot/vmHost2")
        registry = cloud.inventory.registry
        assert registry.device_at("/vmRoot/vmHost2").vm_state("durable") == "running"
        # Rebuild controller state purely from the persistent store.
        from repro.core.recovery import recover_state
        from repro.tcloud.procedures import build_procedures

        state = recover_state(cloud.platform.store, build_schema(), build_procedures(),
                              TropicConfig())
        assert state.model.get("/vmRoot/vmHost2/durable")["state"] == "running"
