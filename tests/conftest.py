"""Shared fixtures for the TROPIC reproduction test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Fallback so the tests run even if the package was not installed
# (e.g. a fresh checkout without `pip install -e .`).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.common.config import TropicConfig  # noqa: E402
from repro.coordination.client import CoordinationClient  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.core.constraints import ConstraintEngine  # noqa: E402
from repro.core.simulation import LogicalExecutor  # noqa: E402
from repro.core.txn import Transaction  # noqa: E402
from repro.tcloud.entities import build_schema  # noqa: E402
from repro.tcloud.inventory import build_inventory  # noqa: E402
from repro.tcloud.procedures import build_procedures  # noqa: E402
from repro.tcloud.service import build_tcloud  # noqa: E402
from repro.testing import FaultInjector, ShardedCluster  # noqa: E402


@pytest.fixture
def schema():
    """TCloud model schema (entity types, actions, constraints)."""
    return build_schema()


@pytest.fixture
def procedures():
    """TCloud stored-procedure registry."""
    return build_procedures()


@pytest.fixture
def inventory():
    """A small data centre: 4 compute hosts, 2 storage hosts, 1 router."""
    return build_inventory(num_vm_hosts=4, num_storage_hosts=2, num_routers=1,
                           host_mem_mb=4096)


@pytest.fixture
def model(inventory):
    """The logical data model of the small data centre."""
    return inventory.model


@pytest.fixture
def registry(inventory):
    """The device registry matching the small data centre."""
    return inventory.registry


@pytest.fixture
def executor(model, schema, procedures):
    """Logical executor bound to the small data centre."""
    return LogicalExecutor(model, schema, procedures, ConstraintEngine(schema))


@pytest.fixture
def ensemble():
    """A 3-server coordination ensemble."""
    return CoordinationEnsemble(num_servers=3, default_session_timeout=5.0)


@pytest.fixture
def coord_client(ensemble):
    """A client session on the coordination ensemble."""
    return CoordinationClient(ensemble)


@pytest.fixture
def inline_cloud():
    """A started TCloud on the inline (deterministic) runtime."""
    cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=4096)
    cloud.platform.start()
    yield cloud
    cloud.platform.stop()


@pytest.fixture
def threaded_config():
    """Config for threaded-runtime tests with fast failure detection."""
    return TropicConfig(
        num_controllers=3,
        num_workers=2,
        heartbeat_interval=0.03,
        session_timeout=0.3,
        queue_poll_interval=0.002,
    )


@pytest.fixture
def make_cluster():
    """Factory for deterministic N-shard controller clusters.

    Integration tests use this instead of hand-rolling ensemble + store +
    queue + controller wiring; see :class:`repro.testing.ShardedCluster`
    for crash/replace controls and fault injection.
    """

    def _make(num_shards: int = 1, **kwargs) -> ShardedCluster:
        return ShardedCluster(num_shards=num_shards, **kwargs)

    return _make


@pytest.fixture
def fault_injector():
    """A fresh deterministic fault injector (arm points, count hits)."""
    return FaultInjector()


def spawn_txn(vm_name: str = "vm1", vm_host: str = "/vmRoot/vmHost0",
              storage_host: str = "/storageRoot/storageHost0",
              mem_mb: int = 1024, template: str = "template-small") -> Transaction:
    """Helper constructing a spawnVM transaction object (not yet simulated)."""
    return Transaction(
        procedure="spawnVM",
        args={
            "vm_name": vm_name,
            "image_template": template,
            "storage_host": storage_host,
            "vm_host": vm_host,
            "mem_mb": mem_mb,
        },
    )


@pytest.fixture
def make_spawn_txn():
    return spawn_txn
