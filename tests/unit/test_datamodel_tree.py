"""Unit tests for the data model tree and nodes."""

import pytest

from repro.common.errors import DataModelError, InconsistencyError, UnknownPathError
from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel


@pytest.fixture
def small_model():
    model = DataModel()
    model.create("/vmRoot", "vmRoot")
    model.create("/vmRoot/host1", "vmHost", {"mem_mb": 2048, "hypervisor": "xen"})
    model.create("/vmRoot/host1/vm1", "vm", {"state": "running", "mem_mb": 512})
    model.create("/storageRoot", "storageRoot")
    return model


class TestLookup:
    def test_get_existing(self, small_model):
        node = small_model.get("/vmRoot/host1")
        assert node.entity_type == "vmHost"
        assert node["mem_mb"] == 2048

    def test_get_missing_raises(self, small_model):
        with pytest.raises(UnknownPathError):
            small_model.get("/vmRoot/host2")

    def test_exists(self, small_model):
        assert small_model.exists("/vmRoot/host1/vm1")
        assert not small_model.exists("/vmRoot/host1/vm9")

    def test_get_attr_default(self, small_model):
        assert small_model.get_attr("/vmRoot/host1", "missing", 7) == 7

    def test_children_sorted(self, small_model):
        small_model.create("/vmRoot/host0", "vmHost")
        names = [n.name for n in small_model.children("/vmRoot")]
        assert names == ["host0", "host1"]

    def test_child_paths(self, small_model):
        assert [str(p) for p in small_model.child_paths("/vmRoot")] == ["/vmRoot/host1"]


class TestMutation:
    def test_create_requires_parent(self, small_model):
        with pytest.raises(UnknownPathError):
            small_model.create("/netRoot/router1", "router")

    def test_create_duplicate_rejected(self, small_model):
        with pytest.raises(DataModelError):
            small_model.create("/vmRoot/host1", "vmHost")

    def test_create_root_rejected(self, small_model):
        with pytest.raises(DataModelError):
            small_model.create("/", "root")

    def test_ensure_is_idempotent(self, small_model):
        first = small_model.ensure("/netRoot", "netRoot")
        second = small_model.ensure("/netRoot", "netRoot")
        assert first is second

    def test_delete_leaf(self, small_model):
        small_model.delete("/vmRoot/host1/vm1")
        assert not small_model.exists("/vmRoot/host1/vm1")

    def test_delete_non_empty_requires_recursive(self, small_model):
        with pytest.raises(DataModelError):
            small_model.delete("/vmRoot/host1")
        small_model.delete("/vmRoot/host1", recursive=True)
        assert not small_model.exists("/vmRoot/host1")

    def test_delete_root_rejected(self, small_model):
        with pytest.raises(DataModelError):
            small_model.delete("/")

    def test_set_attrs(self, small_model):
        small_model.set_attrs("/vmRoot/host1", mem_mb=4096)
        assert small_model.get("/vmRoot/host1")["mem_mb"] == 4096

    def test_replace_subtree(self, small_model):
        replacement = Node("host1", "vmHost", {"mem_mb": 1})
        small_model.replace_subtree("/vmRoot/host1", replacement)
        assert small_model.get("/vmRoot/host1")["mem_mb"] == 1
        assert not small_model.exists("/vmRoot/host1/vm1")


class TestTraversal:
    def test_walk_yields_all_nodes(self, small_model):
        paths = {str(path) for path, _ in small_model.walk()}
        assert "/" in paths and "/vmRoot/host1/vm1" in paths
        assert len(paths) == small_model.count()

    def test_find_by_entity_type(self, small_model):
        assert [str(p) for p in small_model.find(entity_type="vm")] == ["/vmRoot/host1/vm1"]

    def test_find_with_predicate(self, small_model):
        running = small_model.find(
            entity_type="vm", predicate=lambda p, n: n.get("state") == "running"
        )
        assert len(running) == 1

    def test_count_by_type(self, small_model):
        assert small_model.count("vmHost") == 1
        assert small_model.count() == 5


class TestFencing:
    def test_mark_and_check(self, small_model):
        small_model.mark_inconsistent("/vmRoot/host1")
        assert small_model.is_fenced("/vmRoot/host1/vm1")
        assert not small_model.is_fenced("/storageRoot")
        with pytest.raises(InconsistencyError):
            small_model.check_not_fenced("/vmRoot/host1/vm1")

    def test_clear(self, small_model):
        small_model.mark_inconsistent("/vmRoot/host1")
        small_model.clear_inconsistent("/vmRoot/host1")
        assert not small_model.is_fenced("/vmRoot/host1/vm1")

    def test_inconsistent_paths_listing(self, small_model):
        small_model.mark_inconsistent("/vmRoot/host1")
        assert [str(p) for p in small_model.inconsistent_paths()] == ["/vmRoot/host1"]

    def test_fencing_missing_path_is_not_fenced(self, small_model):
        assert not small_model.is_fenced("/vmRoot/ghost")


class TestSerialisation:
    def test_roundtrip(self, small_model):
        restored = DataModel.from_dict(small_model.to_dict())
        assert restored.to_dict() == small_model.to_dict()
        assert restored.get("/vmRoot/host1/vm1")["state"] == "running"

    def test_clone_is_independent(self, small_model):
        clone = small_model.clone()
        clone.set_attrs("/vmRoot/host1", mem_mb=1)
        assert small_model.get("/vmRoot/host1")["mem_mb"] == 2048

    def test_clone_preserves_inconsistency_flag(self, small_model):
        small_model.mark_inconsistent("/vmRoot/host1")
        clone = small_model.clone()
        assert clone.is_fenced("/vmRoot/host1")

    def test_node_getitem_missing_raises(self, small_model):
        with pytest.raises(DataModelError):
            small_model.get("/vmRoot/host1")["nonexistent"]

    def test_node_path_reconstruction(self, small_model):
        node = small_model.get("/vmRoot/host1/vm1")
        assert str(node.path) == "/vmRoot/host1/vm1"
