"""Unit tests for snapshots and model diffs."""

import pytest

from repro.datamodel.snapshot import diff_models, restore, snapshot
from repro.datamodel.tree import DataModel


@pytest.fixture
def left():
    model = DataModel()
    model.create("/vmRoot", "vmRoot")
    model.create("/vmRoot/host1", "vmHost", {"mem_mb": 2048})
    model.create("/vmRoot/host1/vm1", "vm", {"state": "running"})
    model.create("/vmRoot/host1/vm2", "vm", {"state": "stopped"})
    return model


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self, left):
        restored = restore(snapshot(left))
        assert restored.to_dict() == left.to_dict()

    def test_restored_model_is_independent(self, left):
        restored = restore(snapshot(left))
        restored.set_attrs("/vmRoot/host1", mem_mb=1)
        assert left.get("/vmRoot/host1")["mem_mb"] == 2048


class TestDiff:
    def test_identical_models_have_empty_diff(self, left):
        assert diff_models(left, left.clone()).is_empty

    def test_changed_attribute_detected(self, left):
        right = left.clone()
        right.set_attrs("/vmRoot/host1/vm1", state="stopped")
        diff = diff_models(left, right)
        assert len(diff.changed) == 1
        delta = diff.changed[0]
        assert str(delta.path) == "/vmRoot/host1/vm1"
        assert delta.changed_keys == ["state"]
        assert delta.attrs_left["state"] == "running"
        assert delta.attrs_right["state"] == "stopped"

    def test_added_node_detected(self, left):
        right = left.clone()
        right.create("/vmRoot/host1/vm3", "vm", {"state": "running"})
        diff = diff_models(left, right)
        assert [str(d.path) for d in diff.added] == ["/vmRoot/host1/vm3"]

    def test_removed_node_detected(self, left):
        right = left.clone()
        right.delete("/vmRoot/host1/vm2")
        diff = diff_models(left, right)
        assert [str(d.path) for d in diff.removed] == ["/vmRoot/host1/vm2"]

    def test_diff_restricted_to_subtree(self, left):
        right = left.clone()
        right.create("/storageRoot", "storageRoot")
        diff = diff_models(left, right, "/vmRoot")
        assert diff.is_empty

    def test_diff_missing_subtree_on_one_side(self, left):
        empty = DataModel()
        diff = diff_models(left, empty, "/vmRoot")
        assert len(diff.removed) == 4  # vmRoot + host + 2 VMs

    def test_len_counts_all_deltas(self, left):
        right = left.clone()
        right.set_attrs("/vmRoot/host1/vm1", state="stopped")
        right.create("/vmRoot/host2", "vmHost")
        assert len(diff_models(left, right)) == 2

    def test_entity_type_change_counts_as_changed(self, left):
        right = left.clone()
        right.delete("/vmRoot/host1/vm2")
        right.create("/vmRoot/host1/vm2", "image", {"state": "stopped"})
        diff = diff_models(left, right)
        assert len(diff.changed) == 1
