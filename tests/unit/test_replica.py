"""Unit tests for the per-shard read replica (PR 4 tentpole).

A :class:`~repro.core.replica.ReadReplica` tails one shard's store
namespace: bootstrap from the latest checkpoint, watch-driven catch-up
over the applied (committed-transaction) log, a monotonic ``applied_txn``
watermark, and zero coordination operations while idle.
"""

from __future__ import annotations

from repro.common.config import TropicConfig
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.replica import ReadReplica
from repro.core.txn import TransactionState
from repro.testing import ShardedCluster


def _replica_for(cluster: ShardedCluster, shard: int = 0) -> ReadReplica:
    """A replica over its own store facade (a separate reader, the way a
    foreign process would construct one), tailing ``shard``'s namespace."""
    store = TropicStore(KVStore(cluster.client, f"/tropic/store/shard-{shard}"))
    return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)


def _no_checkpoint_cluster(**kwargs) -> ShardedCluster:
    return ShardedCluster(
        num_shards=1, config=TropicConfig(checkpoint_every=100_000), **kwargs
    )


class TestBootstrap:
    def test_bootstrap_equals_leader_model_after_quiesce(self):
        cluster = _no_checkpoint_cluster()
        for i in range(4):
            cluster.submit_spawn(f"vm{i}", host_index=i)
        cluster.drain()
        replica = _replica_for(cluster)
        assert replica.model().to_dict() == cluster.model(0).to_dict()
        assert replica.applied_txn == cluster.stores[0].applied_seq() == 4

    def test_bootstrap_from_checkpoint_plus_log_tail(self):
        """Commits after the checkpoint are replayed on top of it — the
        exact recovery composition (checkpoint + applied-log replay)."""
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("early", host_index=0)
        cluster.drain()
        assert cluster.controllers[0].checkpoint()
        cluster.submit_spawn("late", host_index=1)
        cluster.drain()
        replica = _replica_for(cluster)
        model = replica.model()
        assert model.to_dict() == cluster.model(0).to_dict()
        assert replica.stats["bootstraps"] == 1

    def test_empty_namespace_bootstraps_empty(self):
        """A replica of a shard whose host process never started serves an
        empty placeholder model at watermark 0 and reports
        ``has_checkpoint=False`` so consumers (the ReadProxy merge) fall
        back to their bootstrap-frozen copy instead of trusting it."""
        cluster = _no_checkpoint_cluster()
        store = TropicStore(KVStore(cluster.client, "/tropic/store/shard-9"))
        replica = ReadReplica(store, cluster.schema, cluster.procedures, shard_id=9)
        assert replica.model().count() >= 1  # bare root only
        assert replica.applied_txn == 0
        assert not replica.has_checkpoint
        # ... and flips to a real source once the namespace is bootstrapped.
        store.save_checkpoint(cluster.inventory.model, 0)
        assert replica.refresh()
        assert replica.has_checkpoint


class TestCatchUp:
    def test_watch_driven_catch_up(self):
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("first", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        assert replica.model().exists(f"{cluster.inventory.vm_hosts[0]}/first")
        watermark = replica.applied_txn
        # New commits fire the armed applied-log watch; the next refresh
        # applies exactly the tail.
        cluster.submit_spawn("second", host_index=1)
        cluster.drain()
        assert replica.refresh()
        assert replica.applied_txn == watermark + 1
        assert replica.model().exists(f"{cluster.inventory.vm_hosts[1]}/second")
        assert replica.stats["bootstraps"] == 1  # tail applied, not rebuilt
        assert replica.stats["catchup_batches"] == 1

    def test_idle_replica_issues_zero_coordination_ops(self):
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("vm", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        replica.model()  # bootstrap + arm watches
        ops_before = cluster.ensemble.op_count
        for _ in range(50):
            replica.model()
        assert cluster.ensemble.op_count == ops_before
        assert replica.stats["refreshes_skipped"] == 50

    def test_rebootstrap_after_checkpoint_truncated_the_gap(self):
        """A replica that missed entries a quiesce-point checkpoint
        truncated re-bootstraps from the checkpoint; the watermark only
        moves forward."""
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("a", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        replica.model()
        before = replica.applied_txn
        # Advance the log while the replica sleeps, checkpoint (truncating
        # the entries it never saw), then advance again.
        cluster.submit_spawn("b", host_index=1)
        cluster.drain()
        assert cluster.controllers[0].checkpoint()
        cluster.submit_spawn("c", host_index=2)
        cluster.drain()
        assert replica.refresh()
        assert replica.applied_txn == cluster.stores[0].applied_seq()
        assert replica.applied_txn > before
        assert replica.stats["bootstraps"] == 2  # gap forced a rebuild
        assert replica.model().to_dict() == cluster.model(0).to_dict()

    def test_truncation_without_new_commits_is_detected(self):
        """Checkpoint + truncation with no further commits: the applied
        prefix is empty but applied_seq moved past the watermark — the
        replica must re-bootstrap, not conclude it is current."""
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("a", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        replica.model()
        cluster.submit_spawn("b", host_index=1)
        cluster.drain()
        assert cluster.controllers[0].checkpoint()
        assert replica.refresh()
        assert replica.model().to_dict() == cluster.model(0).to_dict()

    def test_repeated_catchups_do_not_accumulate_watch_registrations(self):
        """Each catch-up fires (and re-arms) the applied-log watch but the
        checkpoint/meta watch stays armed; re-registering it every refresh
        would leak one ensemble watcher entry per refresh until the next
        checkpoint finally fires them all."""
        cluster = _no_checkpoint_cluster()
        replica = _replica_for(cluster)
        replica.model()
        for i in range(8):
            cluster.submit_spawn(f"w{i}", host_index=i % 4)
            cluster.drain()
            assert replica.refresh()
        meta_path = "/tropic/store/shard-0/checkpoint/meta"
        registered = len(cluster.ensemble._data_watches.get(meta_path, []))
        assert registered <= 1, f"{registered} stacked checkpoint/meta watchers"

    def test_lag_counts_unapplied_commits(self):
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("a", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        replica.model()
        assert replica.lag() == 0
        cluster.submit_spawn("b", host_index=1)
        cluster.drain()
        assert replica.lag() == 1
        replica.refresh()
        assert replica.lag() == 0


class TestCommitMarkerDurability:
    def test_acknowledged_commit_is_replica_visible(self):
        """The write path needs no replica-specific markers: the applied-
        log entry rides the same group commit as the terminal document and
        is durable *before* the completion notification, so a replica
        refreshing at ack time always observes the acknowledged commit."""
        cluster = _no_checkpoint_cluster()
        replica = _replica_for(cluster)
        replica.model()
        seen_at_ack: list[bool] = []
        original = cluster.controllers[0].on_complete

        def on_complete(txn):
            if txn.state is TransactionState.COMMITTED:
                replica.refresh()
                seen_at_ack.append(
                    replica.model(refresh=False).exists(
                        f"{txn.args['vm_host']}/{txn.args['vm_name']}"
                    )
                )
            original(txn)

        cluster.controllers[0].on_complete = on_complete
        cluster.submit_spawn("acked", host_index=0)
        cluster.drain()
        assert seen_at_ack == [True]


class TestSnapshot:
    def test_snapshot_is_a_private_clone(self):
        cluster = _no_checkpoint_cluster()
        cluster.submit_spawn("vm", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        clone, watermark = replica.snapshot()
        assert watermark == replica.applied_txn
        clone.set_attrs(cluster.inventory.vm_hosts[0], mem_mb=1)
        assert replica.model(refresh=False).get_attr(
            cluster.inventory.vm_hosts[0], "mem_mb"
        ) != 1
