"""Unit tests for the API gateway: authentication, authorisation, quotas,
namespacing, action dispatch and the audit trail."""

import pytest

from repro.gateway import ApiGateway, AuditLog, TenantDirectory, TenantQuota
from repro.gateway.tenants import (
    AuthenticationError,
    GatewayError,
    Tenant,
)


@pytest.fixture
def gateway(inline_cloud):
    tenants = TenantDirectory()
    tenants.register("acme", "acme-key", quota=TenantQuota(max_vms=3, max_total_mem_mb=4096,
                                                           max_volumes=2, max_volume_gb=64.0))
    tenants.register("globex", "globex-key")
    tenants.register("ops", "ops-key", extra_actions={"MigrateInstance", "DescribeHosts"})
    return ApiGateway(inline_cloud, tenants)


class TestTenantDirectory:
    def test_authenticate_by_api_key(self):
        directory = TenantDirectory()
        directory.register("acme", "secret")
        assert directory.authenticate("secret").name == "acme"

    def test_api_keys_are_not_stored_in_clear(self):
        directory = TenantDirectory()
        tenant = directory.register("acme", "secret")
        assert tenant.api_key != "secret"

    def test_invalid_key_rejected(self):
        directory = TenantDirectory()
        directory.register("acme", "secret")
        with pytest.raises(AuthenticationError):
            directory.authenticate("wrong")

    def test_deactivated_tenant_cannot_authenticate(self):
        directory = TenantDirectory()
        directory.register("acme", "secret")
        directory.deactivate("acme")
        with pytest.raises(AuthenticationError):
            directory.authenticate("secret")
        directory.reactivate("acme")
        assert directory.authenticate("secret").name == "acme"

    def test_duplicate_names_and_keys_rejected(self):
        directory = TenantDirectory()
        directory.register("acme", "secret")
        with pytest.raises(GatewayError):
            directory.register("acme", "other")
        with pytest.raises(GatewayError):
            directory.register("initech", "secret")

    def test_namespace_separator_reserved(self):
        directory = TenantDirectory()
        with pytest.raises(GatewayError):
            directory.register("a--b", "secret")

    def test_qualify_and_unqualify_roundtrip(self):
        tenant = Tenant(name="acme", api_key="x")
        assert tenant.qualify("web") == "acme--web"
        assert tenant.qualify("acme--web") == "acme--web"
        assert tenant.unqualify("acme--web") == "web"
        assert not tenant.owns("globex--web")


class TestAuthenticationAndAuthorisation:
    def test_bad_key_yields_auth_failure(self, gateway):
        response = gateway.handle("nope", "DescribeInstances")
        assert not response.ok
        assert response.code == "AuthFailure"
        assert gateway.audit.denials()[-1].tenant == "<unauthenticated>"

    def test_operator_action_denied_for_regular_tenant(self, gateway):
        gateway.handle("acme-key", "RunInstances", name="web", instance_type="t.small")
        response = gateway.handle("acme-key", "MigrateInstance", name="web")
        assert not response.ok
        assert response.code == "AuthorizationError"

    def test_operator_action_allowed_with_grant(self, gateway):
        gateway.handle("ops-key", "RunInstances", name="infra", instance_type="t.small")
        response = gateway.handle("ops-key", "MigrateInstance", name="infra")
        assert response.ok

    def test_unknown_action_rejected(self, gateway):
        response = gateway.handle("acme-key", "LaunchRocket")
        assert not response.ok
        assert response.code == "GatewayError"

    def test_missing_parameter_is_a_client_error(self, gateway):
        response = gateway.handle("acme-key", "RunInstances")
        assert not response.ok
        assert response.code == "InvalidParameter"


class TestInstanceLifecycle:
    def test_run_describe_stop_terminate(self, gateway, inline_cloud):
        run = gateway.handle("acme-key", "RunInstances", name="web", instance_type="t.small")
        assert run.ok and run.txids
        # The platform sees the namespaced name, the tenant sees the short one.
        assert inline_cloud.find_vm("acme--web") is not None
        described = gateway.handle("acme-key", "DescribeInstances")
        assert described.data["instances"][0]["instance"] == "web"

        stopped = gateway.handle("acme-key", "StopInstances", names=["web"])
        assert stopped.ok
        assert inline_cloud.find_vm("acme--web").state == "stopped"

        gone = gateway.handle("acme-key", "TerminateInstances", names="web")
        assert gone.ok
        assert inline_cloud.find_vm("acme--web") is None

    def test_run_multiple_instances(self, gateway):
        response = gateway.handle("globex-key", "RunInstances", name="worker", count=3,
                                  instance_type="t.small")
        assert response.ok
        assert len(response.data["instances"]) == 3
        described = gateway.handle("globex-key", "DescribeInstances")
        names = {i["instance"] for i in described.data["instances"]}
        assert names == {"worker-0", "worker-1", "worker-2"}

    def test_unknown_instance_type_rejected(self, gateway):
        response = gateway.handle("acme-key", "RunInstances", name="web",
                                  instance_type="t.mega")
        assert not response.ok and response.code == "GatewayError"

    def test_tenant_cannot_touch_foreign_instances(self, gateway):
        gateway.handle("acme-key", "RunInstances", name="web", instance_type="t.small")
        response = gateway.handle("globex-key", "StopInstances", names=["web"])
        assert not response.ok
        assert response.code == "GatewayError"

    def test_snapshot_instance(self, gateway, inline_cloud):
        gateway.handle("acme-key", "RunInstances", name="db", instance_type="t.small")
        response = gateway.handle("acme-key", "CreateSnapshot", name="db",
                                  snapshot_name="db-backup")
        assert response.ok
        model = inline_cloud.platform.leader().model
        assert model.find(predicate=lambda p, n: n.name == "acme--db-backup") != []


class TestQuotas:
    def test_vm_count_quota(self, gateway):
        assert gateway.handle("acme-key", "RunInstances", name="a", count=3,
                              instance_type="t.small").ok
        denied = gateway.handle("acme-key", "RunInstances", name="b",
                                instance_type="t.small")
        assert not denied.ok
        assert denied.code == "QuotaExceeded"

    def test_memory_quota(self, gateway):
        denied = gateway.handle("acme-key", "RunInstances", name="fat", count=2,
                                instance_type="t.xlarge")
        assert not denied.ok
        assert denied.code == "QuotaExceeded"

    def test_volume_quota(self, gateway):
        assert gateway.handle("acme-key", "CreateVolume", name="v1", size_gb=40).ok
        denied = gateway.handle("acme-key", "CreateVolume", name="v2", size_gb=40)
        assert not denied.ok
        assert denied.code == "QuotaExceeded"

    def test_quota_only_counts_own_tenant(self, gateway):
        assert gateway.handle("acme-key", "RunInstances", name="a", count=3,
                              instance_type="t.small").ok
        # globex has the default (larger) quota and is unaffected by acme's usage.
        assert gateway.handle("globex-key", "RunInstances", name="b", count=3,
                              instance_type="t.small").ok

    def test_duplicate_instance_name_denied_by_gateway(self, gateway):
        assert gateway.handle("acme-key", "RunInstances", name="web",
                              instance_type="t.small").ok
        response = gateway.handle("acme-key", "RunInstances", name="web",
                                  instance_type="t.small")
        assert not response.ok
        assert response.code == "GatewayError"
        assert gateway.audit.last().outcome == "denied"

    def test_platform_abort_reported_faithfully_within_quota(self, gateway):
        # Both requests are within quota, but the second snapshot collides
        # with the first inside the logical layer: the transaction aborts and
        # the gateway reports the abort rather than masking it.
        assert gateway.handle("acme-key", "RunInstances", name="db",
                              instance_type="t.small").ok
        assert gateway.handle("acme-key", "CreateSnapshot", name="db",
                              snapshot_name="backup").ok
        response = gateway.handle("acme-key", "CreateSnapshot", name="db",
                                  snapshot_name="backup")
        assert not response.ok
        assert response.code == "OperationAborted"
        assert gateway.audit.last().outcome == "aborted"


class TestVolumes:
    def test_volume_lifecycle(self, gateway, inline_cloud):
        gateway.handle("acme-key", "RunInstances", name="app", instance_type="t.small")
        assert gateway.handle("acme-key", "CreateVolume", name="data", size_gb=10).ok
        assert gateway.handle("acme-key", "AttachVolume", volume="data", instance="app").ok
        described = gateway.handle("acme-key", "DescribeVolumes")
        assert described.data["volumes"] == [
            {"volume": "data", "size_gb": 10.0, "attached_to": "app"}]
        assert gateway.handle("acme-key", "DetachVolume", volume="data", instance="app").ok
        assert gateway.handle("acme-key", "DeleteVolume", name="data").ok
        assert inline_cloud.list_volumes() == []


class TestAuditTrail:
    def test_every_request_is_recorded(self, gateway):
        gateway.handle("acme-key", "RunInstances", name="web", instance_type="t.small")
        gateway.handle("acme-key", "DescribeInstances")
        gateway.handle("bad-key", "DescribeInstances")
        assert len(gateway.audit) == 3
        assert [r.outcome for r in gateway.audit] == ["ok", "ok", "denied"]

    def test_committed_requests_record_their_transaction(self, gateway):
        response = gateway.handle("acme-key", "RunInstances", name="web",
                                  instance_type="t.small")
        record = gateway.audit.entries(tenant="acme", action="RunInstances")[-1]
        assert record.txid == response.txids[0]

    def test_filtering_and_capacity(self):
        log = AuditLog(capacity=2)
        log.record("a", "X", outcome="ok")
        log.record("a", "Y", outcome="denied", error="nope")
        log.record("b", "X", outcome="ok")
        assert len(log) == 2  # oldest dropped
        assert log.entries(tenant="b", action="X")[0].action == "X"
        assert log.denials() and log.denials()[0].tenant == "a"
        assert log.last().tenant == "b"
