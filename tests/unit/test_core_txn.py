"""Unit tests for transactions, execution logs and read/write sets."""

import pytest

from repro.core.txn import (
    ExecutionLog,
    LogRecord,
    ReadWriteSet,
    Transaction,
    TransactionState,
)


class TestTransactionState:
    def test_terminal_states(self):
        assert TransactionState.COMMITTED.is_terminal
        assert TransactionState.ABORTED.is_terminal
        assert TransactionState.FAILED.is_terminal

    def test_non_terminal_states(self):
        for state in (
            TransactionState.INITIALIZED,
            TransactionState.ACCEPTED,
            TransactionState.DEFERRED,
            TransactionState.STARTED,
        ):
            assert not state.is_terminal


class TestExecutionLog:
    def test_append_assigns_sequence_numbers(self):
        log = ExecutionLog()
        log.append("/a", "doX", [1], "undoX", [1])
        log.append("/b", "doY", [], None, [])
        assert [record.seq for record in log] == [1, 2]

    def test_roundtrip(self):
        log = ExecutionLog()
        log.append("/storageRoot/s0", "cloneImage", ["tpl", "img"], "removeImage", ["img"])
        restored = ExecutionLog.from_dict(log.to_dict())
        assert len(restored) == 1
        assert restored[0].action == "cloneImage"
        assert restored[0].undo_args == ["img"]

    def test_as_table_shape(self):
        log = ExecutionLog()
        log.append("/a", "doX", [1, 2], "undoX", [2])
        rows = log.as_table()
        assert rows[0][0] == 1
        assert rows[0][2] == "doX"
        assert rows[0][4] == "undoX"

    def test_format_table_contains_header_and_rows(self):
        log = ExecutionLog()
        log.append("/vmRoot/h", "startVM", ["vm1"], "stopVM", ["vm1"])
        text = log.format_table()
        assert "resource object path" in text
        assert "startVM" in text

    def test_record_roundtrip(self):
        record = LogRecord(3, "/x", "act", ["a"], "undo", ["b"])
        assert LogRecord.from_dict(record.to_dict()) == record


class TestReadWriteSet:
    def test_record_and_serialise(self):
        rwset = ReadWriteSet()
        rwset.record_read("/a")
        rwset.record_write("/b")
        rwset.record_constraint_read("/c")
        restored = ReadWriteSet.from_dict(rwset.to_dict())
        assert restored.reads == {"/a"}
        assert restored.writes == {"/b"}
        assert restored.constraint_reads == {"/c"}

    def test_from_empty_dict(self):
        rwset = ReadWriteSet.from_dict({})
        assert rwset.reads == set() and rwset.writes == set()


class TestTransaction:
    def test_unique_monotonic_ids(self):
        a = Transaction("p")
        b = Transaction("p")
        assert a.txid != b.txid
        assert a.txid < b.txid

    def test_mark_records_timestamp(self):
        txn = Transaction("p")
        txn.mark(TransactionState.ACCEPTED, 12.5)
        assert txn.state is TransactionState.ACCEPTED
        assert txn.timestamps["accepted"] == 12.5

    def test_latency_requires_both_timestamps(self):
        txn = Transaction("p")
        assert txn.latency() is None
        txn.mark(TransactionState.INITIALIZED, 1.0)
        txn.mark(TransactionState.COMMITTED, 3.5)
        assert txn.latency() == pytest.approx(2.5)

    def test_serialisation_roundtrip(self):
        txn = Transaction("spawnVM", {"vm_name": "vm1"})
        txn.log.append("/a", "doX", [1], "undoX", [1])
        txn.rwset.record_write("/a")
        txn.mark(TransactionState.STARTED, 2.0)
        txn.error = None
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.txid == txn.txid
        assert restored.procedure == "spawnVM"
        assert restored.state is TransactionState.STARTED
        assert len(restored.log) == 1
        assert restored.rwset.writes == {"/a"}

    def test_is_terminal(self):
        txn = Transaction("p")
        assert not txn.is_terminal
        txn.mark(TransactionState.ABORTED)
        assert txn.is_terminal

    def test_result_survives_roundtrip(self):
        txn = Transaction("p")
        txn.result = {"vm": "/vmRoot/h0/vm1"}
        assert Transaction.from_dict(txn.to_dict()).result == {"vm": "/vmRoot/h0/vm1"}
