"""Unit tests for physical execution, undo rollback and workers (§3.2)."""

import pytest

from repro.common.config import TropicConfig
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.events import KIND_RESULT, execute_message
from repro.core.persistence import TropicStore
from repro.core.physical import PhysicalExecutor
from repro.core.signals import SignalBoard, TERM
from repro.core.simulation import LogicalExecutor
from repro.core.worker import Worker


@pytest.fixture
def simulated_spawn(executor, make_spawn_txn):
    txn = make_spawn_txn("vm1")
    assert executor.simulate(txn).ok
    return txn


class TestPhysicalExecutor:
    def test_commit_applies_all_actions(self, registry, simulated_spawn):
        executor = PhysicalExecutor(registry)
        outcome = executor.execute(simulated_spawn)
        assert outcome.committed
        assert outcome.executed == 5
        host = registry.device_at("/vmRoot/vmHost0")
        assert host.vm_state("vm1") == "running"
        storage = registry.device_at("/storageRoot/storageHost0")
        assert storage.has_image("vm1-disk")

    def test_failure_triggers_reverse_undo(self, registry, simulated_spawn):
        host = registry.device_at("/vmRoot/vmHost0")
        host.faults.fail_next("startVM")
        executor = PhysicalExecutor(registry)
        outcome = executor.execute(simulated_spawn)
        assert outcome.outcome == "aborted"
        assert outcome.executed == 4
        assert outcome.undone == 4
        # All physical effects rolled back.
        assert host.vm_state("vm1") is None
        assert "vm1-disk" not in host.imported_images
        assert not registry.device_at("/storageRoot/storageHost0").has_image("vm1-disk")

    def test_undo_failure_reports_failed(self, registry, simulated_spawn):
        host = registry.device_at("/vmRoot/vmHost0")
        host.faults.fail_next("startVM")
        host.faults.fail_next("removeVM")  # first undo step fails
        executor = PhysicalExecutor(registry)
        outcome = executor.execute(simulated_spawn)
        assert outcome.outcome == "failed"
        assert outcome.undo_errors
        # Remaining undos were skipped: the image is still on the storage host.
        assert registry.device_at("/storageRoot/storageHost0").has_image("vm1-disk")

    def test_logical_only_mode_skips_devices(self, registry, simulated_spawn):
        config = TropicConfig(logical_only=True)
        executor = PhysicalExecutor(registry, config)
        outcome = executor.execute(simulated_spawn)
        assert outcome.committed
        assert registry.device_at("/vmRoot/vmHost0").vm_state("vm1") is None

    def test_no_registry_behaves_as_logical_only(self, simulated_spawn):
        outcome = PhysicalExecutor(None).execute(simulated_spawn)
        assert outcome.committed

    def test_counters(self, registry, simulated_spawn):
        executor = PhysicalExecutor(registry)
        executor.execute(simulated_spawn)
        assert executor.transactions_executed == 1
        assert executor.actions_executed == 5


class TestTermSignal:
    def test_term_stops_execution_and_rolls_back(self, registry, schema, procedures, model,
                                                 make_spawn_txn):
        ensemble = CoordinationEnsemble(num_servers=1, default_session_timeout=60.0)
        store = TropicStore(KVStore(CoordinationClient(ensemble)))
        signals = SignalBoard(store)
        txn = make_spawn_txn("vm1")
        LogicalExecutor(model, schema, procedures).simulate(txn)
        signals.send(txn.txid, TERM)
        executor = PhysicalExecutor(registry, signals=signals)
        outcome = executor.execute(txn)
        assert outcome.outcome == "aborted"
        assert "TERM" in (outcome.error or "")
        assert outcome.executed == 0


class TestWorker:
    @pytest.fixture
    def worker_env(self, registry):
        ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=60.0)
        client = CoordinationClient(ensemble)
        store = TropicStore(KVStore(client))
        input_queue = DistributedQueue(client, "/queues/inputQ")
        phy_queue = DistributedQueue(client, "/queues/phyQ")
        worker = Worker("w0", store, phy_queue, input_queue, registry)
        return store, input_queue, phy_queue, worker

    def test_worker_reports_commit(self, worker_env, simulated_spawn):
        store, input_queue, phy_queue, worker = worker_env
        store.save_transaction(simulated_spawn)
        phy_queue.put(execute_message(simulated_spawn.txid))
        assert worker.step() is True
        result = input_queue.poll()
        assert result["kind"] == KIND_RESULT
        assert result["outcome"] == "committed"
        assert result["txid"] == simulated_spawn.txid

    def test_worker_reports_abort_with_error(self, worker_env, simulated_spawn, registry):
        store, input_queue, phy_queue, worker = worker_env
        registry.device_at("/vmRoot/vmHost0").faults.fail_next("startVM")
        store.save_transaction(simulated_spawn)
        phy_queue.put(execute_message(simulated_spawn.txid))
        worker.step()
        result = input_queue.poll()
        assert result["outcome"] == "aborted"
        assert "injected fault" in result["error"]
        assert result["failed_path"] == "/vmRoot/vmHost0"

    def test_worker_idle_step_returns_false(self, worker_env):
        _, _, _, worker = worker_env
        assert worker.step() is False

    def test_worker_skips_unknown_transaction(self, worker_env):
        store, input_queue, phy_queue, worker = worker_env
        phy_queue.put(execute_message("txn-does-not-exist"))
        assert worker.step() is True
        assert input_queue.is_empty()

    def test_run_pending_drains_queue(self, worker_env, executor, make_spawn_txn):
        store, input_queue, phy_queue, worker = worker_env
        for index in range(3):
            txn = make_spawn_txn(f"vm{index}", vm_host=f"/vmRoot/vmHost{index}")
            assert executor.simulate(txn).ok
            store.save_transaction(txn)
            phy_queue.put(execute_message(txn.txid))
        processed = worker.run_pending()
        assert processed == 3
        assert phy_queue.is_empty()
        assert input_queue.size() == 3
