"""Unit tests for the discipline checkers: CoW funnel, KV write funnel,
transaction-state machine, transient-swallow (repro.analysis.checkers)."""

from repro.analysis.checkers import (
    RULE_COW,
    RULE_KV,
    RULE_STATE_ASSIGN,
    RULE_STATE_EDGE,
    RULE_SWALLOW,
    RULE_WOUND,
    check_cow_funnel,
    check_kv_writes,
    check_transient_swallowed,
    check_txn_state,
    check_wound_decision_order,
)
from repro.analysis.core import index_from_sources as make_index

# ---------------------------------------------------------------------------
# cow-funnel
# ---------------------------------------------------------------------------

COW_BAD_MUTATOR = '''
class Service:
    def rename(self, model, path):
        node = model.get(path)
        node.add_child(make_node("x"))
'''

COW_BAD_ATTR_WRITE = '''
class Service:
    def retag(self, model, path):
        node = model.get(path)
        node.attrs["tag"] = "hot"
'''

COW_BAD_DICT_MUTATION = '''
class Service:
    def retag(self, model, path):
        node = model.get(path)
        node.attrs.update({"tag": "hot"})
'''

COW_GOOD_READS = '''
class Service:
    def tally(self, model, path):
        host = model.get(path)
        used = sum(vm.attrs.get("ram", 0) for vm in host.children.values())
        names = list(host.children)
        return used, names
'''

COW_GOOD_OWNED = '''
class Service:
    def rename(self, model, path):
        node = model.get_for_write(path)
        node.attrs["tag"] = "hot"
        node.add_child(make_node("x"))
'''


class TestCowFunnel:
    def test_mutator_call_on_shared_node(self):
        findings = check_cow_funnel(make_index({"repro.fix.cow": COW_BAD_MUTATOR}))
        assert [f.rule for f in findings] == [RULE_COW]
        assert "get_for_write" in findings[0].message

    def test_subscript_assignment_on_shared_node(self):
        findings = check_cow_funnel(make_index({"repro.fix.cow": COW_BAD_ATTR_WRITE}))
        assert len(findings) == 1

    def test_dict_mutation_on_shared_node(self):
        findings = check_cow_funnel(make_index({"repro.fix.cow": COW_BAD_DICT_MUTATION}))
        assert len(findings) == 1

    def test_reads_of_shared_node_are_snapshot_safe(self):
        assert check_cow_funnel(make_index({"repro.fix.cow": COW_GOOD_READS})) == []

    def test_get_for_write_claims_ownership(self):
        assert check_cow_funnel(make_index({"repro.fix.cow": COW_GOOD_OWNED})) == []

    def test_datamodel_package_is_exempt(self):
        index = make_index({"repro.datamodel.fix": COW_BAD_MUTATOR})
        assert check_cow_funnel(index) == []


# ---------------------------------------------------------------------------
# kv-write-outside-funnel
# ---------------------------------------------------------------------------

KV_BAD = '''
class Sidecar:
    def stash(self, kv, doc):
        kv.put("notes/latest", doc)
'''

KV_GOOD_READ = '''
class Sidecar:
    def peek(self, kv):
        return kv.get("notes/latest")
'''


class TestKvWrites:
    def test_raw_write_outside_funnel_is_flagged(self):
        findings = check_kv_writes(make_index({"repro.fix.kv": KV_BAD}))
        assert [f.rule for f in findings] == [RULE_KV]

    def test_reads_are_fine(self):
        assert check_kv_writes(make_index({"repro.fix.kv": KV_GOOD_READ})) == []

    def test_persistence_funnel_is_exempt(self):
        index = make_index({"repro.core.persistence_fix": KV_BAD})
        assert check_kv_writes(index) == []


# ---------------------------------------------------------------------------
# txn-state discipline
# ---------------------------------------------------------------------------

STATE_DIRECT = '''
class Handler:
    def force(self, txn):
        txn.state = TransactionState.COMMITTED
'''

STATE_BAD_EDGE = '''
class Handler:
    def resolve(self, txn):
        if txn.state is TransactionState.COMMITTED:
            txn.mark(TransactionState.PREPARING)
'''

STATE_GOOD_EDGE = '''
class Handler:
    def resolve(self, txn):
        if txn.state is TransactionState.PREPARING:
            txn.mark(TransactionState.PREPARED)
'''

STATE_GOOD_MEMBERSHIP = '''
class Handler:
    def resolve(self, txn):
        if txn.state in (TransactionState.PREPARED, TransactionState.STARTED):
            txn.mark(TransactionState.COMMITTED)
'''


class TestTxnState:
    def test_direct_assignment_is_flagged(self):
        findings = check_txn_state(make_index({"repro.fix.txn": STATE_DIRECT}))
        assert [f.rule for f in findings] == [RULE_STATE_ASSIGN]
        assert "mark()" in findings[0].message

    def test_undocumented_transition_is_flagged(self):
        findings = check_txn_state(make_index({"repro.fix.txn": STATE_BAD_EDGE}))
        assert [f.rule for f in findings] == [RULE_STATE_EDGE]
        assert findings[0].detail == "COMMITTED->PREPARING"

    def test_documented_transition_is_silent(self):
        assert check_txn_state(make_index({"repro.fix.txn": STATE_GOOD_EDGE})) == []

    def test_membership_guard_checks_every_source_state(self):
        assert check_txn_state(make_index({"repro.fix.txn": STATE_GOOD_MEMBERSHIP})) == []

    def test_mark_itself_may_assign(self):
        source = STATE_DIRECT.replace("class Handler", "class Transaction").replace(
            "def force", "def mark"
        ).replace("txn.state", "self.state").replace("(self, txn)", "(self)")
        assert check_txn_state(make_index({"repro.fix.txn": source})) == []


# ---------------------------------------------------------------------------
# transient-swallowed
# ---------------------------------------------------------------------------

SWALLOW_BAD = '''
class Runner:
    def run(self):
        while True:
            try:
                self.step()
            except Exception:
                pass
'''

SWALLOW_CLASSIFIED = '''
class Runner:
    def run(self):
        while True:
            try:
                self.step()
            except Exception as exc:
                self.counters.record_failure(exc)
'''

SWALLOW_RERAISED = '''
class Runner:
    def run(self):
        while True:
            try:
                self.step()
            except QuorumLostError:
                raise
'''

SWALLOW_NOT_IN_LOOP = '''
class Runner:
    def run_once(self):
        try:
            self.step()
        except Exception:
            pass
'''

SWALLOW_SPECIFIC_OK = '''
class Runner:
    def run(self):
        while True:
            try:
                self.step()
            except ValueError:
                pass
'''


class TestTransientSwallowed:
    def test_catch_all_in_retry_loop_is_flagged(self):
        findings = check_transient_swallowed(make_index({"repro.fix.sw": SWALLOW_BAD}))
        assert [f.rule for f in findings] == [RULE_SWALLOW]

    def test_classifying_handler_is_fine(self):
        index = make_index({"repro.fix.sw": SWALLOW_CLASSIFIED})
        assert check_transient_swallowed(index) == []

    def test_reraising_handler_is_fine(self):
        index = make_index({"repro.fix.sw": SWALLOW_RERAISED})
        assert check_transient_swallowed(index) == []

    def test_outside_a_loop_is_not_a_retry_path(self):
        index = make_index({"repro.fix.sw": SWALLOW_NOT_IN_LOOP})
        assert check_transient_swallowed(index) == []

    def test_non_taxonomy_exception_is_out_of_scope(self):
        index = make_index({"repro.fix.sw": SWALLOW_SPECIFIC_OK})
        assert check_transient_swallowed(index) == []


# ---------------------------------------------------------------------------
# wound-without-decision
# ---------------------------------------------------------------------------

WOUND_BAD_RELEASE_FIRST = '''
class Controller:
    def _wound_cross_shard(self, txn, by):
        self.lock_manager.release_all(txn.txid)
        self.twopc.decide(txn.txid, "abort", self.shard_id, txn.participants)
'''

WOUND_BAD_NO_DECISION = '''
class Controller:
    def _handle_wound(self, txn):
        self.lock_manager.release_all(txn.txid)
        self.todo.push_front(txn)
'''

WOUND_GOOD_ORDER = '''
class Controller:
    def _wound_cross_shard(self, txn, by):
        self.twopc.decide(txn.txid, "abort", self.shard_id, txn.participants)
        self._send_release(txn)
        self.lock_manager.release_all(txn.txid)
'''

WOUND_GOOD_NON_HANDLER = '''
class Controller:
    def _release_participant(self, txn):
        self.lock_manager.release_all(txn.txid)
'''


class TestWoundDecisionOrder:
    def test_release_before_the_decision_fires(self):
        findings = check_wound_decision_order(
            make_index({"repro.fix.wound": WOUND_BAD_RELEASE_FIRST})
        )
        assert [f.rule for f in findings] == [RULE_WOUND]
        assert "twopc.decide" in findings[0].message

    def test_release_with_no_decision_at_all_fires(self):
        findings = check_wound_decision_order(
            make_index({"repro.fix.wound": WOUND_BAD_NO_DECISION})
        )
        assert len(findings) == 1
        assert findings[0].qualname == "Controller._handle_wound"

    def test_decide_then_release_is_clean(self):
        assert (
            check_wound_decision_order(
                make_index({"repro.fix.wound": WOUND_GOOD_ORDER})
            )
            == []
        )

    def test_non_wound_functions_are_out_of_scope(self):
        assert (
            check_wound_decision_order(
                make_index({"repro.fix.wound": WOUND_GOOD_NON_HANDLER})
            )
            == []
        )

    def test_testing_harness_modules_are_exempt(self):
        assert (
            check_wound_decision_order(
                make_index({"repro.testing.spies": WOUND_BAD_NO_DECISION})
            )
            == []
        )
