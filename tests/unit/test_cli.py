"""Tests for the operator console (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_and_command_options(self):
        args = build_parser().parse_args(
            ["--hosts", "6", "--host-mem-mb", "4096", "replay-ec2",
             "--window", "30", "--multiplier", "2", "--compression", "10"])
        assert args.hosts == 6
        assert args.host_mem_mb == 4096
        assert args.command == "replay-ec2"
        assert args.multiplier == 2
        assert args.compression == 10.0

    def test_multiplier_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay-ec2", "--multiplier", "9"])


class TestCommands:
    def test_table1_prints_the_execution_log(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cloneImage" in out and "startVM" in out
        assert "committed" in out

    def test_lifecycle_walkthrough(self, capsys):
        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "spawn:    committed" in out
        assert "aborted" in out  # the oversized spawn
        assert "VMs left: 0" in out

    def test_inventory_reports_utilisation(self, capsys):
        assert main(["inventory", "--operations", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet utilisation" in out
        assert "/vmRoot/vmHost0" in out

    def test_twopc_gc_reports_retained_records(self, capsys):
        assert main(["--hosts", "8", "--shards", "2", "2pc-gc"]) == 0
        out = capsys.readouterr().out
        assert "retained decision records" in out
        assert "shard-0" in out

    def test_twopc_gc_retired_shard_sweeps(self, capsys):
        assert main(["--hosts", "8", "--shards", "2", "2pc-gc",
                     "--retired-shard", "0"]) == 0
        out = capsys.readouterr().out
        assert "retired shard 0" in out
        assert "record(s) swept" in out

    def test_repair_drill_reconverges(self, capsys):
        assert main(["repair-drill"]) == 0
        out = capsys.readouterr().out
        assert "layers back in sync: True" in out

    def test_replay_hosting(self, capsys):
        assert main(["replay-hosting", "--operations", "15", "--window", "30"]) == 0
        out = capsys.readouterr().out
        assert "hosting-workload replay" in out
        assert "committed" in out

    def test_replay_ec2_small_window(self, capsys):
        assert main(["--hosts", "8", "replay-ec2", "--window", "10",
                     "--compression", "10"]) == 0
        out = capsys.readouterr().out
        assert "EC2 replay" in out
        assert "median latency" in out

    def test_failover_drill_loses_no_transactions(self, capsys):
        assert main(["failover", "--operations", "3"]) == 0
        out = capsys.readouterr().out
        assert "killed lead controller" in out
        assert "5/5" in out
