"""Unit tests for stored-procedure composition and the composite TCloud
orchestrations (provisionTenant, evacuateHost, cloneVM, rebalanceHosts)."""

import pytest

from repro.common.errors import ProcedureError
from repro.core.context import MAX_CALL_DEPTH, OrchestrationContext
from repro.core.txn import Transaction, TransactionState
from repro.tcloud.procedures import build_procedures


class TestProcedureComposition:
    def test_call_requires_registry(self, model, schema):
        txn = Transaction(procedure="adhoc")
        ctx = OrchestrationContext(model, schema, txn)
        with pytest.raises(ProcedureError, match="no procedure registry"):
            ctx.call("spawnVM", vm_name="x")

    def test_call_unknown_procedure_aborts_transaction(self, executor):
        txn = Transaction(procedure="provisionTenant", args={
            "tenant": "t", "vms": [{"vm_name": "a", "vm_host": "/vmRoot/vmHost0",
                                     "storage_host": "/storageRoot/storageHost0"}]})
        # Sabotage the registry after building the executor: the callee is gone.
        executor.procedures = build_procedures()
        executor.procedures._procedures.pop("spawnVM")
        outcome = executor.simulate(txn)
        assert not outcome.ok
        assert "spawnVM" in outcome.error

    def test_call_depth_is_bounded(self, executor):
        def recursive(ctx):
            return ctx.call("recurse")

        executor.procedures.register("recurse", recursive)
        outcome = executor.simulate(Transaction(procedure="recurse"))
        assert not outcome.ok
        assert str(MAX_CALL_DEPTH) in outcome.error

    def test_callee_actions_extend_the_callers_log(self, executor):
        def wrapper(ctx, **kwargs):
            return ctx.call("spawnVM", **kwargs)

        executor.procedures.register("wrappedSpawn", wrapper)
        txn = Transaction(procedure="wrappedSpawn", args={
            "vm_name": "vm1", "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0", "mem_mb": 512})
        outcome = executor.simulate(txn)
        assert outcome.ok
        # The wrapper itself performed no action: the whole log comes from
        # the callee and is owned by the single enclosing transaction.
        assert [r.action for r in txn.log] == [
            "cloneImage", "exportImage", "importImage", "createVM", "startVM"]
        assert "/vmRoot/vmHost0" in txn.rwset.writes


class TestProvisionTenant:
    def test_tenant_environment_is_provisioned_atomically(self, inline_cloud):
        txn = inline_cloud.provision_tenant(
            "acme", num_vms=3, mem_mb=512, vlan_id=100,
            firewall_rules=[{"rule_id": 10, "src": "10.0.0.0/8", "policy": "allow"}],
        )
        assert txn.state is TransactionState.COMMITTED
        names = {record.name for record in inline_cloud.list_vms()}
        assert names == {"acme-vm0", "acme-vm1", "acme-vm2"}
        assert all(record.state == "running" for record in inline_cloud.list_vms())
        assert 10 in inline_cloud.list_firewall_rules()
        router = inline_cloud.inventory.routers[0]
        model = inline_cloud.platform.leader().model
        vlans = [model.get(p).get("vlan_id") for p in model.find(entity_type="vlan")]
        assert 100 in vlans
        # One transaction covers the whole environment.
        assert len(txn.log) >= 3 * 5 + 1
        assert txn.result["tenant"] == "acme"

    def test_oversized_tenant_rolls_back_completely(self, inline_cloud):
        # 9 VMs x 2048 MB over 4 hosts x 4096 MB: the last VM cannot fit, so
        # the whole environment must be rolled back.
        txn = inline_cloud.provision_tenant("big", num_vms=9, mem_mb=2048, vlan_id=200)
        assert txn.state is TransactionState.ABORTED
        assert inline_cloud.vm_count() == 0
        model = inline_cloud.platform.leader().model
        assert model.find(entity_type="vlan") == []
        # The physical layer was never touched either.
        assert inline_cloud.platform.reconciler().detect().is_empty

    def test_empty_tenant_rejected(self, inline_cloud):
        with pytest.raises(ProcedureError):
            inline_cloud.provision_tenant("empty", num_vms=0)

    def test_teardown_removes_vms_rules_and_vlan(self, inline_cloud):
        inline_cloud.provision_tenant(
            "acme", num_vms=2, mem_mb=512, vlan_id=101,
            firewall_rules=[{"rule_id": 11}])
        txn = inline_cloud.teardown_tenant("acme", vlan_id=101, firewall_rule_ids=[11])
        assert txn.state is TransactionState.COMMITTED
        assert inline_cloud.vm_count() == 0
        assert inline_cloud.list_firewall_rules() == []
        model = inline_cloud.platform.leader().model
        assert model.find(entity_type="vlan") == []
        assert inline_cloud.platform.reconciler().detect().is_empty

    def test_teardown_unknown_tenant_rejected(self, inline_cloud):
        with pytest.raises(ProcedureError):
            inline_cloud.teardown_tenant("ghost")


class TestEvacuateHostAtomic:
    def test_all_vms_leave_the_host(self, inline_cloud):
        inline_cloud.spawn_vm("a", vm_host="/vmRoot/vmHost0", mem_mb=1024)
        inline_cloud.spawn_vm("b", vm_host="/vmRoot/vmHost0", mem_mb=1024)
        txn = inline_cloud.evacuate_host_atomic("/vmRoot/vmHost0")
        assert txn.state is TransactionState.COMMITTED
        assert all(r.host != "/vmRoot/vmHost0" for r in inline_cloud.list_vms())
        assert {r.state for r in inline_cloud.list_vms()} == {"running"}
        assert inline_cloud.platform.reconciler().detect().is_empty

    def test_evacuation_is_all_or_nothing(self, inline_cloud):
        # Fill every destination so only 1024 MB is free there, then try to
        # evacuate two 2048 MB VMs: neither move must survive the abort.
        for index in (1, 2, 3):
            inline_cloud.spawn_vm(f"filler{index}a", vm_host=f"/vmRoot/vmHost{index}",
                                  mem_mb=2048)
            inline_cloud.spawn_vm(f"filler{index}b", vm_host=f"/vmRoot/vmHost{index}",
                                  mem_mb=1024)
        inline_cloud.spawn_vm("busy0", vm_host="/vmRoot/vmHost0", mem_mb=2048)
        inline_cloud.spawn_vm("busy1", vm_host="/vmRoot/vmHost0", mem_mb=2048)
        txn = inline_cloud.evacuate_host_atomic("/vmRoot/vmHost0")
        assert txn.state is TransactionState.ABORTED
        still_there = {r.name for r in inline_cloud.list_vms() if r.host == "/vmRoot/vmHost0"}
        assert still_there == {"busy0", "busy1"}
        assert inline_cloud.platform.reconciler().detect().is_empty

    def test_evacuating_empty_host_is_a_noop_commit(self, inline_cloud):
        txn = inline_cloud.evacuate_host_atomic("/vmRoot/vmHost3")
        assert txn.state is TransactionState.COMMITTED
        assert txn.result["moves"] == []

    def test_evacuation_requires_compatible_hypervisor(self):
        from repro.tcloud.service import build_tcloud

        cloud = build_tcloud(num_vm_hosts=2, num_storage_hosts=1, host_mem_mb=4096,
                             hypervisors=["xen-4.1", "kvm-1.0"])
        cloud.platform.start()
        try:
            cloud.spawn_vm("only", vm_host="/vmRoot/vmHost0", mem_mb=512)
            txn = cloud.evacuate_host_atomic("/vmRoot/vmHost0")
            assert txn.state is TransactionState.ABORTED
            assert "hypervisor" in (txn.error or "")
        finally:
            cloud.platform.stop()


class TestCloneAndRebalance:
    def test_clone_vm_creates_an_independent_copy(self, inline_cloud):
        inline_cloud.spawn_vm("web", vm_host="/vmRoot/vmHost0", mem_mb=512)
        txn = inline_cloud.clone_vm("web", "web-copy", dst_host="/vmRoot/vmHost1")
        assert txn.state is TransactionState.COMMITTED
        copy = inline_cloud.find_vm("web-copy")
        original = inline_cloud.find_vm("web")
        assert copy is not None and copy.host == "/vmRoot/vmHost1"
        assert original.state == "running"
        assert copy.state == "running"
        assert copy.image != original.image
        assert inline_cloud.platform.reconciler().detect().is_empty

    def test_clone_of_unknown_vm_rejected(self, inline_cloud):
        with pytest.raises(ProcedureError):
            inline_cloud.clone_vm("ghost", "ghost-copy")

    def test_rebalance_moves_smallest_vms_first(self, inline_cloud):
        inline_cloud.spawn_vm("small", vm_host="/vmRoot/vmHost0", mem_mb=512)
        inline_cloud.spawn_vm("large", vm_host="/vmRoot/vmHost0", mem_mb=2048)
        txn = inline_cloud.rebalance_hosts("/vmRoot/vmHost0", "/vmRoot/vmHost1",
                                           target_free_mb=2048)
        assert txn.state is TransactionState.COMMITTED
        assert txn.result["moved"] == ["small"]
        assert inline_cloud.find_vm("small").host == "/vmRoot/vmHost1"
        assert inline_cloud.find_vm("large").host == "/vmRoot/vmHost0"

    def test_rebalance_aborts_when_target_unreachable(self, inline_cloud):
        # The target exceeds the host's total capacity, so no sequence of
        # migrations can reach it and the transaction must roll back.
        inline_cloud.spawn_vm("pinned", vm_host="/vmRoot/vmHost0", mem_mb=1024)
        txn = inline_cloud.rebalance_hosts("/vmRoot/vmHost0", "/vmRoot/vmHost1",
                                           target_free_mb=8192)
        assert txn.state is TransactionState.ABORTED
        assert inline_cloud.find_vm("pinned").host == "/vmRoot/vmHost0"
