"""Unit tests for entity types, actions, queries and constraints."""

import pytest

from repro.common.errors import ConfigurationError, ConstraintViolation, DataModelError
from repro.datamodel.node import Node
from repro.datamodel.schema import EntityType, ModelSchema
from repro.datamodel.tree import DataModel


@pytest.fixture
def counter_type():
    etype = EntityType("counter", default_attrs={"value": 0, "limit": 10})

    @etype.action("increment", undo="decrement", undo_args=lambda node, args: [args[0]])
    def increment(model, node, amount):
        node["value"] = node.get("value", 0) + amount

    @etype.action("decrement", undo="increment", undo_args=lambda node, args: [args[0]])
    def decrement(model, node, amount):
        node["value"] = node.get("value", 0) - amount

    @etype.query("current")
    def current(model, node):
        return node.get("value", 0)

    @etype.constraint("limit", "value must stay within the limit")
    def limit(model, node):
        if node.get("value", 0) > node.get("limit", 10):
            return [f"value {node['value']} exceeds limit {node['limit']}"]
        return []

    return etype


@pytest.fixture
def counter_schema(counter_type):
    schema = ModelSchema()
    schema.register(counter_type)
    return schema


@pytest.fixture
def counter_model():
    model = DataModel()
    model.create("/c1", "counter", {"value": 0, "limit": 10})
    return model


class TestEntityType:
    def test_action_lookup(self, counter_type):
        assert counter_type.get_action("increment").undo == "decrement"

    def test_unknown_action_raises(self, counter_type):
        with pytest.raises(DataModelError):
            counter_type.get_action("missing")

    def test_duplicate_action_rejected(self, counter_type):
        with pytest.raises(ConfigurationError):
            counter_type.action("increment")(lambda model, node: None)

    def test_duplicate_query_rejected(self, counter_type):
        with pytest.raises(ConfigurationError):
            counter_type.query("current")(lambda model, node: None)

    def test_undo_arguments_computed(self, counter_type):
        node = Node("c", "counter", {"value": 3})
        action = counter_type.get_action("increment")
        assert action.undo_arguments(node, [5]) == [5]

    def test_undo_arguments_default_empty(self):
        etype = EntityType("x")
        etype.action("irreversible")(lambda model, node: None)
        assert etype.get_action("irreversible").undo is None
        assert etype.get_action("irreversible").undo_arguments(Node("n", "x"), [1]) == []

    def test_has_constraints(self, counter_type):
        assert counter_type.has_constraints
        assert not EntityType("plain").has_constraints


class TestModelSchema:
    def test_register_and_get(self, counter_schema):
        assert counter_schema.get("counter").name == "counter"
        assert counter_schema.has("counter")
        assert not counter_schema.has("ghost")

    def test_unknown_type_raises(self, counter_schema):
        with pytest.raises(DataModelError):
            counter_schema.get("ghost")

    def test_duplicate_type_rejected(self, counter_schema):
        with pytest.raises(ConfigurationError):
            counter_schema.define("counter")

    def test_root_type_predefined(self):
        assert ModelSchema().has("root")

    def test_check_node_reports_violation(self, counter_schema, counter_model):
        node = counter_model.get("/c1")
        node["value"] = 99
        violations = counter_schema.check_node(counter_model, node)
        assert len(violations) == 1
        assert "exceeds limit" in violations[0]

    def test_check_subtree_clean(self, counter_schema, counter_model):
        assert counter_schema.check_subtree(counter_model) == []

    def test_enforce_subtree_raises(self, counter_schema, counter_model):
        counter_model.get("/c1")["value"] = 99
        with pytest.raises(ConstraintViolation):
            counter_schema.enforce_subtree(counter_model)

    def test_has_constraints_by_name(self, counter_schema):
        assert counter_schema.has_constraints("counter")
        assert not counter_schema.has_constraints("root")
        assert not counter_schema.has_constraints("never-registered")

    def test_unknown_entity_type_in_model_is_ignored(self, counter_schema):
        model = DataModel()
        model.create("/weird", "unregistered-type")
        assert counter_schema.check_subtree(model) == []


class TestActionSimulation:
    def test_action_mutates_model(self, counter_schema, counter_model):
        node = counter_model.get("/c1")
        counter_schema.get("counter").get_action("increment").simulate(counter_model, node, 4)
        assert node["value"] == 4

    def test_query_reads_model(self, counter_schema, counter_model):
        node = counter_model.get("/c1")
        node["value"] = 6
        assert counter_schema.get("counter").get_query("current").func(counter_model, node) == 6
