"""Unit tests for the TropicPlatform public API (inline runtime)."""

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ConfigurationError
from repro.core.platform import TransactionHandle, TropicPlatform
from repro.core.txn import TransactionState
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures


def make_platform(**config_kwargs):
    inventory = build_inventory(num_vm_hosts=3, num_storage_hosts=2, host_mem_mb=4096)
    platform = TropicPlatform(
        schema=build_schema(),
        procedures=build_procedures(),
        config=TropicConfig(**config_kwargs),
        registry=inventory.registry,
        initial_model=inventory.model,
    )
    return platform, inventory


def spawn_args(name, host="/vmRoot/vmHost0", storage="/storageRoot/storageHost0"):
    return {
        "vm_name": name,
        "image_template": "template-small",
        "storage_host": storage,
        "vm_host": host,
        "mem_mb": 512,
    }


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        platform, _ = make_platform()
        with pytest.raises(ConfigurationError):
            platform.submit("spawnVM", spawn_args("vm1"))

    def test_context_manager_starts_and_stops(self):
        platform, _ = make_platform()
        with platform as started:
            assert started is platform
            txn = platform.submit("spawnVM", spawn_args("vm1"))
            assert txn.state is TransactionState.COMMITTED

    def test_start_is_idempotent(self):
        platform, _ = make_platform()
        platform.start()
        platform.start()
        assert len(platform.controllers) == 1
        platform.stop()

    def test_unknown_procedure_rejected_at_submit(self):
        platform, _ = make_platform()
        with platform:
            with pytest.raises(ConfigurationError):
                platform.submit("noSuchProcedure", {})

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            make_platform(num_workers=0)


class TestSubmission:
    def test_submit_wait_returns_terminal_transaction(self):
        platform, _ = make_platform()
        with platform:
            txn = platform.submit("spawnVM", spawn_args("vm1"))
            assert txn.state is TransactionState.COMMITTED
            assert txn.result["vm"].endswith("/vm1")

    def test_submit_async_returns_handle(self):
        platform, _ = make_platform()
        with platform:
            handle = platform.submit("spawnVM", spawn_args("vm1"), wait=False)
            assert isinstance(handle, TransactionHandle)
            assert not handle.is_done()
            platform.run_until_idle()
            assert handle.is_done()
            assert handle.wait(5).state is TransactionState.COMMITTED

    def test_submit_many(self):
        platform, _ = make_platform()
        with platform:
            results = platform.submit_many(
                [("spawnVM", spawn_args(f"vm{i}", host=f"/vmRoot/vmHost{i}")) for i in range(3)]
            )
            assert all(txn.state is TransactionState.COMMITTED for txn in results)

    def test_completed_and_latencies_recorded(self):
        platform, _ = make_platform()
        with platform:
            platform.submit("spawnVM", spawn_args("vm1"))
            platform.submit("spawnVM", spawn_args("vm2", host="/vmRoot/vmHost1"))
            assert len(platform.completed()) == 2
            latencies = platform.latencies()
            assert len(latencies) == 2
            assert all(value >= 0 for value in latencies)

    def test_handle_refresh_reports_state(self):
        platform, _ = make_platform()
        with platform:
            handle = platform.submit("spawnVM", spawn_args("vm1"), wait=False)
            assert handle.state is TransactionState.INITIALIZED
            platform.run_until_idle()
            assert handle.state is TransactionState.COMMITTED

    def test_resource_count_reflects_model(self):
        platform, inventory = make_platform()
        with platform:
            before = platform.resource_count()
            platform.submit("spawnVM", spawn_args("vm1"))
            # A VM node and an image node were added to the logical model.
            assert platform.resource_count() == before + 2


class TestReconciliationHooks:
    def test_reconciler_requires_registry(self):
        platform = TropicPlatform(
            schema=build_schema(),
            procedures=build_procedures(),
            config=TropicConfig(logical_only=True),
            initial_model=build_inventory(num_vm_hosts=1, num_storage_hosts=1,
                                          with_devices=False).model,
        )
        with platform:
            with pytest.raises(ConfigurationError):
                platform.reconciler()

    def test_repair_and_reload_via_platform(self):
        platform, inventory = make_platform()
        with platform:
            platform.submit("spawnVM", spawn_args("vm1"))
            inventory.registry.device_at("/vmRoot/vmHost0").power_cycle()
            report = platform.repair("/vmRoot/vmHost0")
            assert report.clean
            reload_report = platform.reload("/storageRoot/storageHost1")
            assert reload_report.applied

    def test_kill_leader_requires_threaded_runtime(self):
        platform, _ = make_platform()
        with platform:
            with pytest.raises(ConfigurationError):
                platform.kill_leader()
