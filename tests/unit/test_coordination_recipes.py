"""Unit tests for the client, queue, election and KV-store recipes."""

import pytest

from repro.common.errors import SessionExpiredError
from repro.coordination.client import CoordinationClient
from repro.coordination.election import LeaderElection
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue


@pytest.fixture
def ensemble():
    return CoordinationEnsemble(num_servers=3, default_session_timeout=10.0)


@pytest.fixture
def client(ensemble):
    return CoordinationClient(ensemble)


class TestClient:
    def test_set_or_create_upserts(self, client):
        client.set_or_create("/doc", "v1")
        client.set_or_create("/doc", "v2")
        assert client.get("/doc")[0] == "v2"

    def test_get_data_default(self, client):
        assert client.get_data("/missing", default="d") == "d"

    def test_delete_if_exists(self, client):
        client.create("/a")
        assert client.delete_if_exists("/a") is True
        assert client.delete_if_exists("/a") is False

    def test_reconnect_after_expiry(self, ensemble, client):
        ensemble.expire_session(client.session_id)
        with pytest.raises(SessionExpiredError):
            client.create("/x")
        client.reconnect()
        client.create("/x")
        assert client.exists("/x") is not None

    def test_is_live(self, ensemble, client):
        assert client.is_live()
        ensemble.expire_session(client.session_id)
        assert not client.is_live()


class TestDistributedQueue:
    def test_fifo_order(self, client):
        queue = DistributedQueue(client, "/queues/test")
        queue.put({"n": 1})
        queue.put({"n": 2})
        queue.put({"n": 3})
        assert [queue.poll()["n"] for _ in range(3)] == [1, 2, 3]

    def test_poll_empty_returns_none(self, client):
        queue = DistributedQueue(client, "/queues/empty")
        assert queue.poll() is None

    def test_get_with_timeout(self, client):
        queue = DistributedQueue(client, "/queues/timeout")
        assert queue.get(timeout=0.05, poll_interval=0.01) is None

    def test_idle_get_issues_zero_polling_round_trips(self, ensemble, client):
        """A blocked consumer parks on a child watch: while the queue stays
        empty it performs no coordination reads at all (the ROADMAP's
        'watch-driven queue consumers' item)."""
        import threading
        import time

        queue = DistributedQueue(client, "/queues/idlewatch")
        results = []
        consumer = threading.Thread(
            target=lambda: results.append(queue.get(timeout=10.0)), daemon=True
        )
        consumer.start()
        time.sleep(0.1)  # let the consumer register its watch and park
        reads_at_idle = ensemble.read_round_trips
        ops_at_idle = ensemble.op_count
        time.sleep(0.25)  # a 2 ms busy-poll would issue ~125 listings here
        assert ensemble.read_round_trips == reads_at_idle
        assert ensemble.op_count == ops_at_idle
        # The watch wakes the consumer promptly once an item arrives.
        queue.put({"n": 42})
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert results == [{"n": 42}]

    def test_get_times_out_when_a_virtual_clock_advances(self, client):
        """The watch-driven park loop re-reads the platform clock, so a
        consumer on a simulated clock still observes its deadline once
        another thread advances time (the VirtualClock contract: time only
        moves when someone advances it)."""
        import threading
        import time

        from repro.common.clock import VirtualClock

        clock = VirtualClock()
        queue = DistributedQueue(client, "/queues/virtual", clock=clock)
        results = []
        consumer = threading.Thread(
            target=lambda: results.append(queue.get(timeout=5.0, poll_interval=0.01)),
            daemon=True,
        )
        consumer.start()
        time.sleep(0.05)  # consumer is parked on its watch
        clock.advance(10.0)  # push simulated time past the deadline
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert results == [None]

    def test_get_wakes_for_item_enqueued_while_parked(self, client):
        import threading
        import time

        queue = DistributedQueue(client, "/queues/wake")
        results = []
        consumer = threading.Thread(
            target=lambda: results.append(queue.get(timeout=10.0)), daemon=True
        )
        consumer.start()
        time.sleep(0.05)
        start = time.time()
        queue.put({"n": 1})
        consumer.join(timeout=5.0)
        assert results == [{"n": 1}]
        assert time.time() - start < 1.0

    def test_peek_does_not_remove(self, client):
        queue = DistributedQueue(client, "/queues/peek")
        queue.put({"n": 1})
        assert queue.peek()["n"] == 1
        assert queue.size() == 1

    def test_take_ack_semantics(self, client):
        queue = DistributedQueue(client, "/queues/ack")
        queue.put({"n": 1})
        name, item = queue.take()
        assert item["n"] == 1
        # Item stays until acknowledged.
        assert queue.size() == 1
        assert queue.ack(name) is True
        assert queue.size() == 0
        assert queue.ack(name) is False

    def test_drain(self, client):
        queue = DistributedQueue(client, "/queues/drain")
        for n in range(5):
            queue.put({"n": n})
        items = queue.drain()
        assert [item["n"] for item in items] == list(range(5))
        assert queue.is_empty()

    def test_two_consumers_never_share_an_item(self, ensemble, client):
        other = CoordinationClient(ensemble)
        producer = DistributedQueue(client, "/queues/shared")
        consumer_a = DistributedQueue(client, "/queues/shared")
        consumer_b = DistributedQueue(other, "/queues/shared")
        for n in range(20):
            producer.put({"n": n})
        seen = []
        while True:
            item = consumer_a.poll() or consumer_b.poll()
            if item is None:
                break
            seen.append(item["n"])
        assert sorted(seen) == list(range(20))
        assert len(seen) == len(set(seen))


class TestLeaderElection:
    def test_first_volunteer_becomes_leader(self, ensemble):
        a = LeaderElection(CoordinationClient(ensemble), "/election", "alpha")
        b = LeaderElection(CoordinationClient(ensemble), "/election", "beta")
        a.volunteer()
        b.volunteer()
        assert a.is_leader()
        assert not b.is_leader()
        assert a.current_leader() == "alpha"

    def test_leadership_transfers_on_session_expiry(self, ensemble):
        client_a = CoordinationClient(ensemble)
        client_b = CoordinationClient(ensemble)
        a = LeaderElection(client_a, "/election", "alpha")
        b = LeaderElection(client_b, "/election", "beta")
        a.volunteer()
        b.volunteer()
        ensemble.expire_session(client_a.session_id)
        assert b.is_leader()
        assert b.current_leader() == "beta"

    def test_resign_transfers_leadership(self, ensemble):
        a = LeaderElection(CoordinationClient(ensemble), "/election", "alpha")
        b = LeaderElection(CoordinationClient(ensemble), "/election", "beta")
        a.volunteer()
        b.volunteer()
        a.resign()
        assert b.is_leader()

    def test_on_change_callback_invoked(self, ensemble):
        changes = []
        client_a = CoordinationClient(ensemble)
        a = LeaderElection(client_a, "/election", "alpha")
        b = LeaderElection(
            CoordinationClient(ensemble), "/election", "beta", on_change=changes.append
        )
        a.volunteer()
        b.volunteer()
        ensemble.expire_session(client_a.session_id)
        assert True in changes

    def test_members_sorted_by_sequence(self, ensemble):
        a = LeaderElection(CoordinationClient(ensemble), "/election", "alpha")
        b = LeaderElection(CoordinationClient(ensemble), "/election", "beta")
        a.volunteer()
        b.volunteer()
        assert [name for _, name in a.members()] == ["alpha", "beta"]

    def test_no_leader_without_volunteers(self, ensemble):
        a = LeaderElection(CoordinationClient(ensemble), "/election", "alpha")
        assert a.current_leader() is None
        assert not a.is_leader()


class TestKVStore:
    def test_put_get_roundtrip(self, client):
        store = KVStore(client, "/kv")
        store.put("a/b", {"x": 1, "y": [1, 2]})
        assert store.get("a/b") == {"x": 1, "y": [1, 2]}

    def test_get_default(self, client):
        store = KVStore(client, "/kv")
        assert store.get("missing", default=42) == 42

    def test_exists_and_delete(self, client):
        store = KVStore(client, "/kv")
        store.put("doc", 1)
        assert store.exists("doc")
        store.delete("doc")
        assert not store.exists("doc")

    def test_recursive_delete(self, client):
        store = KVStore(client, "/kv")
        store.put("tree/a", 1)
        store.put("tree/b/c", 2)
        store.delete("tree", recursive=True)
        assert store.keys("tree") == []

    def test_keys_and_items(self, client):
        store = KVStore(client, "/kv")
        store.put("txns/t1", {"id": 1})
        store.put("txns/t2", {"id": 2})
        assert store.keys("txns") == ["t1", "t2"]
        assert dict(store.items("txns")) == {"t1": {"id": 1}, "t2": {"id": 2}}

    def test_keys_of_missing_prefix(self, client):
        store = KVStore(client, "/kv")
        assert store.keys("nothing/here") == []
