"""Unit tests for the procedure registry, queue messages and TCloud procedures."""

import pytest

from repro.common.errors import ConfigurationError, ProcedureError
from repro.core.constraints import ConstraintEngine
from repro.core.events import (
    KIND_EXECUTE,
    KIND_REQUEST,
    KIND_RESULT,
    execute_message,
    request_message,
    result_message,
)
from repro.core.procedures import DEFAULT_REGISTRY, ProcedureRegistry, procedure
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction
from repro.tcloud.procedures import build_procedures, disk_image_name


class TestProcedureRegistry:
    def test_register_and_get(self):
        registry = ProcedureRegistry()
        registry.register("noop", lambda ctx: None)
        assert registry.has("noop")
        assert registry.get("noop") is not None
        assert registry.names() == ["noop"]

    def test_duplicate_rejected(self):
        registry = ProcedureRegistry()
        registry.register("p", lambda ctx: None)
        with pytest.raises(ConfigurationError):
            registry.register("p", lambda ctx: None)

    def test_unknown_procedure_raises(self):
        with pytest.raises(ProcedureError):
            ProcedureRegistry().get("ghost")

    def test_decorator_uses_function_name_by_default(self):
        registry = ProcedureRegistry()

        @registry.procedure()
        def my_proc(ctx):
            return 1

        assert registry.has("my_proc")

    def test_merge(self):
        a = ProcedureRegistry()
        a.register("one", lambda ctx: 1)
        b = ProcedureRegistry()
        b.register("two", lambda ctx: 2)
        a.merge(b)
        assert a.names() == ["one", "two"]
        assert len(a) == 2

    def test_module_level_decorator_registers_globally(self):
        name = "global_test_proc_unique"
        if not DEFAULT_REGISTRY.has(name):
            @procedure(name)
            def global_proc(ctx):
                return "ok"
        assert DEFAULT_REGISTRY.has(name)


class TestMessages:
    def test_request_message(self):
        msg = request_message("t1")
        assert msg == {"kind": KIND_REQUEST, "txid": "t1"}

    def test_execute_message(self):
        assert execute_message("t2")["kind"] == KIND_EXECUTE

    def test_result_message_fields(self):
        msg = result_message("t3", "aborted", error="boom", failed_path="/a", worker="w0")
        assert msg["kind"] == KIND_RESULT
        assert msg["outcome"] == "aborted"
        assert msg["error"] == "boom"
        assert msg["failed_path"] == "/a"
        assert msg["worker"] == "w0"


class TestTCloudProcedureRegistry:
    def test_all_expected_procedures_registered(self):
        registry = build_procedures()
        expected = {"spawnVM", "startVM", "stopVM", "destroyVM", "migrateVM",
                    "createVLAN", "deleteVLAN", "attachVMToVLAN"}
        assert expected <= set(registry.names())

    def test_disk_image_name(self):
        assert disk_image_name("web1") == "web1-disk"

    def test_destroy_vm_cleans_storage(self, model, schema):
        procedures = build_procedures()
        executor = LogicalExecutor(model, schema, procedures, ConstraintEngine(schema))
        spawn = Transaction("spawnVM", {
            "vm_name": "vm1", "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0", "mem_mb": 512,
        })
        assert executor.simulate(spawn).ok
        destroy = Transaction("destroyVM", {
            "vm_name": "vm1", "vm_host": "/vmRoot/vmHost0",
            "storage_host": "/storageRoot/storageHost0",
        })
        outcome = executor.simulate(destroy)
        assert outcome.ok
        assert not model.exists("/vmRoot/vmHost0/vm1")
        assert not model.exists("/storageRoot/storageHost0/vm1-disk")
        actions = [record.action for record in destroy.log]
        assert actions == ["stopVM", "removeVM", "unimportImage", "unexportImage", "removeImage"]

    def test_spawn_with_vlan_attachment(self, model, schema):
        procedures = build_procedures()
        executor = LogicalExecutor(model, schema, procedures, ConstraintEngine(schema))
        vlan = Transaction("createVLAN", {"router": "/netRoot/router0", "vlan_id": 7})
        assert executor.simulate(vlan).ok
        spawn = Transaction("spawnVM", {
            "vm_name": "vm1", "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0", "mem_mb": 512,
            "router": "/netRoot/router0", "vlan_id": 7,
        })
        assert executor.simulate(spawn).ok
        assert len(spawn.log) == 6
        assert spawn.log[5].action == "attachPort"
        assert model.get("/netRoot/router0/vlan7")["ports"] == ["vm1"]

    def test_migrate_of_stopped_vm_stays_stopped(self, model, schema):
        procedures = build_procedures()
        executor = LogicalExecutor(model, schema, procedures, ConstraintEngine(schema))
        spawn = Transaction("spawnVM", {
            "vm_name": "vm1", "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0", "mem_mb": 512,
        })
        stop = Transaction("stopVM", {"vm_host": "/vmRoot/vmHost0", "vm_name": "vm1"})
        migrate = Transaction("migrateVM", {
            "vm_name": "vm1", "src_host": "/vmRoot/vmHost0", "dst_host": "/vmRoot/vmHost1",
        })
        assert executor.simulate(spawn).ok
        assert executor.simulate(stop).ok
        assert executor.simulate(migrate).ok
        assert model.get("/vmRoot/vmHost1/vm1")["state"] == "stopped"
        # No startVM/stopVM records are needed for a stopped VM.
        actions = [record.action for record in migrate.log]
        assert "startVM" not in actions

    def test_migrate_to_same_host_rejected(self, model, schema):
        procedures = build_procedures()
        executor = LogicalExecutor(model, schema, procedures, ConstraintEngine(schema))
        spawn = Transaction("spawnVM", {
            "vm_name": "vm1", "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0", "mem_mb": 512,
        })
        assert executor.simulate(spawn).ok
        migrate = Transaction("migrateVM", {
            "vm_name": "vm1", "src_host": "/vmRoot/vmHost0", "dst_host": "/vmRoot/vmHost0",
        })
        assert not executor.simulate(migrate).ok
