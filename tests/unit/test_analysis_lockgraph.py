"""Unit tests for the static lock-order graph (repro.analysis.lockgraph)."""

from repro.analysis.core import index_from_sources as make_index
from repro.analysis.lockgraph import (
    RULE_CYCLE,
    RULE_NAME_MISMATCH,
    RULE_SELF_DEADLOCK,
    LockAnalysis,
    LockGraph,
    LockEdge,
    build_lock_graph,
)


def edge(src, dst):
    return LockEdge(src=src, dst=dst, function=None, lineno=0, via="")


class TestCycleDetection:
    def test_acyclic_graph_has_no_cycles(self):
        graph = LockGraph()
        graph.add_edge(edge("A", "B"))
        graph.add_edge(edge("B", "C"))
        graph.add_edge(edge("A", "C"))
        assert graph.cycles() == []

    def test_two_lock_cycle(self):
        graph = LockGraph()
        graph.add_edge(edge("A", "B"))
        graph.add_edge(edge("B", "A"))
        assert graph.cycles() == [("A", "B")]

    def test_three_lock_cycle_reported_once_canonically(self):
        graph = LockGraph()
        graph.add_edge(edge("B", "C"))
        graph.add_edge(edge("C", "A"))
        graph.add_edge(edge("A", "B"))
        assert graph.cycles() == [("A", "B", "C")]

    def test_self_loop(self):
        graph = LockGraph()
        graph.add_edge(edge("A", "A"))
        assert graph.cycles() == [("A",)]

    def test_disjoint_cycles_both_found(self):
        graph = LockGraph()
        for src, dst in [("A", "B"), ("B", "A"), ("X", "Y"), ("Y", "X")]:
            graph.add_edge(edge(src, dst))
        assert graph.cycles() == [("A", "B"), ("X", "Y")]


NESTED = '''
import threading

class Box:
    def __init__(self):
        self._a = threading.RLock()
        self._b = threading.Lock()

    def both(self):
        with self._a:
            with self._b:
                pass
'''

INVERTED = '''
import threading

class Box:
    def __init__(self):
        self._a = threading.RLock()
        self._b = threading.RLock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
'''

INTERPROCEDURAL = '''
import threading

class Inner:
    def __init__(self):
        self._lock = threading.RLock()

    def locked_op(self):
        with self._lock:
            return 1

class Outer:
    def __init__(self, inner: Inner):
        self.inner = inner
        self._mutex = threading.RLock()

    def drive(self):
        with self._mutex:
            self.inner.locked_op()
'''


class TestExtraction:
    def test_lexical_nesting_builds_edge(self):
        graph = build_lock_graph(make_index({"repro.fix.nested": NESTED}))
        assert graph.nodes == {"Box._a": "RLock", "Box._b": "Lock"}
        assert ("Box._a", "Box._b") in graph.edge_pairs()
        assert graph.cycles() == []

    def test_inverted_orders_report_cycle(self):
        index = make_index({"repro.fix.inverted": INVERTED})
        analysis = LockAnalysis(index)
        assert analysis.graph.cycles() == [("Box._a", "Box._b")]
        rules = [f.rule for f in analysis.findings()]
        assert RULE_CYCLE in rules

    def test_interprocedural_edge_through_typed_attribute(self):
        graph = build_lock_graph(make_index({"repro.fix.inter": INTERPROCEDURAL}))
        assert ("Outer._mutex", "Inner._lock") in graph.edge_pairs()
        edges = graph.edges[("Outer._mutex", "Inner._lock")]
        assert any("locked_op" in e.via for e in edges)


SELF_DEADLOCK = '''
import threading

class Box:
    def __init__(self):
        self._plain = threading.Lock()

    def re_enter(self):
        with self._plain:
            with self._plain:
                pass
'''

REENTRANT_OK = SELF_DEADLOCK.replace("threading.Lock()", "threading.RLock()")


class TestSelfDeadlock:
    def test_nested_plain_lock_is_flagged(self):
        analysis = LockAnalysis(make_index({"repro.fix.sd": SELF_DEADLOCK}))
        assert RULE_SELF_DEADLOCK in [f.rule for f in analysis.findings()]

    def test_nested_rlock_is_fine(self):
        analysis = LockAnalysis(make_index({"repro.fix.sd": REENTRANT_OK}))
        assert RULE_SELF_DEADLOCK not in [f.rule for f in analysis.findings()]


TRACED_WRONG = '''
import threading
from repro.analysis.recorder import traced

class Box:
    def __init__(self):
        self._a = traced(threading.RLock(), "Box._wrong_name")
'''

TRACED_RIGHT = TRACED_WRONG.replace("Box._wrong_name", "Box._a")


class TestTracedNames:
    def test_mismatched_traced_literal_is_flagged(self):
        analysis = LockAnalysis(make_index({"repro.fix.tr": TRACED_WRONG}))
        findings = [f for f in analysis.findings() if f.rule == RULE_NAME_MISMATCH]
        assert len(findings) == 1
        assert "Box._a" in findings[0].message

    def test_matching_traced_literal_is_silent(self):
        analysis = LockAnalysis(make_index({"repro.fix.tr": TRACED_RIGHT}))
        assert analysis.graph.nodes == {"Box._a": "RLock"}
        assert [f for f in analysis.findings() if f.rule == RULE_NAME_MISMATCH] == []
