"""Unit tests for copy-on-write data-model snapshots (PR 5 tentpole).

``DataModel.clone()`` is an O(1) structural fork: both trees share every
node, writers path-copy the spine to a mutated node and claim the mutation
target's subtree on first touch (``get_for_write``).  These tests pin the
ownership rules, the sharing invariants, and the byte-identity of frozen
snapshots.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import DataModelError, UnknownPathError
from repro.datamodel.node import Node
from repro.datamodel.tree import DataModel


def build_model(hosts: int = 3, vms_per_host: int = 2) -> DataModel:
    model = DataModel()
    model.create("/vmRoot", "vmRoot")
    model.create("/storageRoot", "storageRoot")
    for h in range(hosts):
        model.create(f"/vmRoot/host{h}", "vmHost", {"mem_mb": 4096, "imported_images": []})
        for v in range(vms_per_host):
            model.create(
                f"/vmRoot/host{h}/vm{v}", "vm", {"state": "stopped", "mem_mb": 256}
            )
    return model


def dumps(model: DataModel) -> str:
    return json.dumps(model.to_dict(), sort_keys=True)


class TestFork:
    def test_fork_shares_structure(self):
        model = build_model()
        fork = model.clone()
        # O(1): the fork points at the very same nodes until someone writes.
        assert fork.root is model.root
        assert fork.get("/vmRoot/host0") is model.get("/vmRoot/host0")

    def test_fork_serialises_identically(self):
        model = build_model()
        fork = model.clone()
        assert dumps(fork) == dumps(model)

    def test_mutating_original_leaves_fork_frozen(self):
        model = build_model()
        fork = model.clone()
        frozen = dumps(fork)
        model.set_attrs("/vmRoot/host0", mem_mb=1)
        model.create("/vmRoot/host9", "vmHost", {"mem_mb": 1})
        model.delete("/vmRoot/host1/vm0")
        assert dumps(fork) == frozen
        assert model.get("/vmRoot/host0")["mem_mb"] == 1

    def test_mutating_fork_leaves_original_frozen(self):
        model = build_model()
        frozen = dumps(model)
        fork = model.clone()
        fork.set_attrs("/vmRoot/host0", mem_mb=1)
        fork.delete("/vmRoot/host2", recursive=True)
        assert dumps(model) == frozen
        assert not fork.exists("/vmRoot/host2")

    def test_chained_forks_are_independent(self):
        model = build_model()
        forks = []
        for i in range(4):
            model.set_attrs("/vmRoot/host0", generation=i)
            forks.append((i, model.clone()))
        model.set_attrs("/vmRoot/host0", generation=99)
        for i, fork in forks:
            assert fork.get("/vmRoot/host0")["generation"] == i

    def test_fork_starts_all_dirty(self):
        model = build_model()
        model.clear_dirty()
        fork = model.clone()
        all_dirty, _, _ = fork.dirty_state()
        assert all_dirty  # first checkpoint of a fork must be full

    def test_fork_preserves_original_dirty_state(self):
        model = build_model()
        model.clear_dirty()
        model.set_attrs("/vmRoot/host1/vm0", state="running")
        model.clone()
        all_dirty, _, pairs = model.dirty_state()
        assert not all_dirty
        assert ("vmRoot", "host1") in pairs

    def test_deep_clone_shares_nothing(self):
        model = build_model()
        deep = model.deep_clone()
        assert deep.root is not model.root
        assert deep.get("/vmRoot/host0") is not model.get("/vmRoot/host0")
        assert dumps(deep) == dumps(model)


class TestGetForWrite:
    def test_unforked_model_writes_in_place(self):
        model = build_model()
        node = model.get("/vmRoot/host0")
        assert model.get_for_write("/vmRoot/host0") is node

    def test_claims_shared_subtree_once(self):
        model = build_model()
        fork = model.clone()
        shared = fork.get("/vmRoot/host0")
        claimed = model.get_for_write("/vmRoot/host0")
        assert claimed is not shared
        # Second write is in place: the subtree is owned now.
        assert model.get_for_write("/vmRoot/host0") is claimed
        # The fork still reaches the original node.
        assert fork.get("/vmRoot/host0") is shared

    def test_direct_node_mutation_after_claim_is_isolated(self):
        model = build_model()
        fork = model.clone()
        frozen = dumps(fork)
        host = model.get_for_write("/vmRoot/host0")
        # The action-simulation idiom: direct Node-API mutation of the
        # claimed subtree, including descendants.
        host["mem_mb"] = 1
        host.children["vm0"]["state"] = "running"
        host.add_child(Node("vm9", "vm", {"state": "stopped"}))
        host.remove_child("vm1")
        assert dumps(fork) == frozen
        assert model.get("/vmRoot/host0/vm0")["state"] == "running"
        assert model.exists("/vmRoot/host0/vm9")
        assert not model.exists("/vmRoot/host0/vm1")

    def test_unknown_path_raises(self):
        model = build_model()
        with pytest.raises(UnknownPathError):
            model.get_for_write("/vmRoot/ghost")

    def test_version_counter_advances(self):
        model = build_model()
        before = model.version
        model.get_for_write("/vmRoot/host0")
        model.set_attrs("/vmRoot/host0", mem_mb=2)
        assert model.version > before


class TestPathIntegrity:
    def test_paths_correct_in_both_trees_after_copy(self):
        model = build_model()
        fork = model.clone()
        model.set_attrs("/vmRoot/host0/vm0", state="running")
        # Spine was path-copied in the live tree; shared descendants keep
        # parent pointers into the old spine — names are identical, so the
        # reconstructed paths must agree in both trees.
        for tree in (model, fork):
            for path, node in tree.walk():
                assert str(node.path) == str(path)

    def test_deleted_shared_child_keeps_snapshot_path(self):
        model = build_model()
        fork = model.clone()
        model.delete("/vmRoot/host1", recursive=True)
        node = fork.get("/vmRoot/host1/vm0")
        assert str(node.path) == "/vmRoot/host1/vm0"

    def test_fenced_flag_is_per_tree(self):
        model = build_model()
        fork = model.clone()
        model.mark_inconsistent("/vmRoot/host0")
        assert model.is_fenced("/vmRoot/host0/vm0")
        assert not fork.is_fenced("/vmRoot/host0/vm0")
        model.clear_inconsistent("/vmRoot/host0")
        assert not model.is_fenced("/vmRoot/host0")


class TestSharedGrafts:
    def test_replace_subtree_with_shared_donor_does_not_mutate_donor(self):
        donor = build_model()
        donor_fork = donor.clone()
        view = build_model().clone()
        unit = donor_fork.get("/vmRoot/host1")
        donor_parent = unit.parent
        view.replace_subtree("/vmRoot/host1", unit)
        # The graft shares the node: the donor keeps its parent pointer and
        # its serialisation; the view serves the donor's content.
        assert unit.parent is donor_parent
        assert dumps(donor_fork) == dumps(donor)
        assert view.get("/vmRoot/host1") is unit

    def test_mutating_view_after_graft_leaves_donor_frozen(self):
        donor = build_model().clone()
        frozen = dumps(donor)
        view = build_model().clone()
        view.replace_subtree("/vmRoot/host1", donor.get("/vmRoot/host1"))
        view.set_attrs("/vmRoot/host1/vm0", state="running")
        assert dumps(donor) == frozen
        assert view.get("/vmRoot/host1/vm0")["state"] == "running"

    def test_shared_graft_under_different_name_copies_head(self):
        donor = build_model().clone()
        view = build_model().clone()
        head = donor.get("/vmRoot/host1")
        view.replace_subtree("/vmRoot/renamed", view_head := head)
        assert view.get("/vmRoot/renamed").name == "renamed"
        # The donor's node kept its own name: the rename landed on a copy.
        assert view_head.name == "host1"


class TestApiCompatibility:
    def test_create_duplicate_still_raises(self):
        model = build_model().clone()
        with pytest.raises(DataModelError):
            model.create("/vmRoot/host0", "vmHost")

    def test_delete_with_children_still_guarded(self):
        model = build_model().clone()
        with pytest.raises(DataModelError):
            model.delete("/vmRoot/host0")

    def test_owned_delete_detaches_parent(self):
        model = build_model()
        child = model.delete("/vmRoot/host0/vm0")
        assert child.parent is None
