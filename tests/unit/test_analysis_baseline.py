"""Baseline mechanics, waiver enforcement, and the repo-tree self-check:
the checked-in tree must be clean, its baseline byte-for-byte
reproducible, its lock graph acyclic, and every rule documented."""

import json
from pathlib import Path

import pytest

from repro.analysis import rules
from repro.analysis.baseline import Baseline, diff_against_baseline
from repro.analysis.checkers import RULE_WAIVER, run_checkers
from repro.analysis.core import Finding, Waiver, index_from_sources, load_index
from repro.analysis.lockgraph import build_lock_graph

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "analysis" / "baseline.json"


def finding(rule="blocking-under-lock", module="repro.fix.m", qual="C.f", detail="C._l"):
    return Finding(
        rule=rule, module=module, qualname=qual, lineno=10,
        message="fixture finding", detail=detail,
    )


class TestBaselineMechanics:
    def test_keys_are_stable_across_line_moves(self):
        a = finding()
        b = finding()
        b.lineno = 99
        assert a.key == b.key

    def test_new_finding_is_drift(self):
        diff = diff_against_baseline([finding()], Baseline())
        assert not diff.clean
        assert [f.key for f in diff.new] == [finding().key]

    def test_stale_entry_is_drift(self):
        baseline = Baseline(entries={"gone::m::q::d": {"justification": "old"}})
        diff = diff_against_baseline([], baseline)
        assert not diff.clean
        assert diff.stale == ["gone::m::q::d"]

    def test_baselined_finding_with_justification_is_clean(self):
        f = finding()
        baseline = Baseline(entries={f.key: {"justification": "known, tracked"}})
        assert diff_against_baseline([f], baseline).clean

    def test_baselined_finding_without_justification_is_drift(self):
        f = finding()
        baseline = Baseline(entries={f.key: {"justification": ""}})
        diff = diff_against_baseline([f], baseline)
        assert diff.missing_justification == [f.key]

    def test_waived_findings_never_enter_the_baseline(self):
        f = finding()
        f.waiver = Waiver(rules=(f.rule,), justification="x", lineno=1)
        baseline = Baseline.from_findings([f])
        assert baseline.entries == {}

    def test_serialization_round_trips(self, tmp_path):
        baseline = Baseline(entries={"k::m::q::d": {"justification": "why"}})
        path = tmp_path / "b.json"
        baseline.save(path)
        assert Baseline.load(path).entries == baseline.entries
        assert baseline.serialize() == path.read_text(encoding="utf-8")


WAIVER_NO_WHY = '''
import threading

class Proxy:
    def __init__(self, client):
        self.client = client
        self._lock = threading.Lock()

    def fetch(self):
        with self._lock:  # repro: allow(blocking-under-lock)
            return self.client.get_data("/a")
'''


class TestWaiverEnforcement:
    def test_waiver_without_justification_is_itself_a_finding(self):
        findings = run_checkers(
            index_from_sources({"repro.fix.w": WAIVER_NO_WHY}), only=["blocking"]
        )
        rules_seen = sorted(f.rule for f in findings)
        assert rules_seen == ["blocking-under-lock", RULE_WAIVER]
        waived = [f for f in findings if f.rule == "blocking-under-lock"]
        assert waived[0].waived  # suppressed ...
        nojust = [f for f in findings if f.rule == RULE_WAIVER]
        assert not nojust[0].waived  # ... but the missing justification is not


@pytest.fixture(scope="module")
def repo_index():
    return load_index(REPO_ROOT / "src" / "repro")


class TestRepoTreeSelfCheck:
    def test_repo_is_clean_against_checked_in_baseline(self, repo_index):
        findings = run_checkers(repo_index)
        diff = diff_against_baseline(findings, Baseline.load(BASELINE_PATH))
        assert diff.clean, (
            "analysis drift:"
            + "".join(f"\n  NEW {f.key}" for f in diff.new)
            + "".join(f"\n  STALE {key}" for key in diff.stale)
            + "".join(f"\n  NOJUST {key}" for key in diff.missing_justification)
        )

    def test_every_waiver_carries_a_justification(self, repo_index):
        findings = run_checkers(repo_index)
        for f in findings:
            if f.waived:
                assert f.waiver.justification.strip(), (
                    f"waiver without justification at {f.location()}"
                )

    def test_checked_in_baseline_is_byte_for_byte_regenerable(self, repo_index):
        findings = run_checkers(repo_index)
        regenerated = Baseline.from_findings(findings)
        # Carry over checked-in justifications for keys that still exist,
        # exactly like --write-baseline followed by a human edit.
        checked_in = Baseline.load(BASELINE_PATH)
        for key, entry in checked_in.entries.items():
            if key in regenerated.entries:
                regenerated.entries[key] = entry
        assert regenerated.serialize() == BASELINE_PATH.read_text(encoding="utf-8")

    def test_static_lock_graph_has_no_unwaived_cycles(self, repo_index):
        graph = build_lock_graph(repo_index)
        assert graph.cycles() == [], f"lock-order cycles: {graph.cycles()}"

    def test_baseline_json_is_sorted_and_versioned(self):
        data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        assert data["version"] == 1
        keys = list(data["findings"])
        assert keys == sorted(keys)


class TestRuleCatalog:
    def test_every_rule_id_is_documented(self):
        catalog = (REPO_ROOT / "docs" / "development.md").read_text(encoding="utf-8")
        for rule_id in rules.ALL_RULES:
            assert f"`{rule_id}`" in catalog, (
                f"rule {rule_id} missing from docs/development.md"
            )

    def test_checker_rule_constants_are_all_registered(self):
        from repro.analysis import checkers, lockgraph

        emitted = {
            checkers.RULE_BLOCKING,
            checkers.RULE_COW,
            checkers.RULE_KV,
            checkers.RULE_STATE_ASSIGN,
            checkers.RULE_STATE_EDGE,
            checkers.RULE_SWALLOW,
            checkers.RULE_WOUND,
            checkers.RULE_ACK,
            checkers.RULE_WAIVER,
            lockgraph.RULE_CYCLE,
            lockgraph.RULE_SELF_DEADLOCK,
            lockgraph.RULE_NAME_MISMATCH,
        }
        assert emitted == set(rules.ALL_RULES)
