"""Unit tests for the mock device drivers and the device registry."""

import pytest

from repro.common.errors import DeviceError, DeviceTimeout
from repro.drivers.base import action_to_method
from repro.drivers.compute import ComputeHostDevice
from repro.drivers.faults import FaultInjector, FaultRule
from repro.drivers.network import RouterDevice
from repro.drivers.registry import DeviceRegistry
from repro.drivers.storage import StorageHostDevice


class TestActionNameMapping:
    @pytest.mark.parametrize(
        "action,method",
        [
            ("cloneImage", "clone_image"),
            ("exportImage", "export_image"),
            ("unexportImage", "unexport_image"),
            ("importImage", "import_image"),
            ("unimportImage", "unimport_image"),
            ("createVM", "create_vm"),
            ("removeVM", "remove_vm"),
            ("startVM", "start_vm"),
            ("stopVM", "stop_vm"),
            ("createVlan", "create_vlan"),
            ("attachPort", "attach_port"),
        ],
    )
    def test_camel_to_snake(self, action, method):
        assert action_to_method(action) == method


class TestComputeHost:
    @pytest.fixture
    def host(self):
        host = ComputeHostDevice("host0", mem_mb=2048)
        host.import_image("disk1")
        return host

    def test_create_and_start_vm(self, host):
        host.create_vm("vm1", "disk1", 1024)
        assert host.vm_state("vm1") == "stopped"
        host.start_vm("vm1")
        assert host.vm_state("vm1") == "running"
        assert host.memory_used() == 1024

    def test_create_requires_imported_image(self, host):
        with pytest.raises(DeviceError):
            host.create_vm("vm1", "missing-image")

    def test_duplicate_vm_rejected(self, host):
        host.create_vm("vm1", "disk1")
        with pytest.raises(DeviceError):
            host.create_vm("vm1", "disk1")

    def test_start_respects_memory_capacity(self, host):
        host.create_vm("vm1", "disk1", 1500)
        host.create_vm("vm2", "disk1", 1500)
        host.start_vm("vm1")
        with pytest.raises(DeviceError):
            host.start_vm("vm2")

    def test_remove_running_vm_rejected(self, host):
        host.create_vm("vm1", "disk1")
        host.start_vm("vm1")
        with pytest.raises(DeviceError):
            host.remove_vm("vm1")
        host.stop_vm("vm1")
        host.remove_vm("vm1")
        assert host.vm_state("vm1") is None

    def test_invoke_by_action_name(self, host):
        host.invoke("createVM", ["vm1", "disk1", 512])
        host.invoke("startVM", ["vm1"])
        assert host.vm_state("vm1") == "running"
        assert [a for a, _ in host.call_log] == ["createVM", "startVM"]

    def test_invoke_unknown_action(self, host):
        with pytest.raises(DeviceError):
            host.invoke("explodeVM", ["vm1"])

    def test_offline_device_rejects_calls(self, host):
        host.go_offline()
        with pytest.raises(DeviceError):
            host.invoke("importImage", ["x"])
        host.go_online()
        host.invoke("importImage", ["x"])

    def test_power_cycle_stops_all_vms(self, host):
        host.create_vm("vm1", "disk1")
        host.start_vm("vm1")
        host.power_cycle()
        assert host.vm_state("vm1") == "stopped"

    def test_describe_matches_state(self, host):
        host.create_vm("vm1", "disk1", 256)
        node = host.describe()
        assert node.entity_type == "vmHost"
        assert node.child("vm1")["mem_mb"] == 256
        assert node.child("vm1")["hypervisor"] == host.hypervisor


class TestStorageHost:
    @pytest.fixture
    def storage(self):
        storage = StorageHostDevice("stor0", capacity_gb=20.0)
        storage.add_template("template", size_gb=8.0)
        return storage

    def test_clone_and_export(self, storage):
        storage.clone_image("template", "vm1-disk")
        storage.export_image("vm1-disk")
        assert storage.images["vm1-disk"]["exported"] is True
        assert storage.used_gb() == 16.0

    def test_clone_unknown_template(self, storage):
        with pytest.raises(DeviceError):
            storage.clone_image("missing", "vm1-disk")

    def test_clone_over_capacity(self, storage):
        storage.clone_image("template", "a")
        with pytest.raises(DeviceError):
            storage.clone_image("template", "b")  # 24 GB > 20 GB

    def test_remove_exported_image_rejected(self, storage):
        storage.clone_image("template", "a")
        storage.export_image("a")
        with pytest.raises(DeviceError):
            storage.remove_image("a")
        storage.unexport_image("a")
        storage.remove_image("a")
        assert not storage.has_image("a")

    def test_describe_lists_images(self, storage):
        storage.clone_image("template", "a")
        node = storage.describe()
        assert sorted(node.children) == ["a", "template"]
        assert node.child("template")["template"] is True


class TestRouter:
    @pytest.fixture
    def router(self):
        return RouterDevice("r0", max_vlans=10)

    def test_create_attach_detach_delete(self, router):
        router.create_vlan(5, "blue")
        router.attach_port(5, "vm1")
        assert router.vlans[5]["ports"] == ["vm1"]
        with pytest.raises(DeviceError):
            router.delete_vlan(5)
        router.detach_port(5, "vm1")
        router.delete_vlan(5)
        assert not router.has_vlan(5)

    def test_vlan_id_range_enforced(self, router):
        with pytest.raises(DeviceError):
            router.create_vlan(99)

    def test_duplicate_vlan_rejected(self, router):
        router.create_vlan(5)
        with pytest.raises(DeviceError):
            router.create_vlan(5)

    def test_describe(self, router):
        router.create_vlan(3)
        node = router.describe()
        assert node.child("vlan3")["vlan_id"] == 3


class TestFaultInjection:
    def test_fail_next_fires_once(self):
        host = ComputeHostDevice("h", mem_mb=1024)
        host.faults.fail_next("importImage")
        with pytest.raises(DeviceError):
            host.invoke("importImage", ["x"])
        host.invoke("importImage", ["x"])  # second call succeeds

    def test_fail_always(self):
        host = ComputeHostDevice("h")
        host.faults.fail_always("startVM")
        host.import_image("d")
        host.create_vm("vm1", "d")
        with pytest.raises(DeviceError):
            host.invoke("startVM", ["vm1"])
        with pytest.raises(DeviceError):
            host.invoke("startVM", ["vm1"])

    def test_wildcard_rule(self):
        injector = FaultInjector()
        injector.fail_next("*")
        with pytest.raises(DeviceError):
            injector.check("dev", "anything")

    def test_timeout_rule(self):
        injector = FaultInjector()
        injector.timeout_next("slowOp")
        with pytest.raises(DeviceTimeout):
            injector.check("dev", "slowOp")

    def test_probability_zero_never_fires(self):
        injector = FaultInjector(seed=1)
        injector.add_rule(FaultRule(action="*", probability=0.0, remaining=None))
        for _ in range(50):
            assert injector.check("dev", "op") is None

    def test_probabilistic_rule_is_deterministic_for_seed(self):
        def run(seed):
            injector = FaultInjector(seed=seed)
            injector.fail_with_probability(0.5, "op")
            fired = 0
            for _ in range(100):
                try:
                    injector.check("dev", "op")
                except DeviceError:
                    fired += 1
            return fired

        assert run(7) == run(7)

    def test_clear_removes_rules(self):
        injector = FaultInjector()
        injector.fail_always("*")
        injector.clear()
        assert injector.check("dev", "op") is None

    def test_hang_and_release(self):
        device = ComputeHostDevice("h")
        device.faults.hang_next("importImage")
        device.release_hang()  # pre-release so the call does not block the test
        device.invoke("importImage", ["x"])
        assert "x" in device.imported_images

    def test_each_hang_consumes_one_permit(self):
        device = ComputeHostDevice("h")
        device.release_hang()
        device.release_hang()  # two permits for two future hangs
        device.faults.add_rule(FaultRule(action="importImage", remaining=2, kind="hang"))
        device.invoke("importImage", ["x"])
        device.invoke("importImage", ["y"])  # must not deadlock
        assert {"x", "y"} <= set(device.imported_images)


class TestDeviceRegistry:
    @pytest.fixture
    def registry(self):
        registry = DeviceRegistry()
        registry.register_container("/vmRoot", "vmRoot")
        registry.register("/vmRoot/host0", ComputeHostDevice("host0"))
        registry.register("/vmRoot/host1", ComputeHostDevice("host1"))
        return registry

    def test_lookup_exact_and_ancestor(self, registry):
        path, device = registry.lookup("/vmRoot/host0")
        assert device.name == "host0"
        path, device = registry.lookup("/vmRoot/host1/vm3")
        assert device.name == "host1"
        assert str(path) == "/vmRoot/host1"

    def test_lookup_missing_raises(self, registry):
        with pytest.raises(DeviceError):
            registry.lookup("/storageRoot/host9")

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(DeviceError):
            registry.register("/vmRoot/host0", ComputeHostDevice("dup"))

    def test_build_physical_model(self, registry):
        registry.device_at("/vmRoot/host0").import_image("d")
        registry.device_at("/vmRoot/host0").create_vm("vm1", "d")
        model = registry.build_physical_model()
        assert model.exists("/vmRoot/host0/vm1")
        assert model.get("/vmRoot").entity_type == "vmRoot"

    def test_offline_device_excluded_from_physical_model(self, registry):
        registry.device_at("/vmRoot/host1").go_offline()
        model = registry.build_physical_model()
        assert not model.exists("/vmRoot/host1")
        assert model.exists("/vmRoot/host0")

    def test_unregister(self, registry):
        assert registry.unregister("/vmRoot/host1") is not None
        assert registry.device_at("/vmRoot/host1") is None
        assert len(registry) == 1
