"""Unit tests for the multi-granularity lock manager (§3.1.3)."""


from repro.core.locks import COMPATIBLE, LockManager, LockMode, compatible
from repro.core.txn import ReadWriteSet
from repro.datamodel.path import ResourcePath


def rwset(reads=(), writes=(), constraint_reads=()):
    rw = ReadWriteSet()
    for path in reads:
        rw.record_read(path)
    for path in writes:
        rw.record_write(path)
    for path in constraint_reads:
        rw.record_constraint_read(path)
    return rw


class TestCompatibilityMatrix:
    def test_matrix_is_total(self):
        assert len(COMPATIBLE) == 16

    def test_paper_footnote_iw_conflicts_with_r_and_w(self):
        assert not compatible(LockMode.IW, LockMode.R)
        assert not compatible(LockMode.IW, LockMode.W)
        assert not compatible(LockMode.R, LockMode.IW)
        assert not compatible(LockMode.W, LockMode.IW)

    def test_paper_footnote_ir_conflicts_with_w_only(self):
        assert not compatible(LockMode.IR, LockMode.W)
        assert compatible(LockMode.IR, LockMode.R)
        assert compatible(LockMode.IR, LockMode.IW)
        assert compatible(LockMode.IR, LockMode.IR)

    def test_read_locks_are_shared(self):
        assert compatible(LockMode.R, LockMode.R)

    def test_write_locks_are_exclusive(self):
        for mode in LockMode:
            assert not compatible(LockMode.W, mode)


class TestLockRequestExpansion:
    def test_write_implies_iw_on_ancestors(self):
        requests = LockManager.requests_for(rwset(writes=["/vmRoot/host1/vm1"]))
        assert requests[ResourcePath.parse("/vmRoot/host1/vm1")] is LockMode.W
        assert requests[ResourcePath.parse("/vmRoot/host1")] is LockMode.IW
        assert requests[ResourcePath.parse("/vmRoot")] is LockMode.IW
        assert requests[ResourcePath.parse("/")] is LockMode.IW

    def test_read_implies_ir_on_ancestors(self):
        requests = LockManager.requests_for(rwset(reads=["/a/b"]))
        assert requests[ResourcePath.parse("/a/b")] is LockMode.R
        assert requests[ResourcePath.parse("/a")] is LockMode.IR

    def test_constraint_reads_take_r_locks(self):
        requests = LockManager.requests_for(rwset(constraint_reads=["/vmRoot/host1"]))
        assert requests[ResourcePath.parse("/vmRoot/host1")] is LockMode.R

    def test_stronger_mode_wins(self):
        requests = LockManager.requests_for(
            rwset(reads=["/a/b"], writes=["/a/b"], constraint_reads=["/a"])
        )
        assert requests[ResourcePath.parse("/a/b")] is LockMode.W
        # /a is both an IW ancestor of a write and an explicit R constraint
        # read; R is stronger than IW in our ordering.
        assert requests[ResourcePath.parse("/a")] in (LockMode.R, LockMode.W)


class TestConflictDetection:
    def test_writes_to_same_object_conflict(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/a/b"])) is None
        conflict = manager.try_acquire("t2", rwset(writes=["/a/b"]))
        assert conflict is not None
        assert conflict.holder == "t1"

    def test_writes_to_sibling_objects_do_not_conflict(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/vmRoot/host1"])) is None
        assert manager.try_acquire("t2", rwset(writes=["/vmRoot/host2"])) is None

    def test_reads_share(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(reads=["/a"])) is None
        assert manager.try_acquire("t2", rwset(reads=["/a"])) is None

    def test_read_blocks_descendant_write(self):
        # The constraint-ancestor R lock makes the whole subtree read-only
        # to concurrent writers (§3.1.3).
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(constraint_reads=["/vmRoot/host1"])) is None
        conflict = manager.try_acquire("t2", rwset(writes=["/vmRoot/host1/vm2"]))
        assert conflict is not None

    def test_write_blocks_ancestor_read(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/vmRoot/host1/vm1"])) is None
        conflict = manager.try_acquire("t2", rwset(reads=["/vmRoot/host1"]))
        assert conflict is not None

    def test_same_transaction_never_conflicts_with_itself(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/a"])) is None
        assert manager.find_conflict("t1", manager.requests_for(rwset(writes=["/a"]))) is None

    def test_conflicts_counter_increases(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        manager.try_acquire("t2", rwset(writes=["/a"]))
        assert manager.conflicts_detected >= 1


class TestReleaseAndIntrospection:
    def test_release_allows_waiting_transaction(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        assert manager.try_acquire("t2", rwset(writes=["/a"])) is not None
        released = manager.release_all("t1")
        assert released > 0
        assert manager.try_acquire("t2", rwset(writes=["/a"])) is None

    def test_release_unknown_transaction_is_noop(self):
        assert LockManager().release_all("ghost") == 0

    def test_holders_and_locks_of(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a/b"]))
        assert "t1" in manager.holders("/a/b")
        assert ResourcePath.parse("/a/b") in manager.locks_of("t1")
        assert manager.active_transactions() == {"t1"}

    def test_clear(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        manager.clear()
        assert manager.total_locked_paths() == 0
        assert manager.active_transactions() == set()


class TestCompatibilityMatrixExhaustive:
    """Exhaustive 4x4 property test of the compatibility matrix (PR 1).

    The expected value for every pair is *derived* from first principles of
    multi-granularity locking rather than restated, so a regression in the
    matrix cannot be masked by editing the table: a held mode conflicts
    with a requested mode iff the data either lock actually covers can
    overlap and at least one side writes.
    """

    @staticmethod
    def _expected(held: LockMode, requested: LockMode) -> bool:
        # W is exclusive against everything (covers the whole subtree).
        if LockMode.W in (held, requested):
            return False
        # IW (some descendant is being written) conflicts with R (the whole
        # subtree must stay read-only), in both directions.
        if {held, requested} == {LockMode.IW, LockMode.R}:
            return False
        # IR/IR, IR/IW, IW/IW, IR/R, R/R are all compatible.
        return True

    def test_full_4x4_matrix(self):
        for held in LockMode:
            for requested in LockMode:
                assert COMPATIBLE[(held, requested)] == self._expected(held, requested), (
                    held, requested
                )

    def test_matrix_is_symmetric(self):
        for held in LockMode:
            for requested in LockMode:
                assert COMPATIBLE[(held, requested)] == COMPATIBLE[(requested, held)]

    def test_compatible_function_matches_matrix(self):
        for held in LockMode:
            for requested in LockMode:
                assert compatible(held, requested) == COMPATIBLE[(held, requested)]


class TestAggregateConflictDetection:
    """The O(1) mode-count fast path must agree with a naive holder scan."""

    @staticmethod
    def _naive_conflict(manager, txid, requests):
        for path, requested in requests.items():
            for holder, modes in manager.holders(path).items():
                if holder == txid:
                    continue
                for held in modes:
                    if not compatible(held, requested):
                        return True
        return False

    def _random_rwset(self, rng):
        paths = [f"/a/b{rng.randrange(3)}/c{rng.randrange(3)}",
                 f"/a/b{rng.randrange(3)}"]
        rw = ReadWriteSet()
        for path in paths:
            if rng.random() < 0.5:
                rw.record_write(path)
            else:
                rw.record_read(path)
        return rw

    def test_fast_path_matches_naive_scan_over_random_workload(self):
        import random

        rng = random.Random(1234)
        manager = LockManager()
        held_txids = []
        for step in range(400):
            txid = f"t{step}"
            rw = self._random_rwset(rng)
            requests = LockManager.requests_for(rw)
            naive = self._naive_conflict(manager, txid, requests)
            fast = manager.find_conflict(txid, requests) is not None
            assert fast == naive, (step, requests)
            if not fast:
                manager.acquire(txid, requests)
                held_txids.append(txid)
            if held_txids and rng.random() < 0.4:
                manager.release_all(held_txids.pop(rng.randrange(len(held_txids))))
        # Drain and verify the aggregates empty out with the locks.
        for txid in held_txids:
            manager.release_all(txid)
        assert manager.total_locked_paths() == 0
        assert manager.active_transactions() == set()
