"""Unit tests for the multi-granularity lock manager (§3.1.3)."""

import pytest

from repro.core.locks import COMPATIBLE, LockManager, LockMode, compatible
from repro.core.txn import ReadWriteSet
from repro.datamodel.path import ResourcePath


def rwset(reads=(), writes=(), constraint_reads=()):
    rw = ReadWriteSet()
    for path in reads:
        rw.record_read(path)
    for path in writes:
        rw.record_write(path)
    for path in constraint_reads:
        rw.record_constraint_read(path)
    return rw


class TestCompatibilityMatrix:
    def test_matrix_is_total(self):
        assert len(COMPATIBLE) == 16

    def test_paper_footnote_iw_conflicts_with_r_and_w(self):
        assert not compatible(LockMode.IW, LockMode.R)
        assert not compatible(LockMode.IW, LockMode.W)
        assert not compatible(LockMode.R, LockMode.IW)
        assert not compatible(LockMode.W, LockMode.IW)

    def test_paper_footnote_ir_conflicts_with_w_only(self):
        assert not compatible(LockMode.IR, LockMode.W)
        assert compatible(LockMode.IR, LockMode.R)
        assert compatible(LockMode.IR, LockMode.IW)
        assert compatible(LockMode.IR, LockMode.IR)

    def test_read_locks_are_shared(self):
        assert compatible(LockMode.R, LockMode.R)

    def test_write_locks_are_exclusive(self):
        for mode in LockMode:
            assert not compatible(LockMode.W, mode)


class TestLockRequestExpansion:
    def test_write_implies_iw_on_ancestors(self):
        requests = LockManager.requests_for(rwset(writes=["/vmRoot/host1/vm1"]))
        assert requests[ResourcePath.parse("/vmRoot/host1/vm1")] is LockMode.W
        assert requests[ResourcePath.parse("/vmRoot/host1")] is LockMode.IW
        assert requests[ResourcePath.parse("/vmRoot")] is LockMode.IW
        assert requests[ResourcePath.parse("/")] is LockMode.IW

    def test_read_implies_ir_on_ancestors(self):
        requests = LockManager.requests_for(rwset(reads=["/a/b"]))
        assert requests[ResourcePath.parse("/a/b")] is LockMode.R
        assert requests[ResourcePath.parse("/a")] is LockMode.IR

    def test_constraint_reads_take_r_locks(self):
        requests = LockManager.requests_for(rwset(constraint_reads=["/vmRoot/host1"]))
        assert requests[ResourcePath.parse("/vmRoot/host1")] is LockMode.R

    def test_stronger_mode_wins(self):
        requests = LockManager.requests_for(
            rwset(reads=["/a/b"], writes=["/a/b"], constraint_reads=["/a"])
        )
        assert requests[ResourcePath.parse("/a/b")] is LockMode.W
        # /a is both an IW ancestor of a write and an explicit R constraint
        # read; R is stronger than IW in our ordering.
        assert requests[ResourcePath.parse("/a")] in (LockMode.R, LockMode.W)


class TestConflictDetection:
    def test_writes_to_same_object_conflict(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/a/b"])) is None
        conflict = manager.try_acquire("t2", rwset(writes=["/a/b"]))
        assert conflict is not None
        assert conflict.holder == "t1"

    def test_writes_to_sibling_objects_do_not_conflict(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/vmRoot/host1"])) is None
        assert manager.try_acquire("t2", rwset(writes=["/vmRoot/host2"])) is None

    def test_reads_share(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(reads=["/a"])) is None
        assert manager.try_acquire("t2", rwset(reads=["/a"])) is None

    def test_read_blocks_descendant_write(self):
        # The constraint-ancestor R lock makes the whole subtree read-only
        # to concurrent writers (§3.1.3).
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(constraint_reads=["/vmRoot/host1"])) is None
        conflict = manager.try_acquire("t2", rwset(writes=["/vmRoot/host1/vm2"]))
        assert conflict is not None

    def test_write_blocks_ancestor_read(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/vmRoot/host1/vm1"])) is None
        conflict = manager.try_acquire("t2", rwset(reads=["/vmRoot/host1"]))
        assert conflict is not None

    def test_same_transaction_never_conflicts_with_itself(self):
        manager = LockManager()
        assert manager.try_acquire("t1", rwset(writes=["/a"])) is None
        assert manager.find_conflict("t1", manager.requests_for(rwset(writes=["/a"]))) is None

    def test_conflicts_counter_increases(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        manager.try_acquire("t2", rwset(writes=["/a"]))
        assert manager.conflicts_detected >= 1


class TestReleaseAndIntrospection:
    def test_release_allows_waiting_transaction(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        assert manager.try_acquire("t2", rwset(writes=["/a"])) is not None
        released = manager.release_all("t1")
        assert released > 0
        assert manager.try_acquire("t2", rwset(writes=["/a"])) is None

    def test_release_unknown_transaction_is_noop(self):
        assert LockManager().release_all("ghost") == 0

    def test_holders_and_locks_of(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a/b"]))
        assert "t1" in manager.holders("/a/b")
        assert ResourcePath.parse("/a/b") in manager.locks_of("t1")
        assert manager.active_transactions() == {"t1"}

    def test_clear(self):
        manager = LockManager()
        manager.try_acquire("t1", rwset(writes=["/a"]))
        manager.clear()
        assert manager.total_locked_paths() == 0
        assert manager.active_transactions() == set()
