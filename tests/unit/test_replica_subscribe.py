"""Unit tests for per-subtree delta subscriptions on read replicas (PR 5).

``ReadReplica.subscribe(path)`` delivers the committed execution-log
records touching one subtree, derived from the applied-log entries the
replica already tails — zero extra coordination operations — with
``resync`` events whenever a checkpoint truncated deltas away.
"""

from __future__ import annotations

from repro.common.config import TropicConfig
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.replica import EVENT_DELTA, EVENT_RESYNC, ReadReplica
from repro.testing import ShardedCluster


def _replica_for(cluster: ShardedCluster, shard: int = 0) -> ReadReplica:
    store = TropicStore(KVStore(cluster.client, f"/tropic/store/shard-{shard}"))
    return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)


def _cluster(**kwargs) -> ShardedCluster:
    return ShardedCluster(
        num_shards=1, config=TropicConfig(checkpoint_every=100_000), **kwargs
    )


HOST0 = "/vmRoot/vmHost0"
HOST1 = "/vmRoot/vmHost1"


class TestSubscribe:
    def test_deltas_cover_only_the_subscribed_subtree(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        cluster.submit_spawn("inside", host_index=0)
        cluster.submit_spawn("outside", host_index=1)
        cluster.drain()
        events = sub.poll()
        assert events, "commits under the subscribed subtree must be delivered"
        assert all(event.kind == EVENT_DELTA for event in events)
        assert all(event.path.startswith(HOST0) for event in events)
        # A spawn's log touches the VM host (importImage/createVM/startVM).
        assert {"createVM", "startVM"} <= {event.action for event in events}
        assert all(event.txid for event in events)

    def test_root_subscription_sees_everything(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe("/")
        cluster.submit_spawn("a", host_index=0)
        cluster.submit_spawn("b", host_index=1)
        cluster.drain()
        paths = {event.path for event in sub.poll()}
        assert any(path.startswith(HOST0) for path in paths)
        assert any(path.startswith(HOST1) for path in paths)

    def test_deltas_arrive_in_commit_order_with_watermarks(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe(HOST0)
        for index in range(3):
            cluster.submit_spawn(f"vm{index}", host_index=0)
            cluster.drain()
        events = sub.poll()
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert sub.last_seq == seqs[-1]

    def test_subscription_starts_at_current_watermark(self):
        """Commits before subscribe() are not replayed as deltas — the
        subscriber initialises from snapshot() instead."""
        cluster = _cluster()
        cluster.submit_spawn("early", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        assert sub.poll() == []
        model, watermark = replica.snapshot()
        assert watermark == sub.last_seq
        assert model.exists(f"{HOST0}/early")

    def test_callback_delivery(self):
        cluster = _cluster()
        received: list = []
        sub = _replica_for(cluster).subscribe(HOST0, callback=received.extend)
        cluster.submit_spawn("cb", host_index=0)
        cluster.drain()
        sub.poll()
        assert received and all(event.kind == EVENT_DELTA for event in received)

    def test_idle_poll_is_free(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe(HOST0)
        cluster.submit_spawn("warm", host_index=0)
        cluster.drain()
        sub.poll()
        ops_before = cluster.ensemble.op_count
        for _ in range(50):
            assert sub.poll() == []
        assert cluster.ensemble.op_count == ops_before

    def test_resync_after_checkpoint_truncation(self):
        """A replica that re-bootstraps over a truncation gap cannot
        reconstruct the missed per-record deltas; the subscriber gets a
        resync event carrying the new watermark instead."""
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        cluster.submit_spawn("one", host_index=0)
        cluster.drain()
        # Checkpoint truncates the applied log while the replica lags.
        assert cluster.controllers[0].checkpoint()
        cluster.submit_spawn("two", host_index=0)
        cluster.drain()
        assert cluster.controllers[0].checkpoint()
        events = sub.poll()
        kinds = [event.kind for event in events]
        assert EVENT_RESYNC in kinds
        resync = [event for event in events if event.kind == EVENT_RESYNC][-1]
        assert resync.seq == replica.applied_txn
        # The snapshot after resync reflects everything.
        model, _ = replica.snapshot()
        assert model.exists(f"{HOST0}/one") and model.exists(f"{HOST0}/two")

    def test_unsubscribe_stops_delivery(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        sub.close()
        cluster.submit_spawn("late", host_index=0)
        cluster.drain()
        replica.refresh()
        assert sub.pending() == 0
        assert replica.subscriptions() == []

    def test_delivery_stats(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        replica.subscribe(HOST0)
        cluster.submit_spawn("s", host_index=0)
        cluster.drain()
        replica.refresh()
        assert replica.stats["deltas_delivered"] > 0
