"""Unit tests for per-subtree delta subscriptions on read replicas (PR 5).

``ReadReplica.subscribe(path)`` delivers the committed execution-log
records touching one subtree, derived from the applied-log entries the
replica already tails — zero extra coordination operations — with
``resync`` events whenever a checkpoint truncated deltas away.
"""

from __future__ import annotations

from repro.common.config import TropicConfig
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.replica import (
    EVENT_BARRIER,
    EVENT_DELTA,
    EVENT_RESYNC,
    ReadReplica,
    Subscription,
    SubtreeDelta,
)
from repro.testing import ShardedCluster


def _replica_for(cluster: ShardedCluster, shard: int = 0) -> ReadReplica:
    store = TropicStore(KVStore(cluster.client, f"/tropic/store/shard-{shard}"))
    return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)


def _cluster(**kwargs) -> ShardedCluster:
    return ShardedCluster(
        num_shards=1, config=TropicConfig(checkpoint_every=100_000), **kwargs
    )


HOST0 = "/vmRoot/vmHost0"
HOST1 = "/vmRoot/vmHost1"


class TestSubscribe:
    def test_deltas_cover_only_the_subscribed_subtree(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        cluster.submit_spawn("inside", host_index=0)
        cluster.submit_spawn("outside", host_index=1)
        cluster.drain()
        events = sub.poll()
        assert events, "commits under the subscribed subtree must be delivered"
        assert all(event.kind == EVENT_DELTA for event in events)
        assert all(event.path.startswith(HOST0) for event in events)
        # A spawn's log touches the VM host (importImage/createVM/startVM).
        assert {"createVM", "startVM"} <= {event.action for event in events}
        assert all(event.txid for event in events)

    def test_root_subscription_sees_everything(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe("/")
        cluster.submit_spawn("a", host_index=0)
        cluster.submit_spawn("b", host_index=1)
        cluster.drain()
        paths = {event.path for event in sub.poll()}
        assert any(path.startswith(HOST0) for path in paths)
        assert any(path.startswith(HOST1) for path in paths)

    def test_deltas_arrive_in_commit_order_with_watermarks(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe(HOST0)
        for index in range(3):
            cluster.submit_spawn(f"vm{index}", host_index=0)
            cluster.drain()
        events = sub.poll()
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert sub.last_seq == seqs[-1]

    def test_subscription_starts_at_current_watermark(self):
        """Commits before subscribe() are not replayed as deltas — the
        subscriber initialises from snapshot() instead."""
        cluster = _cluster()
        cluster.submit_spawn("early", host_index=0)
        cluster.drain()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        assert sub.poll() == []
        model, watermark = replica.snapshot()
        assert watermark == sub.last_seq
        assert model.exists(f"{HOST0}/early")

    def test_callback_delivery(self):
        cluster = _cluster()
        received: list = []
        sub = _replica_for(cluster).subscribe(HOST0, callback=received.extend)
        cluster.submit_spawn("cb", host_index=0)
        cluster.drain()
        sub.poll()
        assert received and all(event.kind == EVENT_DELTA for event in received)

    def test_idle_poll_is_free(self):
        cluster = _cluster()
        sub = _replica_for(cluster).subscribe(HOST0)
        cluster.submit_spawn("warm", host_index=0)
        cluster.drain()
        sub.poll()
        ops_before = cluster.ensemble.op_count
        for _ in range(50):
            assert sub.poll() == []
        assert cluster.ensemble.op_count == ops_before

    def test_resync_after_checkpoint_truncation(self):
        """A replica that re-bootstraps over a truncation gap cannot
        reconstruct the missed per-record deltas; the subscriber gets a
        resync event carrying the new watermark instead."""
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        cluster.submit_spawn("one", host_index=0)
        cluster.drain()
        # Checkpoint truncates the applied log while the replica lags.
        assert cluster.controllers[0].checkpoint()
        cluster.submit_spawn("two", host_index=0)
        cluster.drain()
        assert cluster.controllers[0].checkpoint()
        events = sub.poll()
        kinds = [event.kind for event in events]
        assert EVENT_RESYNC in kinds
        resync = [event for event in events if event.kind == EVENT_RESYNC][-1]
        assert resync.seq == replica.applied_txn
        # The snapshot after resync reflects everything.
        model, _ = replica.snapshot()
        assert model.exists(f"{HOST0}/one") and model.exists(f"{HOST0}/two")

    def test_unsubscribe_stops_delivery(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        sub = replica.subscribe(HOST0)
        sub.close()
        cluster.submit_spawn("late", host_index=0)
        cluster.drain()
        replica.refresh()
        assert sub.pending() == 0
        assert replica.subscriptions() == []

    def test_delivery_stats(self):
        cluster = _cluster()
        replica = _replica_for(cluster)
        replica.subscribe(HOST0)
        cluster.submit_spawn("s", host_index=0)
        cluster.drain()
        replica.refresh()
        assert replica.stats["deltas_delivered"] > 0


def _cross_cluster(**kwargs) -> ShardedCluster:
    return ShardedCluster(
        num_shards=2,
        cross_shard_policy="2pc",
        config=TropicConfig(checkpoint_every=100_000),
        **kwargs,
    )


def _sharded_replica(cluster: ShardedCluster, shard: int) -> ReadReplica:
    store = TropicStore(
        KVStore(cluster.client, f"/tropic/store/shard-{shard}"),
        shard_id=shard,
        num_shards=cluster.num_shards,
    )
    return ReadReplica(store, cluster.schema, cluster.procedures, shard_id=shard)


class TestBarrierEvents:
    """Cross-shard commit markers for stream stitching (PR 7): opt-in
    ``barrier`` events carrying the participant set, delivered before the
    commit's deltas so multi-shard consumers can align the halves."""

    def test_barrier_precedes_the_commits_deltas(self):
        cluster = _cross_cluster()
        txn = cluster.submit_cross_spawn("xbar")
        vm_shard = cluster.router.shard_of(txn.args["vm_host"])
        replica = _sharded_replica(cluster, vm_shard)
        sub = replica.subscribe("/", include_barriers=True)
        cluster.drain()
        events = sub.poll()
        kinds = [event.kind for event in events]
        assert EVENT_BARRIER in kinds
        barrier = next(e for e in events if e.kind == EVENT_BARRIER)
        assert barrier.txid == txn.txid
        assert barrier.participants == tuple(sorted(txn.participants))
        first_delta = next(
            i for i, e in enumerate(events)
            if e.kind == EVENT_DELTA and e.txid == txn.txid
        )
        assert events.index(barrier) < first_delta

    def test_barriers_are_opt_in(self):
        """A plain subscription's event stream stays barrier-free, so
        pre-PR 7 consumers keep seeing only deltas and resyncs."""
        cluster = _cross_cluster()
        txn = cluster.submit_cross_spawn("xplain")
        vm_shard = cluster.router.shard_of(txn.args["vm_host"])
        sub = _sharded_replica(cluster, vm_shard).subscribe("/")
        cluster.drain()
        events = sub.poll()
        assert events
        assert all(event.kind != EVENT_BARRIER for event in events)

    def test_barrier_delivered_even_outside_the_subscribed_subtree(self):
        """A stitching consumer needs the marker even when this shard's
        slice of the commit falls outside its subscribed paths."""
        cluster = _cross_cluster()
        txn = cluster.submit_cross_spawn("xoff")
        vm_shard = cluster.router.shard_of(txn.args["vm_host"])
        replica = _sharded_replica(cluster, vm_shard)
        # Subscribe to a host subtree the cross-shard spawn never touches.
        untouched = next(
            host
            for host in cluster.inventory.vm_hosts
            if cluster.router.shard_of(host) == vm_shard
            and host != txn.args["vm_host"]
        )
        sub = replica.subscribe(untouched, include_barriers=True)
        cluster.drain()
        events = sub.poll()
        assert [e.kind for e in events] == [EVENT_BARRIER]
        assert events[0].txid == txn.txid

    def test_single_shard_commits_open_no_barriers(self):
        cluster = _cross_cluster()
        shard = cluster.router.shard_of(cluster.inventory.vm_hosts[0])
        replica = _sharded_replica(cluster, shard)
        sub = replica.subscribe("/", include_barriers=True)
        cluster.submit_spawn("solo", host_index=0)  # single-shard by construction
        cluster.drain()
        events = sub.poll()
        assert events
        assert all(event.kind == EVENT_DELTA for event in events)
        assert replica.open_barriers() == []


class TestDedupe:
    """(seq, txid) redelivery suppression: a commit's event batch must be
    applied to a subscriber exactly once, including across the resync
    boundary where a re-bootstrap can replay the newest delivered commit."""

    def _sub(self, cluster) -> Subscription:
        return _replica_for(cluster).subscribe("/")

    @staticmethod
    def _batch(seq: int, txid: str, n: int = 2) -> list[SubtreeDelta]:
        return [
            SubtreeDelta(EVENT_DELTA, seq, txid, f"{HOST0}/vm{i}", "createVM")
            for i in range(n)
        ]

    def test_redelivered_commit_batch_is_dropped(self):
        sub = self._sub(_cluster())
        batch = self._batch(7, "tx-a")
        sub._deliver(batch)
        assert sub.poll(refresh=False) == batch
        sub._deliver(batch)
        assert sub.poll(refresh=False) == []

    def test_same_batch_events_sharing_seq_and_txid_all_arrive(self):
        """A commit's records share one (seq, txid); dedupe keys whole
        batches, never individual records of the same commit."""
        sub = self._sub(_cluster())
        batch = self._batch(3, "tx-multi", n=4)
        sub._deliver(batch)
        assert len(sub.poll(refresh=False)) == 4

    def test_dedupe_survives_the_resync_boundary(self):
        """The regression: deltas delivered, then a checkpoint-driven
        resync, then the same commit redelivered by the re-bootstrapped
        tail — the duplicate must be dropped, not double-applied."""
        sub = self._sub(_cluster())
        batch = self._batch(5, "tx-resync")
        sub._deliver(batch)
        sub._deliver([SubtreeDelta(EVENT_RESYNC, 5)])
        sub._deliver(batch)
        events = sub.poll(refresh=False)
        assert [e.kind for e in events] == [EVENT_DELTA] * len(batch) + [EVENT_RESYNC]

    def test_resync_events_always_pass(self):
        """Resyncs reset the subscriber rather than mutate it; repeating
        one is idempotent for the consumer and must never be swallowed."""
        sub = self._sub(_cluster())
        sub._deliver([SubtreeDelta(EVENT_RESYNC, 2)])
        sub._deliver([SubtreeDelta(EVENT_RESYNC, 2)])
        assert len(sub.poll(refresh=False)) == 2

    def test_dedupe_memory_is_bounded(self):
        sub = self._sub(_cluster())
        for seq in range(Subscription.DEDUPE_WINDOW + 10):
            sub._deliver(self._batch(seq + 1, f"tx-{seq}", n=1))
        assert len(sub._delivered) == Subscription.DEDUPE_WINDOW
        sub.poll(refresh=False)
        # The evicted (oldest) entry is forgotten: its redelivery passes.
        sub._deliver(self._batch(1, "tx-0", n=1))
        assert len(sub.poll(refresh=False)) == 1

    def test_end_to_end_stream_has_no_duplicates_across_checkpoints(self):
        """Live stream under aggressive checkpointing (truncations force
        re-bootstraps): no commit's deltas are ever delivered twice — each
        VM's createVM record appears at most once in the whole stream."""
        cluster = ShardedCluster(num_shards=1, config=TropicConfig(checkpoint_every=2))
        replica = _replica_for(cluster)
        sub = replica.subscribe("/")
        created: list[tuple[int, str]] = []
        for i in range(6):
            cluster.submit_spawn(f"vm{i}", host_index=i % 4)
            cluster.drain()
            created.extend(
                (event.seq, event.txid)
                for event in sub.poll()
                if event.kind == EVENT_DELTA and event.action == "createVM"
            )
        assert len(created) == len(set(created)), created
