"""Platform read path on CoW snapshots (PR 5): fleet-view forks, the
merged-view cache, and platform-level subscriptions via the ReadProxy."""

from __future__ import annotations

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ConfigurationError
from repro.coordination.ensemble import CoordinationEnsemble
from repro.tcloud.service import build_tcloud


def _sharded_pair(num_shards: int = 2, hosts: int = 8):
    """(owner platform hosting shards 1..N-1, observer hosting shard 0)."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    config = TropicConfig(
        logical_only=True, checkpoint_every=100_000, num_shards=num_shards
    )

    def build(local_shards):
        return build_tcloud(
            num_vm_hosts=hosts,
            num_storage_hosts=max(hosts // 4, 1),
            config=config,
            logical_only=True,
            ensemble=ensemble,
            local_shards=local_shards,
        )

    return build(list(range(1, num_shards))), build([0])


def _spawn_on(cloud, host: str, name: str):
    inventory = cloud.inventory
    index = inventory.vm_hosts.index(host)
    return cloud.platform.submit(
        "spawnVM",
        {
            "vm_name": name,
            "image_template": "template-small",
            "storage_host": inventory.storage_host_for(index),
            "vm_host": host,
            "mem_mb": 256,
        },
    )


def _host_owned_by(cloud, shard: int) -> str:
    router = cloud.platform.shard_router
    return next(h for h in cloud.inventory.vm_hosts if router.shard_of(h) == shard)


class TestFleetViewForks:
    def test_each_view_is_an_independent_fork(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            view = observer.platform.model_view()
            victim = next(iter(view.find(entity_type="vmHost")))
            view.set_attrs(victim, mem_mb=1)  # caller scribbles on its view
            clean = observer.platform.model_view()
            assert clean.get(victim)["mem_mb"] != 1

    def test_cache_invalidated_by_foreign_commits(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            foreign_host = _host_owned_by(observer, 1)
            before = observer.platform.fleet_view()
            assert not before.model.exists(f"{foreign_host}/fresh")
            txn = _spawn_on(owner, foreign_host, "fresh")
            assert txn.state.value == "committed"
            after = observer.platform.fleet_view()
            assert after.model.exists(f"{foreign_host}/fresh")
            assert after.watermarks[1].applied_txn > (
                before.watermarks[1].applied_txn or 0
            )

    def test_cache_invalidated_by_local_commits(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            local_host = _host_owned_by(observer, 0)
            observer.platform.fleet_view()  # prime the cache
            _spawn_on(observer, local_host, "local")
            view = observer.platform.fleet_view()
            assert view.model.exists(f"{local_host}/local")

    def test_unchanged_fleet_serves_views_without_coordination_ops(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            _spawn_on(owner, _host_owned_by(observer, 1), "warm")
            observer.platform.fleet_view()
            ops_before = observer.platform.ensemble.op_count
            for _ in range(25):
                observer.platform.fleet_view()
            assert observer.platform.ensemble.op_count == ops_before


class TestReadProxySubscribe:
    def test_subscribe_to_foreign_shard_delivers_deltas(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            foreign_host = _host_owned_by(observer, 1)
            sub = observer.platform.read_proxy.subscribe(foreign_host)
            _spawn_on(owner, foreign_host, "subbed")
            events = sub.poll()
            assert events
            assert all(event.path.startswith(foreign_host) for event in events)
            assert "createVM" in {event.action for event in events}

    def test_subscribe_to_local_shard_works(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            local_host = _host_owned_by(observer, 0)
            sub = observer.platform.read_proxy.subscribe(local_host)
            _spawn_on(observer, local_host, "localsub")
            assert any(
                event.action == "createVM" for event in sub.poll()
            )

    def test_global_path_subscription_refused_when_sharded(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            with pytest.raises(ConfigurationError, match="sharding granularity"):
                observer.platform.read_proxy.subscribe("/")

    def test_single_shard_subscription(self):
        cloud = build_tcloud(
            num_vm_hosts=4, num_storage_hosts=2,
            config=TropicConfig(logical_only=True, checkpoint_every=100_000),
            logical_only=True,
        )
        with cloud.platform:
            host = cloud.inventory.vm_hosts[0]
            sub = cloud.platform.read_proxy.subscribe(host)
            _spawn_on(cloud, host, "solo")
            assert any(event.action == "createVM" for event in sub.poll())
            assert cloud.platform.read_proxy.pump() == 0  # already caught up


class TestViewCacheSourceKeys:
    """PR 7 regression guard: the fleet-view cache key names every shard's
    *source kind* (leader/replica/partial) alongside its change stamp, so
    a view computed under one sourcing can never be served under another
    even when the surviving stamps coincide."""

    def test_key_spells_out_every_shards_source_kind(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            platform = observer.platform
            leader_model = platform.leader(0).model
            key, kinds = platform._view_cache_key({0: leader_model}, {}, {})
            assert kinds == ((0, "leader"), (1, "partial"))
            parts, pinned = key
            assert parts[0][:2] == (0, "leader")
            assert parts[0][2] is leader_model  # identity, not equality
            assert parts[1] == (1, "partial")
            assert pinned == ()
            replica = platform.read_proxy.replica(1)
            replica.refresh()
            key2, kinds2 = platform._view_cache_key(
                {0: leader_model}, {1: replica}, {}
            )
            assert kinds2 == ((0, "leader"), (1, "replica"))
            assert key2[0][1] == (
                1, "replica", replica.applied_txn, replica.early_seq,
                replica.has_checkpoint,
            )

    def test_replica_stamp_includes_early_seq(self):
        """A fence early-application changes the replica model without
        moving ``applied_txn``; the key must still change or a stale
        cached merge would be served over the advanced model."""
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            platform = observer.platform
            replica = platform.read_proxy.replica(1)
            replica.refresh()
            local = {0: platform.leader(0).model}
            before, _ = platform._view_cache_key(local, {1: replica}, {})
            replica._early_seq += 1  # what early_apply() does to the stamp
            after, _ = platform._view_cache_key(local, {1: replica}, {})
            assert before != after

    def test_partial_to_replica_transition_serves_fresh_content(self):
        """Behavioral: a view cached while a foreign shard was partial
        (owner not yet started, so no checkpoint to tail) must not be
        served once the shard becomes replica-backed."""
        ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
        config = TropicConfig(
            logical_only=True, checkpoint_every=100_000, num_shards=2
        )

        def build(local_shards):
            return build_tcloud(
                num_vm_hosts=8, num_storage_hosts=2, config=config,
                logical_only=True, ensemble=ensemble, local_shards=local_shards,
            )

        observer = build([0])
        with observer.platform:
            early = observer.platform.fleet_view()
            assert early.watermarks[1].source == "partial"
            owner = build([1])
            with owner.platform:
                foreign_host = _host_owned_by(observer, 1)
                _spawn_on(owner, foreign_host, "healed")
                late = observer.platform.fleet_view()
                assert late.watermarks[1].source == "replica"
                assert late.model.exists(f"{foreign_host}/healed")


class TestPerSubtreeViewCache:
    """PR 7: a foreign commit re-grafts only the checkpoint units its
    shard touched instead of rebuilding the whole merged tree."""

    def test_foreign_commit_patches_only_the_changed_units(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            host_a = _host_owned_by(observer, 1)
            host_b = next(
                h for h in observer.inventory.vm_hosts
                if observer.platform.shard_router.shard_of(h) == 1 and h != host_a
            )
            _spawn_on(owner, host_a, "seed")
            observer.platform.fleet_view()  # prime the cache
            patches = observer.platform._view_cache_patches
            _spawn_on(owner, host_b, "patched")
            view = observer.platform.fleet_view()
            assert view.model.exists(f"{host_b}/patched")
            assert view.model.exists(f"{host_a}/seed")  # untouched unit kept
            assert observer.platform._view_cache_patches == patches + 1
            # An unchanged fleet serves the patched entry straight back.
            again = observer.platform.fleet_view()
            assert observer.platform._view_cache_patches == patches + 1
            assert again.model.exists(f"{host_b}/patched")

    def test_patched_view_equals_a_full_rebuild(self):
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            host = _host_owned_by(observer, 1)
            _spawn_on(owner, host, "first")
            observer.platform.fleet_view()
            _spawn_on(owner, host, "second")
            patched = observer.platform.fleet_view().model
            assert observer.platform._view_cache_patches >= 1
            observer.platform._view_cache.clear()
            rebuilt = observer.platform.fleet_view().model
            assert patched.to_dict() == rebuilt.to_dict()

    def test_local_commit_on_the_base_shard_rebuilds(self):
        """The observer's own shard is the merge base; its changes cannot
        be patched in (the base fork itself moved) and must rebuild."""
        owner, observer = _sharded_pair()
        with owner.platform, observer.platform:
            local_host = _host_owned_by(observer, 0)
            observer.platform.fleet_view()
            patches = observer.platform._view_cache_patches
            _spawn_on(observer, local_host, "basewrite")
            view = observer.platform.fleet_view()
            assert view.model.exists(f"{local_host}/basewrite")
            assert observer.platform._view_cache_patches == patches
