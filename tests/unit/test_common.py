"""Unit tests for clocks, id generation, config and JSON helpers."""

import threading

import pytest

from repro.common.clock import RealClock, Stopwatch, VirtualClock
from repro.common.config import TropicConfig
from repro.common.errors import ReproError, TransactionAborted
from repro.common.idgen import IdGenerator, monotonic_id, random_id
from repro.common.jsonutil import deep_copy, dumps, loads


class TestClocks:
    def test_real_clock_monotonic(self):
        clock = RealClock()
        first = clock.now()
        clock.sleep(0.001)
        assert clock.now() >= first

    def test_virtual_clock_advance(self):
        clock = VirtualClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(5.0)
        assert clock.now() == 15.0

    def test_virtual_clock_rejects_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(-5.0)

    def test_virtual_clock_sleep_wakes_on_advance(self):
        clock = VirtualClock()
        done = threading.Event()

        def sleeper():
            clock.sleep(5.0)
            done.set()

        thread = threading.Thread(target=sleeper, daemon=True)
        thread.start()
        clock.advance(10.0)
        assert done.wait(timeout=2.0)

    def test_stopwatch_accumulates(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        with watch:
            clock.advance(2.0)
        clock.advance(5.0)  # not counted
        with watch:
            clock.advance(1.0)
        assert watch.busy_seconds == pytest.approx(3.0)
        watch.reset()
        assert watch.busy_seconds == 0.0

    def test_stopwatch_double_start_is_safe(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        watch.start()
        clock.advance(1.0)
        watch.stop()
        assert watch.busy_seconds == pytest.approx(1.0)


class TestIdGeneration:
    def test_prefixed_monotonic(self):
        gen = IdGenerator("txn")
        first, second = gen.next(), gen.next()
        assert first == "txn-000001"
        assert first < second

    def test_global_counter_shared_per_prefix(self):
        a = monotonic_id("unit-test-prefix")
        b = monotonic_id("unit-test-prefix")
        assert a != b and a.split("-")[-1] < b.split("-")[-1]

    def test_random_id_unique(self):
        assert random_id("c") != random_id("c")

    def test_thread_safety(self):
        gen = IdGenerator("p")
        results = []

        def worker():
            for _ in range(200):
                results.append(gen.next())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == len(set(results)) == 800


class TestConfig:
    def test_defaults_validate(self):
        TropicConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_controllers": 0},
            {"num_workers": 0},
            {"worker_threads": 0},
            {"scheduler_policy": "weird"},
            {"session_timeout": 0.01, "heartbeat_interval": 0.05},
            {"checkpoint_every": 0},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            TropicConfig(**overrides).validate()

    def test_with_overrides_returns_copy(self):
        base = TropicConfig()
        derived = base.with_overrides(logical_only=True)
        assert derived.logical_only and not base.logical_only


class TestErrorsAndJson:
    def test_exception_hierarchy(self):
        assert issubclass(TransactionAborted, ReproError)
        error = TransactionAborted("boom", txid="t1", reason="constraint")
        assert error.txid == "t1" and error.reason == "constraint"

    def test_dumps_deterministic(self):
        assert dumps({"b": 1, "a": 2}) == dumps({"a": 2, "b": 1})

    def test_loads_handles_empty(self):
        assert loads(None) is None
        assert loads("") is None
        assert loads(b'{"x": 1}') == {"x": 1}

    def test_deep_copy_is_independent(self):
        original = {"a": [1, 2, {"b": 3}]}
        copy = deep_copy(original)
        copy["a"][2]["b"] = 99
        assert original["a"][2]["b"] == 3
