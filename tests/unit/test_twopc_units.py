"""Unit tests for the cross-shard 2PC building blocks (PR 3): routing
policy, message formats, transaction fields, the decision log + prepare
ticket, log/rwset splitting, the strict read view and the pin visibility
marking."""

import warnings

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ConfigurationError, ShardUnavailable
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.sharding import ShardMap, ShardRouter
from repro.core.twopc import TwoPCLog, shards_touched, split_log, split_rwset
from repro.core.txn import (
    ExecutionLog,
    ReadWriteSet,
    Transaction,
    TransactionState,
)
from repro.tcloud.service import build_tcloud


def _kv():
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    return KVStore(CoordinationClient(ensemble), "/tropic/2pc")


def _map():
    return ShardMap(2, {"/vmRoot/vmHost0": 0, "/storageRoot/storageHost0": 1})


class TestRouterPolicy:
    def test_2pc_is_a_known_policy(self):
        router = ShardRouter(_map(), "2pc")
        assert router.policy == "2pc"
        TropicConfig(num_shards=2, cross_shard_policy="2pc").validate()

    def test_2pc_plan_returns_cross_shard_decision(self):
        router = ShardRouter(_map(), "2pc")
        decision = router.plan(
            "spawnVM",
            {"vm_host": "/vmRoot/vmHost0", "storage_host": "/storageRoot/storageHost0"},
        )
        assert decision.cross_shard
        assert decision.shard == min(decision.shards)
        assert decision.shards == frozenset({0, 1})

    def test_pin_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="2pc"):
            ShardRouter(_map(), "pin")

    def test_2pc_and_reject_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardRouter(_map(), "2pc")
            ShardRouter(_map(), "reject")

    def test_single_shard_pin_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardRouter(ShardMap(1), "pin")


class TestTransactionFields:
    def test_cross_shard_fields_roundtrip(self):
        txn = Transaction(procedure="spawnVM", args={"x": 1})
        txn.coordinator = 0
        txn.participants = [0, 1]
        txn.votes = {"0": "yes", "1": "yes"}
        txn.mark(TransactionState.PREPARING, 1.0)
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.coordinator == 0
        assert restored.participants == [0, 1]
        assert restored.votes == {"0": "yes", "1": "yes"}
        assert restored.state is TransactionState.PREPARING
        assert restored.is_cross_shard

    def test_single_shard_transaction_is_not_cross_shard(self):
        txn = Transaction(procedure="spawnVM")
        assert not txn.is_cross_shard
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.participants == [] and restored.coordinator is None

    def test_prepare_states_are_active_not_terminal(self):
        for state in (TransactionState.PREPARING, TransactionState.PREPARED):
            assert not state.is_terminal


class TestTwoPCLog:
    def test_decision_roundtrip(self):
        log = TwoPCLog(_kv())
        assert log.decision("t1") is None
        record = log.decide("t1", "commit", coordinator=0, participants=[0, 1])
        assert record["participants"] == [0, 1]
        assert log.decision("t1") == "commit"
        assert log.decision_record("t1")["coordinator"] == 0
        log.clear_decision("t1")
        assert log.decision("t1") is None

    def test_ticket_mutual_exclusion(self):
        log = TwoPCLog(_kv())
        assert log.acquire_ticket("a")
        assert log.acquire_ticket("a")  # re-entrant for the holder
        assert not log.acquire_ticket("b")
        assert log.ticket_holder() == "a"
        assert not log.release_ticket("b")
        assert log.release_ticket("a")
        assert log.acquire_ticket("b")


class TestSplitting:
    def _sample(self):
        log = ExecutionLog()
        log.append("/vmRoot/vmHost0", "createVM", ["vm1"], "removeVM", ["vm1"])
        log.append("/storageRoot/storageHost0", "cloneImage", ["t", "d"],
                   "removeImage", ["d"])
        log.append("/vmRoot/vmHost0/vm1", "startVM", [], "stopVM", [])
        rwset = ReadWriteSet(
            reads={"/storageRoot/storageHost0"},
            writes={"/vmRoot/vmHost0/vm1", "/storageRoot/storageHost0"},
            constraint_reads={"/vmRoot/vmHost0"},
        )
        return log, rwset

    def test_shards_touched_uses_simulated_paths(self):
        log, rwset = self._sample()
        assert shards_touched(_map(), log, rwset, coordinator=0) == {0, 1}

    def test_split_log_preserves_order_and_ownership(self):
        log, _ = self._sample()
        mine = split_log(_map(), log, shard=1, coordinator=0)
        assert [r["path"] for r in mine] == ["/storageRoot/storageHost0"]
        theirs = split_log(_map(), log, shard=0, coordinator=0)
        assert [r["seq"] for r in theirs] == [1, 3]

    def test_split_rwset_keeps_global_paths_everywhere(self):
        _, rwset = self._sample()
        rwset.record_constraint_read("/vmRoot")  # above sharding granularity
        for shard in (0, 1):
            part = split_rwset(_map(), rwset, shard, coordinator=0)
            assert "/vmRoot" in part["constraint_reads"]
        part1 = split_rwset(_map(), rwset, 1, coordinator=0)
        assert part1["writes"] == ["/storageRoot/storageHost0"]


class TestStrictModelView:
    def _partial_cloud(self):
        config = TropicConfig(num_shards=2, logical_only=True)
        return build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                            logical_only=True, local_shards=[0])

    def test_partial_hosting_raises_shard_unavailable(self):
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            with pytest.raises(ShardUnavailable) as excinfo:
                platform.model_view()
            assert excinfo.value.shards == [1]

    def test_strict_false_accepts_the_partial_view(self):
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            view = platform.model_view(strict=False)
            assert view.exists("/vmRoot")

    def test_full_hosting_never_raises(self):
        config = TropicConfig(num_shards=2, logical_only=True)
        cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                             logical_only=True)
        with cloud.platform as platform:
            assert platform.model_view().exists("/vmRoot")


class TestPinVisibilityMarking:
    def test_merged_view_prefers_the_pinned_shards_copy(self):
        """Under the deprecated pin policy, the owner's copy of a unit a
        pinned transaction wrote is bootstrap-frozen; the merged view must
        surface the pinned shard's copy instead of the stale owner copy."""
        config = TropicConfig(num_shards=2, logical_only=True,
                              cross_shard_policy="pin")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2,
                                 config=config, logical_only=True)
            with cloud.platform as platform:
                vm_host = cloud.inventory.vm_hosts[4]     # shard 1 ...
                storage = cloud.inventory.storage_host_for(0)  # ... shard 0
                txn = platform.submit("spawnVM", {
                    "vm_name": "pinned", "image_template": "template-small",
                    "storage_host": storage, "vm_host": vm_host, "mem_mb": 256,
                })
                assert txn.state is TransactionState.COMMITTED
                # Pin runs on the lowest involved shard (0, the storage
                # owner); the VM write on vm_host is the foreign one.
                pinned_shard = platform.shard_of_txn(txn.txid)
                vm_owner = platform.shard_router.shard_of(vm_host)
                assert pinned_shard != vm_owner
                # The owner's model never saw the write ...
                assert not platform.leader(vm_owner).model.exists(
                    f"{vm_host}/pinned")
                # ... but the merged view surfaces the pinned shard's copy.
                assert platform.model_view().exists(f"{vm_host}/pinned")
