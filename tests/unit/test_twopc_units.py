"""Unit tests for the cross-shard 2PC building blocks (PR 3): routing
policy, message formats, transaction fields, the decision log,
log/rwset splitting, the strict read view and the pin visibility
marking.  PR 9 removed the fleet-wide prepare ticket (wound-wait handles
prepare admission); only the legacy-ticket cleanup shim remains here."""

import warnings

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import ConfigurationError, ShardUnavailable
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.sharding import ShardMap, ShardRouter
from repro.core.twopc import TwoPCLog, shards_touched, split_log, split_rwset
from repro.core.txn import (
    ExecutionLog,
    ReadWriteSet,
    Transaction,
    TransactionState,
)
from repro.tcloud.service import build_tcloud


def _kv():
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
    return KVStore(CoordinationClient(ensemble), "/tropic/2pc")


def _map():
    return ShardMap(2, {"/vmRoot/vmHost0": 0, "/storageRoot/storageHost0": 1})


class TestRouterPolicy:
    def test_2pc_is_a_known_policy(self):
        router = ShardRouter(_map(), "2pc")
        assert router.policy == "2pc"
        TropicConfig(num_shards=2, cross_shard_policy="2pc").validate()

    def test_2pc_plan_returns_cross_shard_decision(self):
        router = ShardRouter(_map(), "2pc")
        decision = router.plan(
            "spawnVM",
            {"vm_host": "/vmRoot/vmHost0", "storage_host": "/storageRoot/storageHost0"},
        )
        assert decision.cross_shard
        assert decision.shard == min(decision.shards)
        assert decision.shards == frozenset({0, 1})

    def test_pin_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="2pc"):
            ShardRouter(_map(), "pin")

    def test_2pc_and_reject_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardRouter(_map(), "2pc")
            ShardRouter(_map(), "reject")

    def test_single_shard_pin_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardRouter(ShardMap(1), "pin")


class TestTransactionFields:
    def test_cross_shard_fields_roundtrip(self):
        txn = Transaction(procedure="spawnVM", args={"x": 1})
        txn.coordinator = 0
        txn.participants = [0, 1]
        txn.votes = {"0": "yes", "1": "yes"}
        txn.mark(TransactionState.PREPARING, 1.0)
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.coordinator == 0
        assert restored.participants == [0, 1]
        assert restored.votes == {"0": "yes", "1": "yes"}
        assert restored.state is TransactionState.PREPARING
        assert restored.is_cross_shard

    def test_single_shard_transaction_is_not_cross_shard(self):
        txn = Transaction(procedure="spawnVM")
        assert not txn.is_cross_shard
        restored = Transaction.from_dict(txn.to_dict())
        assert restored.participants == [] and restored.coordinator is None

    def test_prepare_states_are_active_not_terminal(self):
        for state in (TransactionState.PREPARING, TransactionState.PREPARED):
            assert not state.is_terminal


class TestTwoPCLog:
    def test_decision_roundtrip(self):
        log = TwoPCLog(_kv())
        assert log.decision("t1") is None
        record = log.decide("t1", "commit", coordinator=0, participants=[0, 1])
        assert record["participants"] == [0, 1]
        assert log.decision("t1") == "commit"
        assert log.decision_record("t1")["coordinator"] == 0
        log.clear_decision("t1")
        assert log.decision("t1") is None

    def test_ticket_primitives_are_gone(self):
        # The fleet-wide prepare ticket serialised every cross-shard
        # prepare; wound-wait replaced it.  Guard against reintroduction.
        log = TwoPCLog(_kv())
        for name in ("acquire_ticket", "release_ticket", "ticket_holder"):
            assert not hasattr(log, name)

    def test_clear_legacy_ticket_is_an_idempotent_no_op(self):
        log = TwoPCLog(_kv())
        assert log.clear_legacy_ticket() is False  # nothing persisted
        log.kv.put(TwoPCLog.LEGACY_TICKET_KEY, "txn-000042")
        assert log.clear_legacy_ticket() is True
        assert log.kv.get(TwoPCLog.LEGACY_TICKET_KEY) is None
        assert log.clear_legacy_ticket() is False  # idempotent


class TestDecisionGC:
    def test_horizons_roundtrip(self):
        log = TwoPCLog(_kv())
        assert log.horizons() == {}
        log.publish_horizon(0, 3)
        log.publish_horizon(1, 1)
        assert log.horizons() == {0: 3, 1: 1}

    def test_mark_then_sweep_requires_every_participant_to_advance(self):
        log = TwoPCLog(_kv())
        log.decide("t1", "commit", coordinator=0, participants=[0, 1])
        log.publish_horizon(0, 1)
        log.publish_horizon(1, 1)
        # First pass marks (records current horizons), deletes nothing.
        assert log.gc_decisions(0) == 0
        assert log.decision_record("t1")["gc_horizons"] == {"0": 1, "1": 1}
        # Only the coordinator advanced: still not collectable.
        log.publish_horizon(0, 2)
        assert log.gc_decisions(0) == 0
        assert log.decision("t1") == "commit"
        # Every participant checkpointed past the mark: swept.
        log.publish_horizon(1, 2)
        assert log.gc_decisions(0) == 1
        assert log.decision("t1") is None

    def test_gc_only_touches_own_coordinated_decisions(self):
        log = TwoPCLog(_kv())
        log.decide("mine", "abort", coordinator=0, participants=[0, 1])
        log.decide("theirs", "commit", coordinator=1, participants=[0, 1])
        log.publish_horizon(0, 5)
        log.publish_horizon(1, 5)
        log.gc_decisions(0)
        log.publish_horizon(0, 6)
        log.publish_horizon(1, 6)
        assert log.gc_decisions(0) == 1
        assert log.decision("mine") is None
        assert log.decision("theirs") == "commit"

    def test_participant_without_published_horizon_blocks_gc(self):
        log = TwoPCLog(_kv())
        log.decide("t1", "commit", coordinator=0, participants=[0, 2])
        log.publish_horizon(0, 1)
        log.gc_decisions(0)  # mark: shard 2 stamped at -1 (never published)
        log.publish_horizon(0, 2)
        assert log.gc_decisions(0) == 0  # shard 2 still silent
        log.publish_horizon(2, 1)
        assert log.gc_decisions(0) == 1
        assert log.decision("t1") is None


class TestShardedDecisionKeys:
    """PR 5: decision records are keyed by coordinator shard so each
    shard's GC sweep reads only its own records; legacy flat keys are
    accepted on reads and migrated at recovery."""

    def test_decide_writes_under_the_coordinator_directory(self):
        kv = _kv()
        log = TwoPCLog(kv)
        log.decide("t1", "commit", coordinator=3, participants=[1, 3])
        assert kv.get("decisions/shard-3/t1")["decision"] == "commit"
        assert kv.get("decisions/t1") is None

    def test_lookup_with_known_coordinator_is_a_point_read(self):
        log = TwoPCLog(_kv())
        log.decide("t1", "abort", coordinator=2)
        assert log.decision("t1", coordinator=2) == "abort"
        assert log.decision("missing", coordinator=2) is None

    def test_legacy_flat_records_are_accepted(self):
        kv = _kv()
        log = TwoPCLog(kv)
        kv.put("decisions/old", {"txid": "old", "decision": "commit",
                                 "coordinator": 1, "participants": [0, 1]})
        assert log.decision("old") == "commit"
        assert log.decision("old", coordinator=1) == "commit"

    def test_migration_rekeys_only_own_records(self):
        kv = _kv()
        log = TwoPCLog(kv)
        kv.put("decisions/mine", {"txid": "mine", "decision": "commit",
                                  "coordinator": 0, "participants": [0, 1]})
        kv.put("decisions/theirs", {"txid": "theirs", "decision": "abort",
                                    "coordinator": 1, "participants": [0, 1]})
        assert log.migrate_flat_decisions(0) == 1
        assert kv.get("decisions/mine") is None
        assert kv.get("decisions/shard-0/mine")["decision"] == "commit"
        # The other shard's record waits for its own coordinator's recovery.
        assert kv.get("decisions/theirs")["decision"] == "abort"
        assert log.migrate_flat_decisions(1) == 1
        assert kv.get("decisions/theirs") is None
        assert log.decision("theirs", coordinator=1) == "abort"

    def test_gc_sweeps_migrated_records(self):
        kv = _kv()
        log = TwoPCLog(kv)
        kv.put("decisions/old", {"txid": "old", "decision": "commit",
                                 "coordinator": 0, "participants": [0, 1]})
        log.migrate_flat_decisions(0)
        log.publish_horizon(0, 1)
        log.publish_horizon(1, 1)
        log.gc_decisions(0)  # mark
        log.publish_horizon(0, 2)
        log.publish_horizon(1, 2)
        assert log.gc_decisions(0) == 1
        assert log.decision("old") is None

    def test_clear_decision_handles_both_layouts(self):
        kv = _kv()
        log = TwoPCLog(kv)
        log.decide("new", "commit", coordinator=0)
        kv.put("decisions/old", {"txid": "old", "decision": "abort",
                                 "coordinator": 0})
        log.clear_decision("new")
        log.clear_decision("old")
        assert log.decision("new") is None and log.decision("old") is None


class TestRetiredShardSweep:
    """PR 5: administrative sweep for a permanently decommissioned
    coordinator shard (``cli 2pc-gc --retired-shard N``)."""

    def test_retire_sweeps_coordinated_records_in_both_layouts(self):
        kv = _kv()
        log = TwoPCLog(kv)
        log.decide("a", "commit", coordinator=1, participants=[0, 1])
        log.decide("b", "abort", coordinator=1, participants=[1, 2])
        kv.put("decisions/legacy", {"txid": "legacy", "decision": "commit",
                                    "coordinator": 1})
        log.decide("other", "commit", coordinator=0, participants=[0, 1])
        result = log.retire_shard(1)
        assert result["records_removed"] == 3
        assert log.decision("a") is None
        assert log.decision("legacy") is None
        assert log.decision("other") == "commit"  # other coordinators keep theirs

    def test_retired_horizon_unblocks_other_coordinators_sweeps(self):
        """A record naming the retired shard as *participant* must still
        be collectable: the retirement sentinel compares past any mark."""
        log = TwoPCLog(_kv())
        log.decide("t1", "commit", coordinator=0, participants=[0, 1])
        log.publish_horizon(0, 1)
        log.publish_horizon(1, 1)
        log.gc_decisions(0)  # mark at {0: 1, 1: 1}
        log.publish_horizon(0, 2)
        assert log.gc_decisions(0) == 0  # shard 1 silent: not collectable
        log.retire_shard(1)  # shard 1 decommissioned forever
        assert log.horizons()[1] == TwoPCLog.RETIRED_HORIZON
        assert log.gc_decisions(0) == 1
        assert log.decision("t1") is None

    def test_record_marked_after_retirement_is_still_swept(self):
        """A record whose first GC mark happens *after* the participant
        was retired stores the sentinel as its mark; the sweep must treat
        a retired participant as past any mark (a strict ``>`` against
        the sentinel itself would retain the record forever)."""
        log = TwoPCLog(_kv())
        log.decide("t1", "commit", coordinator=0, participants=[0, 1])
        log.retire_shard(1)  # retired before the coordinator ever marked
        log.publish_horizon(0, 1)
        log.gc_decisions(0)  # mark stamps shard 1 at the sentinel
        log.publish_horizon(0, 2)
        assert log.gc_decisions(0) == 1
        assert log.decision("t1") is None

    def test_retire_is_idempotent(self):
        log = TwoPCLog(_kv())
        log.decide("a", "commit", coordinator=2)
        assert log.retire_shard(2)["records_removed"] == 1
        assert log.retire_shard(2)["records_removed"] == 0


class TestSplitting:
    def _sample(self):
        log = ExecutionLog()
        log.append("/vmRoot/vmHost0", "createVM", ["vm1"], "removeVM", ["vm1"])
        log.append("/storageRoot/storageHost0", "cloneImage", ["t", "d"],
                   "removeImage", ["d"])
        log.append("/vmRoot/vmHost0/vm1", "startVM", [], "stopVM", [])
        rwset = ReadWriteSet(
            reads={"/storageRoot/storageHost0"},
            writes={"/vmRoot/vmHost0/vm1", "/storageRoot/storageHost0"},
            constraint_reads={"/vmRoot/vmHost0"},
        )
        return log, rwset

    def test_shards_touched_uses_simulated_paths(self):
        log, rwset = self._sample()
        assert shards_touched(_map(), log, rwset, coordinator=0) == {0, 1}

    def test_split_log_preserves_order_and_ownership(self):
        log, _ = self._sample()
        mine = split_log(_map(), log, shard=1, coordinator=0)
        assert [r["path"] for r in mine] == ["/storageRoot/storageHost0"]
        theirs = split_log(_map(), log, shard=0, coordinator=0)
        assert [r["seq"] for r in theirs] == [1, 3]

    def test_split_rwset_keeps_global_paths_everywhere(self):
        _, rwset = self._sample()
        rwset.record_constraint_read("/vmRoot")  # above sharding granularity
        for shard in (0, 1):
            part = split_rwset(_map(), rwset, shard, coordinator=0)
            assert "/vmRoot" in part["constraint_reads"]
        part1 = split_rwset(_map(), rwset, 1, coordinator=0)
        assert part1["writes"] == ["/storageRoot/storageHost0"]


class TestModelViewConsistency:
    def _partial_cloud(self, **overrides):
        config = TropicConfig(num_shards=2, logical_only=True, **overrides)
        return build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                            logical_only=True, local_shards=[0])

    def test_leader_mode_raises_on_partial_hosting(self):
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            with pytest.raises(ShardUnavailable) as excinfo:
                platform.model_view(consistency="leader")
            assert excinfo.value.shards == [1]
            with pytest.raises(ShardUnavailable):
                platform.model_view(strict=True)

    def test_read_mode_leader_makes_strictness_the_default(self):
        cloud = self._partial_cloud(read_mode="leader")
        with cloud.platform as platform:
            with pytest.raises(ShardUnavailable):
                platform.model_view()

    def test_default_serves_foreign_shards_from_replicas(self):
        """The PR 3 refusal is replaced by the constructive answer: the
        default view composes local leaders with read replicas of the
        non-hosted shards, stamped with their watermarks.  Here no process
        ever hosts shard 1, so its namespace holds no checkpoint: the view
        must fall back to the bootstrap-frozen copy (disclosed as
        ``partial`` in the watermark) — never delete shard 1's units as if
        the shard owned nothing."""
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            fleet = platform.fleet_view()
            assert fleet.consistency == "replica"
            assert fleet.watermarks[0].source == "leader"
            assert fleet.watermarks[1].source == "partial"
            # Every compute host is still visible, including shard 1's.
            for host in cloud.inventory.vm_hosts:
                assert fleet.model.exists(host)
            assert platform.model_view().exists("/vmRoot")

    def test_foreign_shard_becomes_replica_backed_once_bootstrapped(self):
        """The moment an owner process bootstraps shard 1's store, the same
        observer's next view switches that shard from the frozen fallback
        to a watermark-stamped replica."""
        ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
        config = TropicConfig(num_shards=2, logical_only=True)
        observer = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                                logical_only=True, local_shards=[0],
                                ensemble=ensemble)
        with observer.platform as platform:
            assert platform.fleet_view().watermarks[1].source == "partial"
            owner = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                                 logical_only=True, local_shards=[1],
                                 ensemble=ensemble)
            with owner.platform:
                fleet = platform.fleet_view()
                assert fleet.watermarks[1].source == "replica"
                assert fleet.replica_shards() == [1]

    def test_strict_false_accepts_the_partial_view(self):
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            view = platform.model_view(strict=False)
            assert view.exists("/vmRoot")
            fleet = platform.fleet_view(strict=False)
            assert fleet.consistency == "partial"
            # The frozen shard is disclosed, not silently absent.
            assert fleet.watermarks[1].source == "partial"
            assert fleet.watermarks[1].applied_txn is None

    def test_unknown_consistency_is_refused(self):
        cloud = self._partial_cloud()
        with cloud.platform as platform:
            with pytest.raises(ConfigurationError):
                platform.model_view(consistency="snapshot")

    def test_full_hosting_never_raises(self):
        config = TropicConfig(num_shards=2, logical_only=True)
        cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config,
                             logical_only=True)
        with cloud.platform as platform:
            assert platform.model_view().exists("/vmRoot")
            assert platform.model_view(consistency="leader").exists("/vmRoot")


class TestPinVisibilityMarking:
    def test_merged_view_prefers_the_pinned_shards_copy(self):
        """Under the deprecated pin policy, the owner's copy of a unit a
        pinned transaction wrote is bootstrap-frozen; the merged view must
        surface the pinned shard's copy instead of the stale owner copy."""
        config = TropicConfig(num_shards=2, logical_only=True,
                              cross_shard_policy="pin")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2,
                                 config=config, logical_only=True)
            with cloud.platform as platform:
                vm_host = cloud.inventory.vm_hosts[4]     # shard 1 ...
                storage = cloud.inventory.storage_host_for(0)  # ... shard 0
                txn = platform.submit("spawnVM", {
                    "vm_name": "pinned", "image_template": "template-small",
                    "storage_host": storage, "vm_host": vm_host, "mem_mb": 256,
                })
                assert txn.state is TransactionState.COMMITTED
                # Pin runs on the lowest involved shard (0, the storage
                # owner); the VM write on vm_host is the foreign one.
                pinned_shard = platform.shard_of_txn(txn.txid)
                vm_owner = platform.shard_router.shard_of(vm_host)
                assert pinned_shard != vm_owner
                # The owner's model never saw the write ...
                assert not platform.leader(vm_owner).model.exists(
                    f"{vm_host}/pinned")
                # ... but the merged view surfaces the pinned shard's copy.
                assert platform.model_view().exists(f"{vm_host}/pinned")
