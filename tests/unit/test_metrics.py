"""Unit tests for statistics helpers, collectors and report rendering."""

import pytest

from repro.common.clock import VirtualClock
from repro.datamodel.tree import DataModel
from repro.metrics.collectors import MemoryEstimator, ThroughputMeter, UtilizationSampler
from repro.metrics.report import ascii_table, format_cdf, format_percent, format_series
from repro.metrics.stats import cdf_points, linear_correlation, mean, percentile, summary


class TestStats:
    def test_percentile_bounds(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5
        assert percentile(values, 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([1, 2], 50) == pytest.approx(1.5)

    def test_percentile_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_cdf_points_monotone(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, pytest.approx(1 / 3)), (2, pytest.approx(2 / 3)), (3, 1.0)]

    def test_cdf_of_empty(self):
        assert cdf_points([]) == []

    def test_summary(self):
        result = summary([2.0, 4.0, 6.0, 8.0])
        assert result["mean"] == 5.0
        assert result["min"] == 2.0 and result["max"] == 8.0
        assert result["count"] == 4

    def test_summary_empty(self):
        assert summary([])["count"] == 0

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0

    def test_linear_correlation(self):
        xs = [1, 2, 3, 4, 5]
        assert linear_correlation(xs, [2 * x for x in xs]) == pytest.approx(1.0)
        assert linear_correlation(xs, [-x for x in xs]) == pytest.approx(-1.0)

    def test_linear_correlation_validates_input(self):
        with pytest.raises(ValueError):
            linear_correlation([1], [1])


class TestCollectors:
    def test_utilization_sampler(self):
        clock = VirtualClock()
        sampler = UtilizationSampler(clock=clock)
        sampler.start(busy_seconds=0.0)
        clock.advance(10.0)
        fraction = sampler.sample(busy_seconds=5.0, label=1.0)
        assert fraction == pytest.approx(0.5)
        clock.advance(10.0)
        sampler.sample(busy_seconds=15.0, label=2.0)
        assert sampler.peak() == pytest.approx(1.0)
        assert sampler.average() == pytest.approx(0.75)

    def test_utilization_clamped_to_unit_interval(self):
        clock = VirtualClock()
        sampler = UtilizationSampler(clock=clock)
        sampler.start(0.0)
        clock.advance(1.0)
        assert sampler.sample(busy_seconds=100.0) == 1.0

    def test_throughput_meter(self):
        clock = VirtualClock()
        meter = ThroughputMeter(clock=clock)
        meter.start()
        meter.record(10)
        clock.advance(5.0)
        assert meter.throughput() == pytest.approx(2.0)

    def test_memory_estimator_scales_with_resources(self):
        small = DataModel()
        small.create("/a", "vmHost", {"mem_mb": 1})
        large = DataModel()
        for index in range(200):
            large.create(f"/h{index}", "vmHost", {"mem_mb": 1})
        assert MemoryEstimator.node_count(large) > MemoryEstimator.node_count(small)
        assert MemoryEstimator.estimate_bytes(large) > MemoryEstimator.estimate_bytes(small)
        assert MemoryEstimator.bytes_per_resource(large) > 0


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(("name", "value"), [("a", 1), ("long-name", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert len(lines) == 4

    def test_format_series(self):
        text = format_series([(0.0, 0.1), (1.0, 0.5)], "t", "util", title="S")
        assert "S" in text and "#" in text

    def test_format_series_empty(self):
        assert "empty" in format_series([], title="S")

    def test_format_cdf(self):
        points = cdf_points([0.1, 0.2, 0.3, 0.4])
        text = format_cdf(points, title="latency")
        assert "50%" in text and "latency" in text

    def test_format_percent(self):
        assert format_percent(0.5421) == "54.2%"
