"""Unit tests for the controller's logical-layer processing (Figure 2)."""


from repro.common.config import TropicConfig
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.events import request_message, result_message
from repro.core.persistence import TropicStore
from repro.core.txn import Transaction, TransactionState
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures


def make_controller(policy="fifo", num_hosts=4, host_mem_mb=4096):
    """Controller + queues + store wired to an in-memory ensemble."""
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=60.0)
    client = CoordinationClient(ensemble)
    store = TropicStore(KVStore(client))
    input_queue = DistributedQueue(client, "/queues/inputQ")
    phy_queue = DistributedQueue(client, "/queues/phyQ")
    inventory = build_inventory(num_vm_hosts=num_hosts, num_storage_hosts=2,
                                host_mem_mb=host_mem_mb, with_devices=False)
    store.save_checkpoint(inventory.model, 0)
    config = TropicConfig(scheduler_policy=policy)
    controller = Controller(
        name="ctrl-test",
        config=config,
        store=store,
        input_queue=input_queue,
        phy_queue=phy_queue,
        schema=build_schema(),
        procedures=build_procedures(),
    )
    return controller, store, input_queue, phy_queue


def submit_spawn(store, input_queue, vm_name, vm_host="/vmRoot/vmHost0",
                 storage_host="/storageRoot/storageHost0", mem_mb=1024):
    txn = Transaction(
        procedure="spawnVM",
        args={
            "vm_name": vm_name,
            "image_template": "template-small",
            "storage_host": storage_host,
            "vm_host": vm_host,
            "mem_mb": mem_mb,
        },
    )
    txn.mark(TransactionState.INITIALIZED, 0.0)
    store.save_transaction(txn)
    input_queue.put(request_message(txn.txid))
    return txn


class TestAcceptance:
    def test_request_accepted_into_todo(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.step()
        loaded = store.load_transaction(txn.txid)
        # Accepted and immediately scheduled to the physical layer.
        assert loaded.state is TransactionState.STARTED
        assert controller.stats["accepted"] == 1

    def test_duplicate_request_ignored(self):
        controller, store, input_queue, phy_queue = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.step()
        input_queue.put(request_message(txn.txid))  # duplicate delivery
        controller.step()
        assert controller.stats["accepted"] == 1
        assert phy_queue.size() == 1

    def test_unknown_txid_request_ignored(self):
        controller, _, input_queue, _ = make_controller()
        input_queue.put(request_message("txn-ghost"))
        controller.step()
        assert controller.stats["accepted"] == 0

    def test_acked_only_after_processing(self):
        controller, store, input_queue, _ = make_controller()
        submit_spawn(store, input_queue, "vm1")
        assert input_queue.size() == 1
        controller.step()
        assert input_queue.size() == 0


class TestSchedulingDispositions:
    def test_runnable_transaction_dispatched_to_phyq(self):
        controller, store, input_queue, phy_queue = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.step()
        assert phy_queue.size() == 1
        assert phy_queue.peek()["txid"] == txn.txid
        assert txn.txid in controller.outstanding

    def test_constraint_violation_aborts_immediately(self):
        controller, store, input_queue, phy_queue = make_controller()
        txn = submit_spawn(store, input_queue, "huge", mem_mb=99999)
        controller.step()
        loaded = store.load_transaction(txn.txid)
        assert loaded.state is TransactionState.ABORTED
        assert phy_queue.is_empty()
        assert controller.stats["aborted_logical"] == 1

    def test_conflicting_transaction_deferred_fifo(self):
        controller, store, input_queue, phy_queue = make_controller()
        first = submit_spawn(store, input_queue, "vm1")
        second = submit_spawn(store, input_queue, "vm2")  # same host/storage
        controller.step()
        controller.step()
        assert store.load_transaction(first.txid).state is TransactionState.STARTED
        assert store.load_transaction(second.txid).state is TransactionState.DEFERRED
        assert controller.stats["deferred"] >= 1
        assert phy_queue.size() == 1

    def test_deferred_transaction_runs_after_commit(self):
        controller, store, input_queue, phy_queue = make_controller()
        first = submit_spawn(store, input_queue, "vm1")
        second = submit_spawn(store, input_queue, "vm2")
        controller.run_until_idle()
        input_queue.put(result_message(first.txid, "committed"))
        controller.run_until_idle()
        assert store.load_transaction(second.txid).state is TransactionState.STARTED

    def test_non_conflicting_transactions_run_concurrently(self):
        controller, store, input_queue, phy_queue = make_controller()
        submit_spawn(store, input_queue, "vm1", vm_host="/vmRoot/vmHost0",
                     storage_host="/storageRoot/storageHost0")
        submit_spawn(store, input_queue, "vm2", vm_host="/vmRoot/vmHost1",
                     storage_host="/storageRoot/storageHost1")
        controller.run_until_idle()
        assert phy_queue.size() == 2
        assert controller.outstanding_count() == 2

    def test_aggressive_policy_schedules_past_conflicting_head(self):
        controller, store, input_queue, phy_queue = make_controller(policy="aggressive")
        submit_spawn(store, input_queue, "vm1")
        submit_spawn(store, input_queue, "vm2")  # conflicts with vm1
        other = submit_spawn(store, input_queue, "vm3", vm_host="/vmRoot/vmHost2",
                             storage_host="/storageRoot/storageHost1")
        controller.run_until_idle()
        # FIFO would block vm3 behind vm2; aggressive dispatches it.
        assert store.load_transaction(other.txid).state is TransactionState.STARTED
        assert phy_queue.size() == 2


class TestCleanup:
    def test_commit_cleanup_releases_locks_and_records_applied(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()
        loaded = store.load_transaction(txn.txid)
        assert loaded.state is TransactionState.COMMITTED
        assert store.applied_since(0) == [txn.txid]
        assert controller.lock_manager.active_transactions() == set()
        assert controller.model.exists("/vmRoot/vmHost0/vm1")

    def test_abort_cleanup_rolls_back_logical_layer(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "aborted", error="device exploded"))
        controller.run_until_idle()
        loaded = store.load_transaction(txn.txid)
        assert loaded.state is TransactionState.ABORTED
        assert loaded.error == "device exploded"
        assert not controller.model.exists("/vmRoot/vmHost0/vm1")
        assert controller.lock_manager.active_transactions() == set()

    def test_failed_cleanup_fences_subtree(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(
            result_message(txn.txid, "failed", error="undo failed",
                           failed_path="/vmRoot/vmHost0")
        )
        controller.run_until_idle()
        assert store.load_transaction(txn.txid).state is TransactionState.FAILED
        assert controller.model.is_fenced("/vmRoot/vmHost0")
        assert "/vmRoot/vmHost0" in store.load_inconsistent_paths()

    def test_duplicate_result_is_idempotent(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()
        assert controller.stats["committed"] == 1
        assert store.applied_since(0) == [txn.txid]

    def test_checkpoint_after_configured_commits(self):
        controller, store, input_queue, _ = make_controller()
        controller.config = controller.config.with_overrides(checkpoint_every=2)
        names = ["vm1", "vm2"]
        for index, name in enumerate(names):
            txn = submit_spawn(store, input_queue, name, vm_host=f"/vmRoot/vmHost{index}",
                               storage_host="/storageRoot/storageHost0")
            controller.run_until_idle()
            input_queue.put(result_message(txn.txid, "committed"))
            controller.run_until_idle()
        assert controller.stats["checkpoints"] == 1
        model, seq = store.load_checkpoint()
        assert seq == 2
        assert model.exists("/vmRoot/vmHost0/vm1")
        assert store.applied_since(seq) == []


class TestKill:
    def test_kill_outstanding_transaction(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        controller.send_kill(txn.txid)
        loaded = store.load_transaction(txn.txid)
        assert loaded.state is TransactionState.ABORTED
        assert not controller.model.exists("/vmRoot/vmHost0/vm1")
        # The touched subtrees are fenced pending repair (§4).
        assert controller.model.is_fenced("/vmRoot/vmHost0")
        # A late worker result must not resurrect the transaction.
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()
        assert store.load_transaction(txn.txid).state is TransactionState.ABORTED

    def test_kill_queued_transaction(self):
        controller, store, input_queue, _ = make_controller()
        submit_spawn(store, input_queue, "vm1")
        blocked = submit_spawn(store, input_queue, "vm2")
        controller.run_until_idle()  # vm2 is deferred behind vm1
        controller.send_kill(blocked.txid)
        assert store.load_transaction(blocked.txid).state is TransactionState.ABORTED

    def test_busy_seconds_accumulate(self):
        controller, store, input_queue, _ = make_controller()
        submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        assert controller.busy_seconds() > 0.0
