"""Unit tests for logical simulation, constraint aborts and rollback (§3.1.2)."""

import pytest

from repro.core.constraints import ConstraintEngine
from repro.core.context import OrchestrationContext
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction
from repro.datamodel.path import ResourcePath


class TestSpawnSimulation:
    def test_successful_spawn_produces_table1_log(self, executor, make_spawn_txn):
        txn = make_spawn_txn("vm1")
        outcome = executor.simulate(txn)
        assert outcome.ok
        actions = [(record.path, record.action) for record in txn.log]
        assert actions == [
            ("/storageRoot/storageHost0", "cloneImage"),
            ("/storageRoot/storageHost0", "exportImage"),
            ("/vmRoot/vmHost0", "importImage"),
            ("/vmRoot/vmHost0", "createVM"),
            ("/vmRoot/vmHost0", "startVM"),
        ]
        undos = [record.undo_action for record in txn.log]
        assert undos == ["removeImage", "unexportImage", "unimportImage", "removeVM", "stopVM"]

    def test_simulation_mutates_logical_model(self, executor, model, make_spawn_txn):
        executor.simulate(make_spawn_txn("vm1"))
        assert model.get("/vmRoot/vmHost0/vm1")["state"] == "running"
        assert model.exists("/storageRoot/storageHost0/vm1-disk")

    def test_rwset_contains_written_paths_and_constraint_scope(self, executor, make_spawn_txn):
        txn = make_spawn_txn("vm1")
        executor.simulate(txn)
        assert "/vmRoot/vmHost0" in txn.rwset.writes
        assert "/storageRoot/storageHost0" in txn.rwset.writes
        assert "/vmRoot/vmHost0" in txn.rwset.constraint_reads

    def test_resimulation_resets_log(self, executor, make_spawn_txn):
        txn = make_spawn_txn("vm1")
        executor.simulate(txn)
        executor.rollback(txn)
        executor.simulate(txn)
        assert len(txn.log) == 5  # not 10


class TestConstraintAborts:
    def test_memory_constraint_violation_aborts(self, executor, make_spawn_txn):
        # Host capacity in the fixture inventory is 4096 MB.
        txn = make_spawn_txn("huge", mem_mb=5000)
        outcome = executor.simulate(txn)
        assert not outcome.ok
        assert outcome.constraint_violation
        assert "capacity" in (outcome.error or "")

    def test_constraint_abort_rolls_back_model(self, executor, model, make_spawn_txn):
        executor.simulate(make_spawn_txn("huge", mem_mb=5000))
        assert not model.exists("/vmRoot/vmHost0/huge")
        assert not model.exists("/storageRoot/storageHost0/huge-disk")

    def test_cumulative_memory_constraint(self, executor, make_spawn_txn):
        assert executor.simulate(make_spawn_txn("vm1", mem_mb=3000)).ok
        outcome = executor.simulate(make_spawn_txn("vm2", mem_mb=3000))
        assert not outcome.ok and outcome.constraint_violation

    def test_unknown_procedure_aborts(self, executor):
        outcome = executor.simulate(Transaction("noSuchProcedure"))
        assert not outcome.ok
        assert not outcome.constraint_violation

    def test_missing_template_aborts(self, executor, make_spawn_txn):
        outcome = executor.simulate(make_spawn_txn("vm1", template="no-such-template"))
        assert not outcome.ok

    def test_missing_host_aborts(self, executor, make_spawn_txn):
        outcome = executor.simulate(make_spawn_txn("vm1", vm_host="/vmRoot/vmHost99"))
        assert not outcome.ok


class TestRollbackAndReplay:
    def test_rollback_undoes_all_effects(self, executor, model, make_spawn_txn):
        txn = make_spawn_txn("vm1")
        executor.simulate(txn)
        executor.rollback(txn)
        assert not model.exists("/vmRoot/vmHost0/vm1")
        assert not model.exists("/storageRoot/storageHost0/vm1-disk")
        assert "vm1-disk" not in model.get("/vmRoot/vmHost0")["imported_images"]

    def test_apply_log_replays_committed_effects(self, executor, model, schema, procedures,
                                                 make_spawn_txn):
        txn = make_spawn_txn("vm1")
        executor.simulate(txn)
        # Re-apply the same log on a fresh copy of the initial model.
        fresh = model.clone()
        fresh.delete("/vmRoot/vmHost0/vm1")
        fresh.delete("/storageRoot/storageHost0/vm1-disk")
        fresh.set_attrs("/vmRoot/vmHost0", imported_images=[])
        other = LogicalExecutor(fresh, schema, procedures)
        other.apply_log(txn.log)
        assert fresh.get("/vmRoot/vmHost0/vm1")["state"] == "running"

    def test_rollback_counter(self, executor, make_spawn_txn):
        before = executor.rollbacks
        executor.simulate(make_spawn_txn("huge", mem_mb=9999))
        assert executor.rollbacks == before + 1


class TestOrchestrationContext:
    def test_reads_are_recorded(self, model, schema):
        txn = Transaction("inline")
        ctx = OrchestrationContext(model, schema, txn, ConstraintEngine(schema))
        ctx.read("/vmRoot/vmHost0")
        ctx.children("/vmRoot")
        ctx.exists("/vmRoot/vmHost1")
        assert {"/vmRoot/vmHost0", "/vmRoot", "/vmRoot/vmHost1"} <= txn.rwset.reads

    def test_do_records_log_and_write(self, model, schema):
        txn = Transaction("inline")
        ctx = OrchestrationContext(model, schema, txn, ConstraintEngine(schema))
        ctx.do("/vmRoot/vmHost0", "importImage", "disk-x")
        assert txn.log[0].action == "importImage"
        assert "/vmRoot/vmHost0" in txn.rwset.writes
        assert "disk-x" in model.get("/vmRoot/vmHost0")["imported_images"]

    def test_query_via_context(self, model, schema):
        txn = Transaction("inline")
        ctx = OrchestrationContext(model, schema, txn, ConstraintEngine(schema))
        assert ctx.query("/vmRoot/vmHost0", "memoryAvailable") == 4096

    def test_require_raises_procedure_error(self, model, schema):
        from repro.common.errors import ProcedureError

        txn = Transaction("inline")
        ctx = OrchestrationContext(model, schema, txn, ConstraintEngine(schema))
        with pytest.raises(ProcedureError):
            ctx.require(False, "nope")

    def test_fenced_path_rejected(self, model, schema):
        from repro.common.errors import InconsistencyError

        model.mark_inconsistent("/vmRoot/vmHost0")
        txn = Transaction("inline")
        ctx = OrchestrationContext(model, schema, txn, ConstraintEngine(schema))
        with pytest.raises(InconsistencyError):
            ctx.do("/vmRoot/vmHost0", "importImage", "x")


class TestConstraintEngine:
    def test_highest_constrained_ancestor_is_host(self, model, schema):
        engine = ConstraintEngine(schema)
        scope = engine.highest_constrained_ancestor(model, "/vmRoot/vmHost0/vm1")
        assert scope == ResourcePath.parse("/vmRoot/vmHost0")

    def test_no_constrained_ancestor_returns_none(self, model, schema):
        engine = ConstraintEngine(schema)
        assert engine.highest_constrained_ancestor(model, "/netRoot") is None

    def test_check_counts(self, model, schema):
        engine = ConstraintEngine(schema)
        engine.check_after_write(model, "/vmRoot/vmHost0")
        assert engine.checks_performed == 1
