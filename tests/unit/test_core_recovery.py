"""Unit tests for leader-failover state recovery (§2.3)."""

from repro.common.config import TropicConfig
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.events import result_message
from repro.core.controller import Controller
from repro.core.persistence import TropicStore
from repro.core.recovery import recover_state
from repro.core.txn import TransactionState
from repro.tcloud.entities import build_schema
from repro.tcloud.procedures import build_procedures

from tests.unit.test_core_controller import make_controller, submit_spawn


def recover(store, policy="fifo"):
    return recover_state(
        store, build_schema(), build_procedures(), TropicConfig(scheduler_policy=policy)
    )


class TestRecovery:
    def test_recovery_from_empty_store(self):
        ensemble = CoordinationEnsemble(num_servers=1, default_session_timeout=60.0)
        store = TropicStore(KVStore(CoordinationClient(ensemble)))
        state = recover(store)
        assert state.model.count() == 1  # bare root
        assert len(state.todo) == 0
        assert state.outstanding == {}

    def test_committed_transactions_replayed_from_applied_log(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()

        state = recover(store)
        assert state.model.get("/vmRoot/vmHost0/vm1")["state"] == "running"
        assert txn.txid in state.replayed_committed

    def test_started_transactions_reapplied_with_locks(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()  # started, result not yet delivered

        state = recover(store)
        assert txn.txid in state.outstanding
        assert state.model.exists("/vmRoot/vmHost0/vm1")
        assert state.lock_manager.active_transactions() == {txn.txid}

    def test_accepted_transactions_requeued(self):
        controller, store, input_queue, _ = make_controller()
        first = submit_spawn(store, input_queue, "vm1")
        second = submit_spawn(store, input_queue, "vm2")  # deferred behind vm1
        controller.run_until_idle()

        state = recover(store)
        queued = [txn.txid for txn in state.todo.transactions()]
        assert second.txid in queued
        assert first.txid in state.outstanding

    def test_applied_but_unmarked_started_txn_completed(self):
        """Crash window: applied-log entry written, transaction doc not yet
        marked committed.  Recovery must finish the cleanup and not replay
        the effects twice."""
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        store.record_applied(txn.txid)  # simulate crash after this write

        state = recover(store)
        assert txn.txid not in state.outstanding
        assert store.load_transaction(txn.txid).state is TransactionState.COMMITTED
        # Effects present exactly once.
        host = state.model.get("/vmRoot/vmHost0")
        assert sorted(host.children) == ["vm1"]

    def test_recovery_is_idempotent(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()

        first = recover(store)
        second = recover(store)
        assert first.model.to_dict() == second.model.to_dict()

    def test_inconsistent_paths_restored(self):
        controller, store, input_queue, _ = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")
        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "failed", failed_path="/vmRoot/vmHost0"))
        controller.run_until_idle()

        state = recover(store)
        assert state.model.is_fenced("/vmRoot/vmHost0")

    def test_new_controller_resumes_processing(self):
        """A fresh controller attached to the same store picks up where the
        failed leader stopped: pending results are processed, deferred
        transactions eventually start."""
        controller, store, input_queue, phy_queue = make_controller()
        first = submit_spawn(store, input_queue, "vm1")
        second = submit_spawn(store, input_queue, "vm2")
        controller.run_until_idle()
        input_queue.put(result_message(first.txid, "committed"))
        # The old leader dies here; build a replacement on the same store.
        replacement = Controller(
            name="ctrl-replacement",
            config=TropicConfig(),
            store=store,
            input_queue=input_queue,
            phy_queue=phy_queue,
            schema=build_schema(),
            procedures=build_procedures(),
        )
        replacement.run_until_idle()
        assert store.load_transaction(first.txid).state is TransactionState.COMMITTED
        assert store.load_transaction(second.txid).state is TransactionState.STARTED
        assert replacement.model.exists("/vmRoot/vmHost0/vm1")
        assert replacement.model.exists("/vmRoot/vmHost0/vm2")
