"""Unit tests for the coordination ensemble (znodes, quorum, sessions, watches)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    QuorumLostError,
    SessionExpiredError,
)
from repro.coordination.ensemble import CoordinationEnsemble


@pytest.fixture
def ensemble():
    return CoordinationEnsemble(num_servers=3, default_session_timeout=10.0)


@pytest.fixture
def session(ensemble):
    return ensemble.create_session()


class TestZnodeOperations:
    def test_create_and_get(self, ensemble, session):
        ensemble.create(session.session_id, "/a", "hello")
        data, stat = ensemble.get(session.session_id, "/a")
        assert data == "hello"
        assert stat.version == 0

    def test_create_requires_parent(self, ensemble, session):
        with pytest.raises(NoNodeError):
            ensemble.create(session.session_id, "/a/b", "x")

    def test_create_duplicate_rejected(self, ensemble, session):
        ensemble.create(session.session_id, "/a")
        with pytest.raises(NodeExistsError):
            ensemble.create(session.session_id, "/a")

    def test_sequential_create_monotonic(self, ensemble, session):
        ensemble.create(session.session_id, "/q")
        first = ensemble.create(session.session_id, "/q/item-", sequential=True)
        second = ensemble.create(session.session_id, "/q/item-", sequential=True)
        assert first < second

    def test_set_bumps_version(self, ensemble, session):
        ensemble.create(session.session_id, "/a", "1")
        stat = ensemble.set(session.session_id, "/a", "2")
        assert stat.version == 1

    def test_conditional_set_with_wrong_version(self, ensemble, session):
        ensemble.create(session.session_id, "/a", "1")
        with pytest.raises(BadVersionError):
            ensemble.set(session.session_id, "/a", "2", version=5)

    def test_delete(self, ensemble, session):
        ensemble.create(session.session_id, "/a")
        ensemble.delete(session.session_id, "/a")
        assert ensemble.exists(session.session_id, "/a") is None

    def test_delete_with_children_rejected(self, ensemble, session):
        ensemble.create(session.session_id, "/a")
        ensemble.create(session.session_id, "/a/b")
        with pytest.raises(NotEmptyError):
            ensemble.delete(session.session_id, "/a")

    def test_get_children_sorted(self, ensemble, session):
        ensemble.create(session.session_id, "/a")
        ensemble.create(session.session_id, "/a/z")
        ensemble.create(session.session_id, "/a/b")
        assert ensemble.get_children(session.session_id, "/a") == ["b", "z"]

    def test_ensure_path_creates_chain(self, ensemble, session):
        ensemble.ensure_path(session.session_id, "/x/y/z")
        assert ensemble.exists(session.session_id, "/x/y/z") is not None

    def test_all_replicas_apply_writes(self, ensemble, session):
        ensemble.create(session.session_id, "/a", "v")
        for server in ensemble.servers:
            assert server.lookup("/a").data == "v"


class TestQuorum:
    def test_write_succeeds_with_one_server_down(self, ensemble, session):
        ensemble.crash_server(2)
        ensemble.create(session.session_id, "/a", "v")
        assert ensemble.get(session.session_id, "/a")[0] == "v"

    def test_write_fails_without_quorum(self, ensemble, session):
        ensemble.crash_server(1)
        ensemble.crash_server(2)
        with pytest.raises(QuorumLostError):
            ensemble.create(session.session_id, "/a")

    def test_restarted_server_syncs_state(self, ensemble, session):
        ensemble.crash_server(2)
        ensemble.create(session.session_id, "/a", "v")
        ensemble.restart_server(2)
        assert ensemble.servers[2].lookup("/a").data == "v"

    def test_has_quorum(self, ensemble):
        assert ensemble.has_quorum()
        ensemble.crash_server(0)
        assert ensemble.has_quorum()
        ensemble.crash_server(1)
        assert not ensemble.has_quorum()


class TestSessionsAndEphemerals:
    def test_session_expiry_removes_ephemerals(self):
        clock = VirtualClock()
        ensemble = CoordinationEnsemble(num_servers=3, clock=clock, default_session_timeout=1.0)
        dying = ensemble.create_session()
        watcher_session = ensemble.create_session(timeout=100.0)
        ensemble.create(dying.session_id, "/eph", ephemeral=True)
        clock.advance(2.0)
        ensemble.heartbeat(watcher_session.session_id)  # triggers lazy expiry
        assert ensemble.exists(watcher_session.session_id, "/eph") is None
        with pytest.raises(SessionExpiredError):
            ensemble.heartbeat(dying.session_id)

    def test_force_expire_session(self, ensemble, session):
        other = ensemble.create_session()
        ensemble.create(session.session_id, "/eph", ephemeral=True)
        ensemble.expire_session(session.session_id)
        assert ensemble.exists(other.session_id, "/eph") is None

    def test_close_session_removes_ephemerals(self, ensemble, session):
        other = ensemble.create_session()
        ensemble.create(session.session_id, "/eph", ephemeral=True)
        ensemble.close_session(session.session_id)
        assert ensemble.exists(other.session_id, "/eph") is None

    def test_persistent_nodes_survive_session_close(self, ensemble, session):
        other = ensemble.create_session()
        ensemble.create(session.session_id, "/durable")
        ensemble.close_session(session.session_id)
        assert ensemble.exists(other.session_id, "/durable") is not None

    def test_session_is_live(self, ensemble, session):
        assert ensemble.session_is_live(session.session_id)
        ensemble.expire_session(session.session_id)
        assert not ensemble.session_is_live(session.session_id)


class TestWatches:
    def test_data_watch_fires_on_change(self, ensemble, session):
        events = []
        ensemble.create(session.session_id, "/a", "1")
        ensemble.get(session.session_id, "/a", watcher=events.append)
        ensemble.set(session.session_id, "/a", "2")
        assert [e.kind for e in events] == ["changed"]

    def test_data_watch_is_one_shot(self, ensemble, session):
        events = []
        ensemble.create(session.session_id, "/a", "1")
        ensemble.get(session.session_id, "/a", watcher=events.append)
        ensemble.set(session.session_id, "/a", "2")
        ensemble.set(session.session_id, "/a", "3")
        assert len(events) == 1

    def test_child_watch_fires_on_create_and_delete(self, ensemble, session):
        events = []
        ensemble.create(session.session_id, "/parent")
        ensemble.get_children(session.session_id, "/parent", watcher=events.append)
        ensemble.create(session.session_id, "/parent/child")
        ensemble.get_children(session.session_id, "/parent", watcher=events.append)
        ensemble.delete(session.session_id, "/parent/child")
        assert [e.kind for e in events] == ["child", "child"]

    def test_exists_watch_fires_on_creation(self, ensemble, session):
        events = []
        assert ensemble.exists(session.session_id, "/future", watcher=events.append) is None
        ensemble.create(session.session_id, "/future")
        assert [e.kind for e in events] == ["created"]

    def test_op_count_increases(self, ensemble, session):
        before = ensemble.op_count
        ensemble.create(session.session_id, "/a")
        ensemble.get(session.session_id, "/a")
        assert ensemble.op_count >= before + 2
