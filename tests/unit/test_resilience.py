"""Cross-component resilience units (PR 6).

One file for the small fault-survival contracts the chaos soak composes:
tokened submission dedup on the platform API, the uniform txn_timeout,
queue-consumer session recovery, worker claimed-work retention, replica
watch re-arm rollback, graceful read degradation, and the typed
retryable gateway responses.
"""

import pytest

from repro.common.errors import ConfigurationError, SessionExpiredError, TxnTimeout
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.persistence import TropicStore
from repro.core.replica import ReadReplica
from repro.core.txn import TransactionState
from repro.metrics.collectors import ResilienceCounters
from repro.testing import ShardedCluster

from tests.unit.test_core_platform import make_platform, spawn_args


class TestTokenedSubmit:
    def test_same_token_resolves_to_same_transaction(self):
        platform, _ = make_platform()
        with platform:
            first = platform.submit(
                "spawnVM", spawn_args("vm1"), idempotency_token="tok-1"
            )
            again = platform.submit(
                "spawnVM", spawn_args("vm1"), idempotency_token="tok-1"
            )
            assert first.txid == again.txid
            assert first.state is TransactionState.COMMITTED
            assert platform.resilience_stats()["token_dedup_hits"] == 1
            # Applied exactly once despite two submits.
            assert platform.model_view().exists("/vmRoot/vmHost0/vm1")
            store = platform.leader().store
            applied = [txid for _, txid in store.applied_entries(0)]
            assert applied.count(first.txid) == 1

    def test_distinct_tokens_create_distinct_transactions(self):
        platform, _ = make_platform()
        with platform:
            one = platform.submit("spawnVM", spawn_args("a"), idempotency_token="t1")
            two = platform.submit("spawnVM", spawn_args("b"), idempotency_token="t2")
            assert one.txid != two.txid

    def test_redrive_after_crash_between_commit_and_ack(self):
        """The ambiguous window: the transaction went terminal but the
        client never saw the ack — and the crash also cost the leader its
        token index entry.  Recovery rebuilds the index from the terminal
        documents (which carry the token), so the re-drive still resolves
        to the original transaction instead of double-applying."""
        platform, _ = make_platform()
        with platform:
            leader = platform.leader()
            txn = platform.submit("spawnVM", spawn_args("vm1"), idempotency_token="t")
            assert txn.state is TransactionState.COMMITTED
            store = leader.store
            store.kv.delete(f"{TropicStore.TOKEN_PREFIX}/{TropicStore.token_key('t')}")
            assert store.lookup_token("t") is None
            # Failover: the successor's recovery reconciles the index from
            # the tokened terminal documents before serving clients again.
            leader.demote()
            leader.recover()
            entry = store.lookup_token("t")
            assert entry is not None and entry["txid"] == txn.txid
            again = platform.submit("spawnVM", spawn_args("vm1"), idempotency_token="t")
            assert again.txid == txn.txid
            assert again.state is TransactionState.COMMITTED
            applied = [txid for _, txid in store.applied_entries(0)]
            assert applied.count(txn.txid) == 1

    def test_submit_many_tokens_dedup_individually(self):
        platform, _ = make_platform()
        with platform:
            first = platform.submit_many(
                [("spawnVM", spawn_args("a")), ("spawnVM", spawn_args("b"))],
                idempotency_tokens=["t1", None],
            )
            second = platform.submit_many(
                [("spawnVM", spawn_args("a")), ("spawnVM", spawn_args("c"))],
                idempotency_tokens=["t1", None],
            )
            assert second[0].txid == first[0].txid  # deduped by token
            assert second[1].txid != first[1].txid  # untokened: new txn

    def test_submit_many_token_count_mismatch_rejected(self):
        platform, _ = make_platform()
        with platform:
            with pytest.raises(ConfigurationError):
                platform.submit_many(
                    [("spawnVM", spawn_args("a"))], idempotency_tokens=["t", "x"]
                )


class TestTxnTimeout:
    def test_wait_for_honours_config_txn_timeout(self):
        """config.txn_timeout caps every wait, typed as the ambiguous
        (retry-with-token-only) TxnTimeout."""
        platform, _ = make_platform(txn_timeout=0.05, queue_poll_interval=0.01)
        with platform:
            # Force the polling wait path (the inline runtime would
            # otherwise self-drive and report a lost transaction instead
            # of timing out).
            platform.threaded = True
            try:
                with pytest.raises(TxnTimeout) as excinfo:
                    platform.wait_for("txn-does-not-exist", timeout=10.0)
            finally:
                platform.threaded = False
            assert excinfo.value.txid == "txn-does-not-exist"
            # Typed error stays a TimeoutError for legacy callers.
            assert isinstance(excinfo.value, TimeoutError)


class TestQueueSessionRecovery:
    def setup_method(self):
        self.ensemble = CoordinationEnsemble(
            num_servers=3, default_session_timeout=3600.0
        )
        self.counters = ResilienceCounters()

    def test_get_survives_session_expiry(self):
        consumer = DistributedQueue(
            CoordinationClient(self.ensemble),
            "/q",
            counters=self.counters,
            reconnect_on_expiry=True,
        )
        producer = DistributedQueue(CoordinationClient(self.ensemble), "/q")
        producer.put({"n": 1})
        # Kill the consumer's session (its child watch dies with it); the
        # next get() must reconnect and still deliver the item.
        self.ensemble.expire_session(consumer.client.session_id)
        assert consumer.get(timeout=1.0) == {"n": 1}
        assert self.counters.session_expiries == 1
        assert self.counters.watch_rearms == 1

    def test_put_during_dead_session_is_not_missed(self):
        """At-least-once wakeup: an item enqueued while the consumer's
        session was dead is seen by the recovered consumer's re-list."""
        consumer = DistributedQueue(
            CoordinationClient(self.ensemble), "/q", reconnect_on_expiry=True
        )
        producer = DistributedQueue(CoordinationClient(self.ensemble), "/q")
        self.ensemble.expire_session(consumer.client.session_id)
        producer.put({"n": 2})
        assert consumer.get(timeout=1.0) == {"n": 2}

    def test_expiry_without_opt_in_still_raises(self):
        consumer = DistributedQueue(CoordinationClient(self.ensemble), "/q")
        self.ensemble.expire_session(consumer.client.session_id)
        with pytest.raises(SessionExpiredError):
            consumer.get(timeout=1.0)


class TestWorkerRetention:
    def test_results_survive_a_failed_inputq_put(self):
        """A worker whose result put_many fails transiently retains the
        outbox and delivers on the next step — the claim is durable and
        redispatch skips claimed txids, so nobody else can finish it."""
        cluster = ShardedCluster(num_shards=1)
        txn = cluster.submit_spawn("vm1")
        cluster.controllers[0].step()  # accept + dispatch
        worker = cluster.workers[0]
        original_put_many = worker.input_queue.put_many

        def failing_put_many(items):
            raise ConnectionError("coordination blip")

        worker.input_queue.put_many = failing_put_many
        with pytest.raises(ConnectionError):
            worker.step()
        assert worker._outbox, "executed result must be retained"
        assert cluster.stores[0].load_claim(txn.txid) is not None
        # Heal and re-step: the retained result is delivered first.
        worker.input_queue.put_many = original_put_many
        assert worker.step() is True
        assert worker._outbox == []
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED

    def test_claimed_work_executes_after_interrupted_step(self):
        """A transient fault after the claim multi but before execution:
        the claimed transaction is retained and finished next step."""
        cluster = ShardedCluster(num_shards=1)
        txn = cluster.submit_spawn("vm1")
        cluster.controllers[0].step()
        worker = cluster.workers[0]
        original_execute = worker.executor.execute
        calls = {"n": 0}

        def failing_execute(t):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SessionExpiredError("session lost mid-execute-batch")
            return original_execute(t)

        worker.executor.execute = failing_execute
        with pytest.raises(SessionExpiredError):
            worker.step()
        assert txn.txid in worker._claimed
        assert worker.step() is True
        assert txn.txid not in worker._claimed
        cluster.drain()
        assert cluster.state_of(txn) is TransactionState.COMMITTED


class TestReplicaWatchRearm:
    def test_failed_arming_rolls_back_the_armed_flag(self):
        """If watch registration dies with the session, the armed flag
        must roll back — a stale-true flag would skip re-registration
        forever and the replica would never wake again."""
        cluster = ShardedCluster(num_shards=1)
        cluster.submit_spawn("vm1")
        cluster.drain()
        counters = ResilienceCounters()
        store = TropicStore(KVStore(cluster.client, "/tropic/store/shard-0"))
        replica = ReadReplica(
            store, cluster.schema, cluster.procedures, shard_id=0, counters=counters
        )
        assert replica.model().exists("/vmRoot/vmHost0/vm1")
        # Break watch registration once (as a mid-arm session expiry would).
        kv = replica.store.kv
        original_watch_children = kv.watch_children

        def failing_watch_children(path, callback):
            raise SessionExpiredError("expired mid-arm")

        replica._applied_watch_armed = False
        kv.watch_children = failing_watch_children
        with pytest.raises(SessionExpiredError):
            replica.refresh(force=True)
        assert replica._applied_watch_armed is False  # rolled back
        kv.watch_children = original_watch_children
        replica.refresh(force=True)
        assert replica._applied_watch_armed is True
        # The re-registration after bootstrap was counted as a re-arm.
        assert counters.watch_rearms >= 1


class TestDegradedReads:
    def test_single_shard_fleet_view_degrades_on_leader_loss(self):
        """Leader unreachable: the default consistency falls back to a
        disclosed non-leader source instead of failing the read, and the
        strict mode still fails loudly."""
        platform, _ = make_platform()
        with platform:
            platform.submit("spawnVM", spawn_args("vm1"))
            view = platform.fleet_view()
            assert view.watermarks[0].source == "leader"

            original_leader = platform.leader

            def unreachable(shard=None):
                raise SessionExpiredError("leader session expired")

            platform.leader = unreachable
            try:
                degraded = platform.fleet_view()
                assert degraded.watermarks[0].source != "leader"
                # The degraded view still serves the committed data.
                assert degraded.model.exists("/vmRoot/vmHost0/vm1")
                assert platform.resilience_stats()["degraded_reads"] >= 1
                # consistency='leader' asked for authoritative-or-fail.
                with pytest.raises(SessionExpiredError):
                    platform.fleet_view(consistency="leader")
            finally:
                platform.leader = original_leader


class TestGatewayRetryable:
    def _raise(self, error):
        def handler(tenant, **params):
            raise error

        return handler

    def test_timeout_surfaces_as_ambiguous_retryable(self, gateway_fixture):
        gateway = gateway_fixture
        gateway._handlers["RunInstances"] = self._raise(TxnTimeout("slow", txid="t1"))
        response = gateway.handle(
            "acme-key", "RunInstances", name="web", instance_type="t.small"
        )
        assert response.ok is False
        assert response.code == "Timeout"
        assert response.retryable is True
        assert response.retry_after_s > 0
        assert response.to_dict()["retryable"] is True

    def test_transient_platform_faults_surface_as_unavailable(self, gateway_fixture):
        gateway = gateway_fixture
        gateway._handlers["RunInstances"] = self._raise(
            SessionExpiredError("leader session lost")
        )
        response = gateway.handle(
            "acme-key", "RunInstances", name="web", instance_type="t.small"
        )
        assert response.ok is False
        assert response.code == "Unavailable"
        assert response.retryable is True

    def test_denials_stay_non_retryable(self, gateway_fixture):
        response = gateway_fixture.handle("acme-key", "MigrateInstance", name="web")
        assert response.ok is False
        assert response.retryable is False
        assert response.retry_after_s is None


@pytest.fixture
def gateway_fixture(inline_cloud):
    from repro.gateway import ApiGateway, TenantDirectory

    tenants = TenantDirectory()
    tenants.register("acme", "acme-key")
    return ApiGateway(inline_cloud, tenants)
