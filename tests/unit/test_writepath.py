"""Tests for the PR 1 write-path performance subsystem.

Covers the group-commit batch (KVStore.WriteBatch + ensemble multi), the
delta-aware transaction documents, incremental checkpoints (including the
recovery-equality guarantee after leader failover), the txid-indexed
TodoQueue, the AGGRESSIVE policy's conflict-skip behaviour, queue batch
operations, the structure-aware deep copy, and path interning.
"""

import json

import pytest

from repro.common.config import TropicConfig
from repro.common.jsonutil import deep_copy, dumps
from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.coordination.queue import DistributedQueue
from repro.core.controller import Controller
from repro.core.events import result_message
from repro.core.persistence import TropicStore
from repro.core.scheduler import AGGRESSIVE, TodoQueue
from repro.core.signals import TERM
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.path import ResourcePath
from repro.datamodel.tree import DataModel
from repro.tcloud.entities import build_schema
from repro.tcloud.procedures import build_procedures

from tests.unit.test_core_controller import make_controller, submit_spawn


@pytest.fixture
def ensemble():
    return CoordinationEnsemble(num_servers=3, default_session_timeout=600.0)


@pytest.fixture
def kv(ensemble):
    return KVStore(CoordinationClient(ensemble))


@pytest.fixture
def store(kv):
    return TropicStore(kv)


class TestUpsertAndMulti:
    def test_upsert_is_one_round_trip(self, ensemble, kv):
        before = ensemble.write_round_trips
        kv.put("a/b/c/d", {"x": 1})
        assert ensemble.write_round_trips == before + 1
        assert kv.get("a/b/c/d") == {"x": 1}

    def test_upsert_overwrites(self, kv):
        kv.put("k", 1)
        kv.put("k", 2)
        assert kv.get("k") == 2

    def test_multi_applies_all_ops_in_one_round_trip(self, ensemble, kv):
        before = ensemble.write_round_trips
        with kv.batch():
            kv.put("m/a", 1)
            kv.put("m/b", 2)
            kv.delete("m/a")
        assert ensemble.write_round_trips == before + 1
        assert ensemble.multi_count == 1
        assert kv.get("m/a") is None
        assert kv.get("m/b") == 2


class TestWriteBatch:
    def test_batch_coalesces_same_key(self, ensemble, kv):
        before = ensemble.write_round_trips
        with kv.batch():
            kv.put("doc", {"v": 1})
            kv.put("doc", {"v": 2})
            kv.put("doc", {"v": 3})
        assert ensemble.write_round_trips == before + 1
        assert ensemble.multi_sub_ops == 1  # last-writer-wins coalescing
        assert kv.get("doc") == {"v": 3}

    def test_batch_read_through(self, kv):
        kv.put("seen", "old")
        with kv.batch():
            kv.put("seen", "new")
            kv.put("fresh", 7)
            kv.delete("seen-later")
            assert kv.get("seen") == "new"
            assert kv.get("fresh") == 7
            assert kv.exists("fresh")
        assert kv.get("seen") == "new"

    def test_batch_keys_read_through(self, kv):
        kv.put("dir/a", 1)
        with kv.batch():
            kv.put("dir/b", 2)
            kv.delete("dir/a")
            assert kv.keys("dir") == ["b"]
        assert kv.keys("dir") == ["b"]

    def test_batch_keys_deep_delete_keeps_child(self, kv):
        kv.put("dir/a/x", 1)
        kv.put("dir/a/y", 2)
        with kv.batch():
            kv.delete("dir/a/x")
            # Deleting a grandchild must not hide the child from listings.
            assert kv.keys("dir") == ["a"]
        assert kv.keys("dir") == ["a"]
        assert kv.get("dir/a/y") == 2

    def test_nested_batches_join_outermost(self, ensemble, kv):
        before = ensemble.write_round_trips
        with kv.batch():
            kv.put("n/a", 1)
            with kv.batch():
                kv.put("n/b", 2)
            # Inner exit must not commit yet.
            assert ensemble.write_round_trips == before
        assert ensemble.write_round_trips == before + 1

    def test_flush_mid_batch_commits_pending(self, ensemble, kv):
        with kv.batch():
            kv.put("f/a", 1)
            kv.flush()
            after_flush = ensemble.write_round_trips
            kv.put("f/b", 2)
            assert ensemble.write_round_trips == after_flush
        assert kv.get("f/a") == 1
        assert kv.get("f/b") == 2


class TestDeltaAwareTransactionDocuments:
    def _txn(self):
        txn = Transaction("spawnVM", {"vm_name": "vm1", "mem_mb": 512})
        txn.log.append("/vmRoot/h0/vm1", "createVM", ["vm1", 512], "removeVM", ["vm1"])
        txn.rwset.record_write("/vmRoot/h0/vm1")
        txn.rwset.record_read("/vmRoot/h0")
        return txn

    def test_document_bytes_identical_to_full_serialisation(self, store, kv):
        txn = self._txn()
        txn.mark(TransactionState.ACCEPTED, 1.0)
        store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
        txn.mark(TransactionState.DEFERRED, 2.0)
        txn.defer_count += 1
        store.save_transaction(txn, dirty_fields=())
        raw = kv.client.get_data(f"{kv.prefix}/txns/{txn.txid}")
        assert raw == dumps(txn.to_dict())
        assert json.loads(raw)["defer_count"] == 1

    def test_unchanged_document_skips_the_store_write(self, store, kv):
        txn = self._txn()
        txn.mark(TransactionState.ACCEPTED, 1.0)
        assert store.save_transaction(txn) is True
        puts_before = kv.puts
        assert store.save_transaction(txn, dirty_fields=()) is False
        assert kv.puts == puts_before
        assert store.txn_writes_skipped == 1

    def test_roundtrip_after_delta_saves(self, store):
        txn = self._txn()
        txn.mark(TransactionState.ACCEPTED, 1.0)
        store.save_transaction(txn)
        txn.mark(TransactionState.STARTED, 2.0)
        store.save_transaction(txn, dirty_fields=())
        loaded = store.load_transaction(txn.txid)
        assert loaded.state is TransactionState.STARTED
        assert len(loaded.log) == 1
        assert loaded.rwset.writes == {"/vmRoot/h0/vm1"}
        assert loaded.timestamps == txn.timestamps

    def test_failed_group_commit_invalidates_fragment_cache(self, ensemble, store):
        """A transient commit failure must not leave documents recorded as
        persisted: the retry would otherwise be suppressed by the
        unchanged-document check."""
        txn = self._txn()
        txn.mark(TransactionState.ACCEPTED, 1.0)
        for server in (0, 1):
            ensemble.crash_server(server)  # quorum lost
        with pytest.raises(Exception):
            with store.batch():
                store.save_transaction(txn)
        for server in (0, 1):
            ensemble.restart_server(server)
        assert store.load_transaction(txn.txid) is None  # nothing persisted
        assert store.save_transaction(txn) is True  # retry is not suppressed
        assert store.load_transaction(txn.txid).state is TransactionState.ACCEPTED

    def test_terminal_save_evicts_fragment_cache(self, store):
        txn = self._txn()
        store.save_transaction(txn)
        assert txn.txid in store._fragments
        txn.mark(TransactionState.COMMITTED, 3.0)
        store.save_transaction(txn, dirty_fields=())
        assert txn.txid not in store._fragments


class TestIncrementalCheckpoints:
    def _model(self):
        model = DataModel()
        model.create("/vmRoot", "vmRoot")
        model.create("/storageRoot", "storageRoot")
        for i in range(4):
            model.create(f"/vmRoot/h{i}", "vmHost", {"mem_mb": 4096})
        model.create("/storageRoot/s0", "storageHost")
        return model

    def test_full_then_incremental_roundtrip(self, store):
        model = self._model()
        store.save_checkpoint(model, 0)
        restored, seq = store.load_checkpoint()
        assert seq == 0
        assert restored.to_dict() == model.to_dict()

    def test_incremental_writes_only_dirty_units(self, store):
        model = self._model()
        store.save_checkpoint(model, 0)  # clears dirty tracking
        model.create("/vmRoot/h1/vm9", "vm", {"state": "running"})
        written = store.save_checkpoint_incremental(model, 1)
        assert written == 1  # only vmRoot/h1
        restored, seq = store.load_checkpoint()
        assert seq == 1
        assert restored.to_dict() == model.to_dict()

    def test_incremental_handles_deleted_units(self, store):
        model = self._model()
        store.save_checkpoint(model, 0)
        model.delete("/vmRoot/h3")
        store.save_checkpoint_incremental(model, 2)
        restored, _ = store.load_checkpoint()
        assert not restored.exists("/vmRoot/h3")
        assert restored.to_dict() == model.to_dict()

    def test_all_dirty_model_falls_back_to_full_write(self, store):
        model = self._model()  # fresh models are all-dirty
        written = store.save_checkpoint_incremental(model, 0)
        assert written == 5  # 4 hosts + 1 storage host
        restored, _ = store.load_checkpoint()
        assert restored.to_dict() == model.to_dict()

    def test_attr_mutation_marks_unit_dirty(self, store):
        model = self._model()
        store.save_checkpoint(model, 0)
        model.set_attrs("/vmRoot/h2", mem_mb=8192)
        assert store.save_checkpoint_incremental(model, 3) == 1
        restored, _ = store.load_checkpoint()
        assert restored.get("/vmRoot/h2")["mem_mb"] == 8192

    def test_inconsistency_flag_survives_incremental_checkpoint(self, store):
        model = self._model()
        store.save_checkpoint(model, 0)
        model.mark_inconsistent("/vmRoot/h0")
        store.save_checkpoint_incremental(model, 4)
        restored, _ = store.load_checkpoint()
        assert restored.is_fenced("/vmRoot/h0")


class TestRecoveryEqualityAfterFailover:
    """Incremental checkpoints + the applied log must rebuild the *exact*
    model a failed leader held (the §2.3 guarantee, now via the new
    checkpoint layout)."""

    def test_recovered_model_identical_after_checkpointed_workload(self):
        controller, store, input_queue, _ = make_controller()
        controller.config = controller.config.with_overrides(checkpoint_every=2)
        for index in range(5):
            txn = submit_spawn(
                store, input_queue, f"vm{index}",
                vm_host=f"/vmRoot/vmHost{index % 4}",
                storage_host=f"/storageRoot/storageHost{index % 2}",
            )
            controller.run_until_idle()
            input_queue.put(result_message(txn.txid, "committed"))
            controller.run_until_idle()
        assert controller.stats["checkpoints"] >= 2  # incremental path used

        replacement = Controller(
            name="ctrl-replacement",
            config=TropicConfig(),
            store=store,
            input_queue=input_queue,
            phy_queue=controller.phy_queue,
            schema=build_schema(),
            procedures=build_procedures(),
        )
        replacement.recover()
        assert replacement.model.to_dict() == controller.model.to_dict()

    def test_recovery_replays_commits_after_last_incremental_checkpoint(self):
        controller, store, input_queue, _ = make_controller()
        controller.config = controller.config.with_overrides(checkpoint_every=2)
        txids = []
        for index in range(3):  # checkpoint after 2, third rides the applied log
            txn = submit_spawn(
                store, input_queue, f"vm{index}", vm_host=f"/vmRoot/vmHost{index}",
            )
            controller.run_until_idle()
            input_queue.put(result_message(txn.txid, "committed"))
            controller.run_until_idle()
            txids.append(txn.txid)
        model, seq = store.load_checkpoint()
        assert seq == 2
        assert store.applied_since(seq) == [txids[2]]

        replacement = Controller(
            name="ctrl-b",
            config=TropicConfig(),
            store=store,
            input_queue=input_queue,
            phy_queue=controller.phy_queue,
            schema=build_schema(),
            procedures=build_procedures(),
        )
        replacement.recover()
        for index in range(3):
            assert replacement.model.exists(f"/vmRoot/vmHost{index}/vm{index}")


class TestCheckpointQuiescePoint:
    def test_checkpoint_deferred_while_transactions_outstanding(self):
        controller, store, input_queue, _ = make_controller()
        controller.config = controller.config.with_overrides(checkpoint_every=1)
        first = submit_spawn(store, input_queue, "vm1", vm_host="/vmRoot/vmHost0")
        second = submit_spawn(store, input_queue, "vm2", vm_host="/vmRoot/vmHost1",
                              storage_host="/storageRoot/storageHost1")
        controller.run_until_idle()  # both STARTED
        input_queue.put(result_message(first.txid, "committed"))
        controller.run_until_idle()
        # vm2 is still outstanding: its simulated effects are in the model,
        # so the checkpoint must wait for the quiesce point.
        assert controller.stats["checkpoints"] == 0
        input_queue.put(result_message(second.txid, "committed"))
        controller.run_until_idle()
        assert controller.stats["checkpoints"] == 1
        model, seq = store.load_checkpoint()
        assert seq == 2
        assert model.exists("/vmRoot/vmHost0/vm1")
        assert model.exists("/vmRoot/vmHost1/vm2")


class TestFailedCommitRecovery:
    def test_step_failure_demotes_and_rerecovery_processes_exactly_once(self):
        """A failed group commit loses the buffered writes while in-memory
        transitions survive; the controller must abandon its soft state and
        re-recover from the store so nothing is double-scheduled."""
        controller, store, input_queue, phy_queue = make_controller()
        txn = submit_spawn(store, input_queue, "vm1")

        client = store.kv.client
        original_multi = client.multi
        calls = {"n": 0}

        def failing_multi(ops):
            calls["n"] += 1
            raise ConnectionError("injected commit failure")

        client.multi = failing_multi
        with pytest.raises(ConnectionError):
            controller.step()
        client.multi = original_multi

        assert controller.recovered is False  # soft state abandoned
        assert controller.outstanding == {}
        # Nothing was persisted or dispatched, and the message is unacked.
        assert store.load_transaction(txn.txid).state is TransactionState.INITIALIZED
        assert phy_queue.is_empty()
        assert input_queue.size() == 1

        controller.run_until_idle()
        input_queue.put(result_message(txn.txid, "committed"))
        controller.run_until_idle()
        assert store.load_transaction(txn.txid).state is TransactionState.COMMITTED
        assert store.applied_since(0) == [txn.txid]  # exactly one commit


class TestTodoQueueIndex:
    def _txn(self, name):
        return Transaction(name)

    def test_remove_is_indexed(self):
        queue = TodoQueue()
        txns = [self._txn(f"p{i}") for i in range(50)]
        for txn in txns:
            queue.push_back(txn)
        assert queue.remove(txns[25].txid) is txns[25]
        assert queue.remove(txns[25].txid) is None
        assert len(queue) == 49

    def test_repush_after_remove(self):
        queue = TodoQueue()
        a = self._txn("a")
        queue.push_back(a)
        queue.remove(a.txid)
        queue.push_front(a)
        assert queue.peek() is a
        assert len(queue) == 1
        assert queue.transactions() == [a]

    def test_repush_displaces_stale_entry(self):
        queue = TodoQueue()
        a, b = self._txn("a"), self._txn("b")
        queue.push_back(a)
        queue.push_back(b)
        queue.push_back(a)  # moves a behind b, never duplicates it
        assert [t.txid for t in queue.transactions()] == [b.txid, a.txid]
        assert len(queue) == 2

    def test_compaction_keeps_order(self):
        queue = TodoQueue()
        txns = [self._txn(f"p{i}") for i in range(64)]
        for txn in txns:
            queue.push_back(txn)
        for txn in txns[:48]:
            queue.remove(txn.txid)
        assert [t.txid for t in queue.transactions()] == [t.txid for t in txns[48:]]
        assert queue.peek() is txns[48]

    def test_iteration_skips_dead_cells(self):
        queue = TodoQueue(AGGRESSIVE)
        a, b, c = self._txn("a"), self._txn("b"), self._txn("c")
        for txn in (a, b, c):
            queue.push_back(txn)
        queue.remove(b.txid)
        assert list(queue) == [a, c]
        assert queue.candidate_indices() == [0, 1]


class TestAggressiveConflictSkip:
    """The AGGRESSIVE policy schedules past *any number* of conflicting
    transactions in a single pass, while FIFO stops at the first."""

    def test_aggressive_schedules_past_multiple_blocked_transactions(self):
        controller, store, input_queue, phy_queue = make_controller(policy="aggressive")
        blocked_head = submit_spawn(store, input_queue, "vm1")
        blocked_second = submit_spawn(store, input_queue, "vm2")  # conflicts with vm1
        runnable = submit_spawn(store, input_queue, "vm3", vm_host="/vmRoot/vmHost1",
                                storage_host="/storageRoot/storageHost1")
        # Conflicts with vm1 through the shared storage host: also skipped.
        blocked_third = submit_spawn(store, input_queue, "vm4", vm_host="/vmRoot/vmHost2",
                                     storage_host="/storageRoot/storageHost0")
        controller.run_until_idle()
        assert store.load_transaction(blocked_head.txid).state is TransactionState.STARTED
        assert store.load_transaction(blocked_second.txid).state is TransactionState.DEFERRED
        assert store.load_transaction(runnable.txid).state is TransactionState.STARTED
        assert store.load_transaction(blocked_third.txid).state is TransactionState.DEFERRED
        assert phy_queue.size() == 2

    def test_fifo_blocks_behind_conflicting_head(self):
        controller, store, input_queue, phy_queue = make_controller(policy="fifo")
        submit_spawn(store, input_queue, "vm1")
        submit_spawn(store, input_queue, "vm2")  # conflicts with vm1
        other = submit_spawn(store, input_queue, "vm3", vm_host="/vmRoot/vmHost2",
                             storage_host="/storageRoot/storageHost1")
        controller.run_until_idle()
        # FIFO never even considers vm3 behind the deferred head: it stays
        # ACCEPTED in the queue while AGGRESSIVE (above) would start it.
        assert store.load_transaction(other.txid).state is TransactionState.ACCEPTED
        assert [t.txid for t in controller.todo.transactions()][-1] == other.txid
        assert phy_queue.size() == 1

    def test_deferred_transactions_keep_queue_order(self):
        controller, store, input_queue, _ = make_controller(policy="aggressive")
        submit_spawn(store, input_queue, "vm1")
        second = submit_spawn(store, input_queue, "vm2")
        third = submit_spawn(store, input_queue, "vm3")  # same host: also conflicts
        controller.run_until_idle()
        deferred = [txn.txid for txn in controller.todo.transactions()]
        assert deferred == [second.txid, third.txid]


class TestQueueBatchOperations:
    @pytest.fixture
    def queue(self, ensemble):
        return DistributedQueue(CoordinationClient(ensemble), "/queues/q")

    def test_put_many_preserves_order(self, ensemble, queue):
        before = ensemble.write_round_trips
        names = queue.put_many([{"n": i} for i in range(5)])
        assert len(names) == 5
        assert ensemble.write_round_trips == before + 1
        assert [queue.poll()["n"] for _ in range(5)] == list(range(5))

    def test_take_many_then_ack_many(self, queue):
        queue.put_many([{"n": i} for i in range(4)])
        taken = queue.take_many(3)
        assert [item["n"] for _, item in taken] == [0, 1, 2]
        assert queue.size() == 4  # take does not remove
        queue.ack_many([name for name, _ in taken])
        assert queue.size() == 1
        assert queue.poll()["n"] == 3

    def test_poll_many_claims_atomically(self, queue):
        queue.put_many([{"n": i} for i in range(6)])
        first = queue.poll_many(4)
        second = queue.poll_many(4)
        assert [i["n"] for i in first] == [0, 1, 2, 3]
        assert [i["n"] for i in second] == [4, 5]
        assert queue.is_empty()

    def test_empty_batches(self, queue):
        assert queue.put_many([]) == []
        assert queue.take_many(5) == []
        assert queue.poll_many(5) == []
        assert queue.ack_many([]) == 0


class TestDeepCopy:
    def test_nested_structures_are_independent(self):
        original = {"a": [1, {"b": [2, 3]}], "c": {"d": None, "e": True}}
        copy = deep_copy(original)
        assert copy == original
        copy["a"][1]["b"].append(4)
        copy["c"]["d"] = "changed"
        assert original["a"][1]["b"] == [2, 3]
        assert original["c"]["d"] is None

    def test_tuples_become_lists_like_json_roundtrip(self):
        assert deep_copy({"t": (1, 2)}) == json.loads(json.dumps({"t": [1, 2]}))

    def test_scalars_pass_through(self):
        for value in ("s", 5, 2.5, True, None):
            assert deep_copy(value) == value

    def test_matches_legacy_roundtrip_on_mixed_document(self):
        doc = {"k": [{"x": 1.5, "y": None}, [True, False], "z"], "n": 0}
        assert deep_copy(doc) == json.loads(json.dumps(doc))

    def test_non_string_keys_coerced_like_json(self):
        doc = {"outer": {1: "a", True: "b"}}
        assert deep_copy(doc) == json.loads(json.dumps(doc))


class TestPathInterning:
    def test_parse_returns_shared_instance(self):
        a = ResourcePath.parse("/x/y/z")
        b = ResourcePath.parse("/x/y/z")
        assert a is b

    def test_navigation_interns_too(self):
        a = ResourcePath.parse("/x/y/z")
        assert a.parent is ResourcePath.parse("/x/y")
        assert a.parent.child("z") is a

    def test_equality_and_hash_preserved(self):
        a = ResourcePath.parse("/x/y")
        b = ResourcePath(("x", "y"))  # direct construction bypasses the cache
        assert a == b and hash(a) == hash(b)
        assert a == "/x/y"

    def test_invalid_paths_still_rejected(self):
        from repro.common.errors import DataModelError

        with pytest.raises(DataModelError):
            ResourcePath.parse("/bad path/with spaces").parts


class TestSignalWatch:
    def test_subscription_observes_term_posted_later(self, store):
        from repro.core.signals import SignalBoard

        board = SignalBoard(store)
        sub = board.subscribe("t1")
        assert sub.active() is False
        board.term("t1")
        assert sub.active() is True
        assert sub.current() == TERM

    def test_subscription_sees_pre_posted_signal(self, store):
        from repro.core.signals import SignalBoard

        board = SignalBoard(store)
        board.term("t2")
        sub = board.subscribe("t2")
        assert sub.active() is True

    def test_closed_subscription_releases_its_watch(self, ensemble, store):
        from repro.core.signals import SignalBoard

        board = SignalBoard(store)
        watches_before = sum(len(w) for w in ensemble._data_watches.values())
        subs = [board.subscribe(f"t{i}") for i in range(10)]
        for sub in subs:
            sub.close()
        watches_after = sum(len(w) for w in ensemble._data_watches.values())
        assert watches_after == watches_before

    def test_physical_executor_does_not_leak_watches(self, ensemble, store):
        from repro.core.physical import PhysicalExecutor
        from repro.core.signals import SignalBoard

        executor = PhysicalExecutor(None, TropicConfig(logical_only=True),
                                    signals=SignalBoard(store))
        txn = Transaction("p")
        txn.log.append("/a", "noop", [], None, [])
        watches_before = sum(len(w) for w in ensemble._data_watches.values())
        for _ in range(20):
            executor.execute(txn)
        watches_after = sum(len(w) for w in ensemble._data_watches.values())
        assert watches_after == watches_before
