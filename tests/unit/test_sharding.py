"""Unit tests for the sharded platform wiring (PR 2 tentpole).

Covers: per-shard namespaces (stores, queues, elections), client-side
routing of submissions, cross-shard policies, submit-side batching
round-trip counts, the merged read view, restricted ``local_shards``
hosting, shard-map persistence, and the recovery shard-stamp guard.
"""

import pytest

from repro.common.config import TropicConfig
from repro.common.errors import (
    ConfigurationError,
    CrossShardTransaction,
    RecoveryError,
    ShardNotLocalError,
)
from repro.coordination.ensemble import CoordinationEnsemble
from repro.core.recovery import recover_state
from repro.core.txn import TransactionState
from repro.tcloud.service import build_tcloud, tcloud_shard_assignments


def _sharded_cloud(num_shards=2, num_vm_hosts=8, threaded=False, ensemble=None,
                   local_shards=None, **overrides):
    config = TropicConfig(num_shards=num_shards, logical_only=True, **overrides)
    return build_tcloud(
        num_vm_hosts=num_vm_hosts,
        num_storage_hosts=2,
        config=config,
        logical_only=True,
        threaded=threaded,
        ensemble=ensemble,
        local_shards=local_shards,
    )


def _spawn_args(cloud, host_index, vm_name):
    return {
        "vm_name": vm_name,
        "image_template": "template-small",
        "storage_host": cloud.inventory.storage_host_for(host_index),
        "vm_host": cloud.inventory.vm_hosts[host_index],
        "mem_mb": 256,
    }


class TestShardedNamespaces:
    def test_each_shard_gets_its_own_store_queues_and_election(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            assert platform.local_shards == [0, 1]
            prefixes = {rt.store.kv.prefix for rt in platform.shards.values()}
            assert prefixes == {"/tropic/store/shard-0", "/tropic/store/shard-1"}
            queue_paths = {rt.input_queue.path for rt in platform.shards.values()}
            assert queue_paths == {
                "/tropic/queues/shard-0/inputQ",
                "/tropic/queues/shard-1/inputQ",
            }
            elections = {rt.election_path for rt in platform.shards.values()}
            assert elections == {"/tropic/election/shard-0", "/tropic/election/shard-1"}

    def test_single_shard_keeps_legacy_namespaces(self):
        cloud = _sharded_cloud(num_shards=1)
        with cloud.platform as platform:
            assert platform.store.kv.prefix == "/tropic/store"
            assert platform.input_queue.path == "/tropic/queues/inputQ"

    def test_transactions_land_in_owning_shards_store(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            t0 = platform.submit("spawnVM", _spawn_args(cloud, 0, "a"))
            t1 = platform.submit("spawnVM", _spawn_args(cloud, 5, "b"))
            assert t0.state is TransactionState.COMMITTED
            assert t1.state is TransactionState.COMMITTED
            s0, s1 = platform.shards[0].store, platform.shards[1].store
            assert s0.load_transaction(t0.txid) is not None
            assert s0.load_transaction(t1.txid) is None
            assert s1.load_transaction(t1.txid) is not None
            assert platform.shard_of_txn(t0.txid) == 0
            assert platform.shard_of_txn(t1.txid) == 1

    def test_shard_map_is_persisted_and_validated(self):
        ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=3600.0)
        cloud = _sharded_cloud(ensemble=ensemble)
        with cloud.platform as platform:
            persisted = platform.shard_router.map.to_dict()
            assert persisted["num_shards"] == 2
            assert persisted["assignments"]
        # A restart with a different shard count must refuse to start.
        other = _sharded_cloud(num_shards=4, ensemble=ensemble)
        with pytest.raises(ConfigurationError, match="resharding"):
            other.platform.start()


class TestRoutingPolicies:
    def test_cross_shard_rejected_by_default(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            args = _spawn_args(cloud, 0, "x")
            args["storage_host"] = cloud.inventory.storage_host_for(5)
            with pytest.raises(CrossShardTransaction) as excinfo:
                platform.submit("spawnVM", args)
            assert excinfo.value.shards == [0, 1]

    def test_pin_policy_runs_cross_shard_on_lowest_shard(self):
        cloud = _sharded_cloud(cross_shard_policy="pin")
        with cloud.platform as platform:
            args = _spawn_args(cloud, 4, "pinned")  # vm host on shard 1 ...
            args["storage_host"] = cloud.inventory.storage_host_for(0)  # ... storage shard 0
            txn = platform.submit("spawnVM", args)
            assert txn.state is TransactionState.COMMITTED
            assert platform.shard_of_txn(txn.txid) == 0

    def test_tcloud_assignments_colocate_paired_hosts(self):
        cloud = _sharded_cloud(num_shards=4, num_vm_hosts=16)
        assignments = tcloud_shard_assignments(cloud.inventory, 4)
        for index, vm_host in enumerate(cloud.inventory.vm_hosts):
            storage = cloud.inventory.storage_host_for(index)
            assert assignments[vm_host] == assignments[storage]


class TestSubmitSideBatching:
    def test_submit_many_uses_two_round_trips_per_shard(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            requests = [
                ("spawnVM", _spawn_args(cloud, i % 8, f"b{i}")) for i in range(12)
            ]
            before = platform.ensemble.write_round_trips
            handles = platform.submit_many(requests, wait=False)
            submit_rts = platform.ensemble.write_round_trips - before
            # One store group commit + one queue group write per shard.
            assert submit_rts == 2 * platform.config.num_shards
            results = [h.wait(timeout=30.0) for h in handles]
            assert all(t.state is TransactionState.COMMITTED for t in results)

    def test_submit_many_preserves_request_order_of_handles(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            requests = [
                ("spawnVM", _spawn_args(cloud, i % 8, f"o{i}")) for i in range(6)
            ]
            results = platform.submit_many(requests, timeout=30.0)
            assert [t.args["vm_name"] for t in results] == [f"o{i}" for i in range(6)]


class TestMergedReadView:
    def test_model_view_merges_owned_subtrees(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            platform.submit("spawnVM", _spawn_args(cloud, 0, "left"))
            platform.submit("spawnVM", _spawn_args(cloud, 5, "right"))
            view = platform.model_view()
            assert view.exists(f"{cloud.inventory.vm_hosts[0]}/left")
            assert view.exists(f"{cloud.inventory.vm_hosts[5]}/right")
            # Neither shard's own model sees the other's VM ...
            assert not platform.leader(0).model.exists(
                f"{cloud.inventory.vm_hosts[5]}/right"
            )
            # ... but the service-level reads do.
            assert {r.name for r in cloud.list_vms()} == {"left", "right"}

    def test_resource_count_uses_the_merged_view(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            base = platform.resource_count()
            platform.submit("spawnVM", _spawn_args(cloud, 0, "l"))
            platform.submit("spawnVM", _spawn_args(cloud, 5, "r"))
            # spawnVM creates a VM node and a disk image node per call.
            assert platform.resource_count() == base + 4


class TestLocalShards:
    def test_process_hosting_one_shard_serves_only_it(self):
        cloud = _sharded_cloud(local_shards=[1])
        with cloud.platform as platform:
            assert platform.local_shards == [1]
            assert list(platform.shards) == [1]
            txn = platform.submit("spawnVM", _spawn_args(cloud, 5, "mine"))
            assert txn.state is TransactionState.COMMITTED
            with pytest.raises(ShardNotLocalError):
                platform.submit("spawnVM", _spawn_args(cloud, 0, "theirs"))

    def test_invalid_local_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            _sharded_cloud(local_shards=[7])


class TestRecoveryStampGuard:
    def test_recovery_refuses_checkpoint_from_other_layout(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            platform.submit("spawnVM", _spawn_args(cloud, 0, "v"))
            store = platform.shards[0].store
            # Simulate a misconfigured restart: same namespace, different
            # believed layout.
            store.shard_id, store.num_shards = 1, 4
            with pytest.raises(RecoveryError, match="refusing to recover"):
                recover_state(store, platform.schema, platform.procedures,
                              platform.config)

    def test_reload_of_global_paths_is_refused_when_sharded(self):
        cloud = _sharded_cloud()
        with cloud.platform as platform:
            with pytest.raises(ConfigurationError, match="sharding granularity"):
                platform.reload("/")


class TestShardedRepair:
    def test_global_repair_fans_out_over_owned_devices(self):
        """The periodic repair daemon calls repair('/'); in a sharded
        deployment that must repair every locally owned device against its
        owner's model instead of raising (regression: it used to raise and
        the maintenance loop silently swallowed the error)."""
        config = TropicConfig(num_shards=2)
        cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, config=config)
        with cloud.platform as platform:
            # One VM per shard, then knock a shard-1 host out of band.
            for host_index, name in ((0, "a"), (5, "b")):
                cloud.spawn_vm(name, mem_mb=256,
                               vm_host=cloud.inventory.vm_hosts[host_index],
                               storage_host=cloud.inventory.storage_host_for(host_index))
            device = cloud.inventory.registry.device_at(cloud.inventory.vm_hosts[5])
            device.power_cycle()
            report = platform.repair("/")
            assert report.clean
            assert any(action == "startVM" for _, action, _ in report.actions_executed)
            assert device.vm_state("b") == "running"
