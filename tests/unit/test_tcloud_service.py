"""Unit tests for the TCloud service layer, placement and inventory."""

import pytest

from repro.common.errors import ProcedureError
from repro.core.txn import TransactionState
from repro.tcloud.inventory import build_inventory
from repro.tcloud.placement import PlacementEngine
from repro.tcloud.service import build_tcloud


class TestInventory:
    def test_logical_and_physical_fleets_match(self):
        inventory = build_inventory(num_vm_hosts=3, num_storage_hosts=2)
        from repro.datamodel.snapshot import diff_models

        physical = inventory.registry.build_physical_model()
        assert diff_models(inventory.model, physical).is_empty

    def test_counts(self):
        inventory = build_inventory(num_vm_hosts=5, num_storage_hosts=3, num_routers=2)
        assert len(inventory.vm_hosts) == 5
        assert len(inventory.storage_hosts) == 3
        assert len(inventory.routers) == 2
        assert inventory.model.count("vmHost") == 5

    def test_heterogeneous_hypervisors_cycle(self):
        inventory = build_inventory(num_vm_hosts=4, num_storage_hosts=1,
                                    hypervisors=["xen-4.1", "kvm-1.0"])
        types = [inventory.model.get(path)["hypervisor"] for path in inventory.vm_hosts]
        assert types == ["xen-4.1", "kvm-1.0", "xen-4.1", "kvm-1.0"]

    def test_logical_only_inventory_has_no_devices(self):
        inventory = build_inventory(num_vm_hosts=2, num_storage_hosts=1, with_devices=False)
        assert inventory.registry is None

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            build_inventory(num_vm_hosts=0, num_storage_hosts=1)


class TestPlacement:
    @pytest.fixture
    def model(self):
        return build_inventory(num_vm_hosts=3, num_storage_hosts=2, host_mem_mb=2048,
                               with_devices=False).model

    def test_least_loaded_spreads_memory(self, model):
        engine = PlacementEngine("least_loaded")
        first = engine.pick_vm_host(model, 512)
        # Put a running VM on that host; next pick must avoid it.
        model.create(f"{first}/vm1", "vm", {"state": "running", "mem_mb": 1024})
        second = engine.pick_vm_host(model, 512)
        assert second != first

    def test_memory_filter(self, model):
        engine = PlacementEngine()
        with pytest.raises(ProcedureError):
            engine.pick_vm_host(model, 99999)

    def test_hypervisor_filter(self, model):
        engine = PlacementEngine()
        with pytest.raises(ProcedureError):
            engine.pick_vm_host(model, 512, hypervisor="hyper-v")

    def test_storage_placement_requires_template(self, model):
        engine = PlacementEngine()
        with pytest.raises(ProcedureError):
            engine.pick_storage_host(model, 8.0, "nonexistent-template")
        assert engine.pick_storage_host(model, 8.0, "template-small").startswith("/storageRoot")

    def test_round_robin_and_first_fit(self, model):
        rr = PlacementEngine("round_robin")
        picks = {rr.pick_vm_host(model, 256) for _ in range(3)}
        assert len(picks) == 3
        ff = PlacementEngine("first_fit")
        assert ff.pick_vm_host(model, 256) == "/vmRoot/vmHost0"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            PlacementEngine("chaotic")


class TestTCloudService:
    def test_spawn_and_inspect(self, inline_cloud):
        txn = inline_cloud.spawn_vm("web1", mem_mb=512)
        assert txn.state is TransactionState.COMMITTED
        record = inline_cloud.find_vm("web1")
        assert record is not None and record.state == "running"
        assert inline_cloud.vm_count() == 1
        util = inline_cloud.host_utilisation()
        assert sum(entry["running"] for entry in util.values()) == 1

    def test_full_lifecycle(self, inline_cloud):
        inline_cloud.spawn_vm("app1")
        assert inline_cloud.stop_vm("app1").state is TransactionState.COMMITTED
        assert inline_cloud.find_vm("app1").state == "stopped"
        assert inline_cloud.start_vm("app1").state is TransactionState.COMMITTED
        migrated = inline_cloud.migrate_vm("app1")
        assert migrated.state is TransactionState.COMMITTED
        destroyed = inline_cloud.destroy_vm("app1")
        assert destroyed.state is TransactionState.COMMITTED
        assert inline_cloud.vm_count() == 0

    def test_unknown_vm_operations_raise(self, inline_cloud):
        with pytest.raises(ProcedureError):
            inline_cloud.stop_vm("ghost")

    def test_pinned_placement_respected(self, inline_cloud):
        txn = inline_cloud.spawn_vm("pinned", vm_host="/vmRoot/vmHost2",
                                    storage_host="/storageRoot/storageHost1")
        assert txn.state is TransactionState.COMMITTED
        assert inline_cloud.find_vm("pinned").host == "/vmRoot/vmHost2"

    def test_spawn_vms_batch_spreads_auto_placement(self):
        """Batched spawns are all placed before anything commits, so the
        placement pass must reserve each pick (regression: every spec used
        to land on the same least-loaded host and trip the memory
        constraint)."""
        from repro.tcloud.service import build_tcloud

        cloud = build_tcloud(num_vm_hosts=4, num_storage_hosts=2, host_mem_mb=2048)
        with cloud.platform:
            txns = cloud.spawn_vms(
                [{"vm_name": f"batch{i}", "mem_mb": 1024} for i in range(6)]
            )
            assert all(t.state is TransactionState.COMMITTED for t in txns), \
                [t.error for t in txns]
            hosts = {cloud.find_vm(f"batch{i}").host for i in range(6)}
            assert len(hosts) >= 3  # spread, not piled onto one host

    def test_spawn_vms_batch_respects_pinned_hosts(self, inline_cloud):
        txns = inline_cloud.spawn_vms(
            [
                {"vm_name": "pin0", "vm_host": "/vmRoot/vmHost0", "mem_mb": 256},
                {"vm_name": "pin3", "vm_host": "/vmRoot/vmHost3", "mem_mb": 256},
            ]
        )
        assert all(t.state is TransactionState.COMMITTED for t in txns)
        assert inline_cloud.find_vm("pin0").host == "/vmRoot/vmHost0"
        assert inline_cloud.find_vm("pin3").host == "/vmRoot/vmHost3"

    def test_spawn_duplicate_name_aborts(self, inline_cloud):
        inline_cloud.spawn_vm("dup", vm_host="/vmRoot/vmHost0")
        txn = inline_cloud.spawn_vm("dup", vm_host="/vmRoot/vmHost0")
        assert txn.state is TransactionState.ABORTED

    def test_create_vlan(self, inline_cloud):
        assert inline_cloud.create_vlan(42).state is TransactionState.COMMITTED

    def test_logical_only_mode(self):
        cloud = build_tcloud(num_vm_hosts=2, num_storage_hosts=1, logical_only=True)
        with cloud.platform:
            txn = cloud.spawn_vm("lvm1")
            assert txn.state is TransactionState.COMMITTED
            assert cloud.inventory.registry is None

    def test_migration_to_incompatible_hypervisor_aborts(self):
        cloud = build_tcloud(num_vm_hosts=2, num_storage_hosts=1,
                             hypervisors=["xen-4.1", "kvm-1.0"])
        with cloud.platform:
            cloud.spawn_vm("vmx", vm_host="/vmRoot/vmHost0")
            txn = cloud.platform.submit(
                "migrateVM",
                {"vm_name": "vmx", "src_host": "/vmRoot/vmHost0",
                 "dst_host": "/vmRoot/vmHost1"},
            )
            assert txn.state is TransactionState.ABORTED
            assert "hypervisor" in txn.error
            # VM untouched on the source host.
            assert cloud.find_vm("vmx").host == "/vmRoot/vmHost0"
