"""Unit tests for TCloud entity types, actions and constraints."""

import pytest

from repro.common.errors import DataModelError
from repro.tcloud.constraints import (
    storage_capacity_constraint,
    vlan_range_constraint,
    vm_hypervisor_constraint,
    vm_memory_constraint,
)
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory


@pytest.fixture
def schema():
    return build_schema()


@pytest.fixture
def model():
    return build_inventory(num_vm_hosts=2, num_storage_hosts=1, host_mem_mb=2048,
                           with_devices=False).model


def act(schema, model, path, action, *args):
    node = model.get(path)
    schema.get(node.entity_type).get_action(action).simulate(model, node, *args)


class TestVMHostActions:
    def test_spawn_sequence_in_logical_layer(self, schema, model):
        act(schema, model, "/storageRoot/storageHost0", "cloneImage", "template-small", "d1")
        act(schema, model, "/storageRoot/storageHost0", "exportImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 512)
        act(schema, model, "/vmRoot/vmHost0", "startVM", "vm1")
        vm = model.get("/vmRoot/vmHost0/vm1")
        assert vm["state"] == "running"
        assert vm["hypervisor"] == "xen-4.1"
        assert model.get("/storageRoot/storageHost0/d1")["exported"] is True

    def test_create_vm_requires_imported_image(self, schema, model):
        with pytest.raises(DataModelError):
            act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "ghost", 512)

    def test_create_duplicate_vm_rejected(self, schema, model):
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 512)
        with pytest.raises(DataModelError):
            act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 512)

    def test_remove_running_vm_rejected(self, schema, model):
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 512)
        act(schema, model, "/vmRoot/vmHost0", "startVM", "vm1")
        with pytest.raises(DataModelError):
            act(schema, model, "/vmRoot/vmHost0", "removeVM", "vm1")

    def test_remove_vm_undo_args_capture_original_config(self, schema, model):
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 768)
        action = schema.get("vmHost").get_action("removeVM")
        undo_args = action.undo_arguments(model.get("/vmRoot/vmHost0"), ["vm1"])
        assert undo_args == ["vm1", "d1", 768]

    def test_queries(self, schema, model):
        host = model.get("/vmRoot/vmHost0")
        assert schema.get("vmHost").get_query("memoryAvailable").func(model, host) == 2048
        assert schema.get("vmHost").get_query("listVMs").func(model, host) == []
        assert schema.get("vmHost").get_query("vmState").func(model, host, "nope") is None


class TestStorageAndRouterActions:
    def test_clone_requires_template(self, schema, model):
        with pytest.raises(DataModelError):
            act(schema, model, "/storageRoot/storageHost0", "cloneImage", "ghost", "d1")

    def test_remove_exported_image_rejected(self, schema, model):
        act(schema, model, "/storageRoot/storageHost0", "cloneImage", "template-small", "d1")
        act(schema, model, "/storageRoot/storageHost0", "exportImage", "d1")
        with pytest.raises(DataModelError):
            act(schema, model, "/storageRoot/storageHost0", "removeImage", "d1")

    def test_free_capacity_query(self, schema, model):
        host = model.get("/storageRoot/storageHost0")
        free_before = schema.get("storageHost").get_query("freeCapacity").func(model, host)
        act(schema, model, "/storageRoot/storageHost0", "cloneImage", "template-small", "d1")
        free_after = schema.get("storageHost").get_query("freeCapacity").func(model, host)
        assert free_after == free_before - 8.0

    def test_vlan_lifecycle(self, schema, model):
        act(schema, model, "/netRoot/router0", "createVlan", 10, "blue")
        act(schema, model, "/netRoot/router0", "attachPort", 10, "vm1")
        with pytest.raises(DataModelError):
            act(schema, model, "/netRoot/router0", "deleteVlan", 10)
        act(schema, model, "/netRoot/router0", "detachPort", 10, "vm1")
        act(schema, model, "/netRoot/router0", "deleteVlan", 10)
        assert not model.exists("/netRoot/router0/vlan10")


class TestConstraints:
    def test_memory_constraint_trips_only_on_running_vms(self, schema, model):
        host = model.get("/vmRoot/vmHost0")
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "big1", "d1", 1500)
        act(schema, model, "/vmRoot/vmHost0", "createVM", "big2", "d1", 1500)
        assert vm_memory_constraint(model, host) == []
        act(schema, model, "/vmRoot/vmHost0", "startVM", "big1")
        act(schema, model, "/vmRoot/vmHost0", "startVM", "big2")
        assert vm_memory_constraint(model, host) != []

    def test_hypervisor_constraint(self, schema, model):
        host = model.get("/vmRoot/vmHost0")
        act(schema, model, "/vmRoot/vmHost0", "importImage", "d1")
        act(schema, model, "/vmRoot/vmHost0", "createVM", "vm1", "d1", 512)
        assert vm_hypervisor_constraint(model, host) == []
        model.get("/vmRoot/vmHost0/vm1")["hypervisor"] = "kvm-1.0"
        violations = vm_hypervisor_constraint(model, host)
        assert violations and "kvm-1.0" in violations[0]

    def test_storage_capacity_constraint(self, model):
        host = model.get("/storageRoot/storageHost0")
        assert storage_capacity_constraint(model, host) == []
        host["capacity_gb"] = 1.0  # templates already exceed this
        assert storage_capacity_constraint(model, host) != []

    def test_vlan_constraints(self, schema, model):
        router = model.get("/netRoot/router0")
        act(schema, model, "/netRoot/router0", "createVlan", 5)
        assert vlan_range_constraint(model, router) == []
        model.get("/netRoot/router0/vlan5")["vlan_id"] = 9999
        assert vlan_range_constraint(model, router) != []

    def test_schema_wires_constraints_to_types(self, schema):
        assert schema.has_constraints("vmHost")
        assert schema.has_constraints("storageHost")
        assert schema.has_constraints("router")
        assert not schema.has_constraints("vm")
