"""Unit tests for the client retry policy (repro.common.retry)."""

import pytest

from repro.common.clock import Clock
from repro.common.errors import (
    ConstraintViolation,
    NotLeaderError,
    ProcedureError,
    QuorumLostError,
    SessionExpiredError,
    ShardNotLocalError,
    TransactionAborted,
    TxnTimeout,
)
from repro.common.retry import (
    AMBIGUOUS,
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    call_with_retries,
    classify,
    is_retryable,
)


class _AutoClock(Clock):
    """Single-threaded test clock: sleep() advances time immediately."""

    def __init__(self):
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self._now += max(seconds, 0.0)


class TestClassification:
    def test_transient_errors(self):
        for error in (
            SessionExpiredError("x"),
            QuorumLostError("x"),
            NotLeaderError("x"),
            ConnectionError("x"),
        ):
            assert classify(error) == TRANSIENT
            assert is_retryable(error)
            assert is_retryable(error, idempotent=True)

    def test_ambiguous_errors_retry_only_with_token(self):
        for error in (TxnTimeout("x"), TimeoutError("x")):
            assert classify(error) == AMBIGUOUS
            assert not is_retryable(error)
            assert is_retryable(error, idempotent=True)

    def test_permanent_errors_never_retry(self):
        for error in (
            ConstraintViolation("x"),
            ProcedureError("x"),
            TransactionAborted("x"),
            ShardNotLocalError("x"),
            ValueError("x"),
            KeyError("x"),  # unknown types default to permanent
        ):
            assert classify(error) == PERMANENT
            assert not is_retryable(error, idempotent=True)

    def test_txn_timeout_is_a_timeout_error(self):
        # Typed error stays compatible with callers catching the builtin.
        assert isinstance(TxnTimeout("x"), TimeoutError)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_is_seeded_and_bounded(self):
        one = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        two = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        delays = [one.backoff(1) for _ in range(5)]
        assert delays == [two.backoff(1) for _ in range(5)]
        assert all(0.05 <= d <= 0.1 for d in delays)

    def test_deadline_bounds_total_time(self):
        clock = _AutoClock()
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, jitter=0.0, deadline=2.5, clock=clock
        )
        calls = []

        def always_fails(attempt):
            calls.append(attempt)
            raise SessionExpiredError("down")

        with pytest.raises(SessionExpiredError):
            call_with_retries(always_fails, policy)
        # Sleeps at t=0,1 run full 1s; the third is clamped to the 0.5s
        # remaining, so attempt 4 lands exactly on the deadline and the
        # budget is exhausted — far short of max_attempts=100.
        assert len(calls) == 4


class TestCallWithRetries:
    def test_succeeds_after_transient_failures(self):
        clock = _AutoClock()
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, clock=clock, seed=1)
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise QuorumLostError("blip")
            return "done"

        assert call_with_retries(flaky, policy) == "done"
        assert attempts == [1, 2, 3]

    def test_permanent_error_propagates_immediately(self):
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise ConstraintViolation("no")

        with pytest.raises(ConstraintViolation):
            call_with_retries(broken, RetryPolicy(clock=_AutoClock()))
        assert calls == [1]

    def test_ambiguous_requires_idempotent_flag(self):
        clock = _AutoClock()

        def times_out(attempt):
            if attempt == 1:
                raise TxnTimeout("slow")
            return attempt

        with pytest.raises(TxnTimeout):
            call_with_retries(times_out, RetryPolicy(clock=clock))
        assert call_with_retries(times_out, RetryPolicy(clock=clock), idempotent=True) == 2

    def test_on_retry_callback_sees_each_failure(self):
        clock = _AutoClock()
        seen = []

        def flaky(attempt):
            if attempt < 3:
                raise NotLeaderError("electing")
            return "ok"

        call_with_retries(
            flaky,
            RetryPolicy(clock=clock, seed=7),
            on_retry=lambda error, attempt: seen.append((type(error).__name__, attempt)),
        )
        assert seen == [("NotLeaderError", 1), ("NotLeaderError", 2)]

    def test_exhausted_budget_reraises_last_error(self):
        clock = _AutoClock()

        def always(attempt):
            raise SessionExpiredError(f"attempt {attempt}")

        with pytest.raises(SessionExpiredError, match="attempt 3"):
            call_with_retries(always, RetryPolicy(max_attempts=3, clock=clock))
