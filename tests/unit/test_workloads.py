"""Unit tests for trace generation (EC2 and hosting workloads)."""

import pytest

from repro.workloads.ec2 import EC2TraceParams, ec2_spawn_trace, synthesize_launch_counts
from repro.workloads.hosting import DEFAULT_MIX, HostingTraceParams, hosting_trace
from repro.workloads.trace import Trace, TraceEvent


class TestTrace:
    def test_events_sorted_by_time(self):
        trace = Trace([TraceEvent(5, "spawn"), TraceEvent(1, "stop")], duration_s=10)
        assert [e.time for e in trace] == [1, 5]

    def test_per_second_counts(self):
        trace = Trace([TraceEvent(0.1, "spawn"), TraceEvent(0.9, "spawn"),
                       TraceEvent(2.5, "spawn")], duration_s=3)
        assert trace.per_second_counts() == [2, 0, 1, 0]

    def test_stats(self):
        trace = Trace([TraceEvent(0, "spawn"), TraceEvent(1, "stop")], duration_s=2)
        stats = trace.stats()
        assert stats.total_events == 2
        assert stats.mix == {"spawn": 1, "stop": 1}
        assert stats.mean_rate == pytest.approx(1.0)

    def test_slice_rebases_time(self):
        trace = Trace([TraceEvent(t, "spawn") for t in range(10)], duration_s=10)
        window = trace.slice(3, 6)
        assert len(window) == 3
        assert [e.time for e in window] == [0, 1, 2]

    def test_scaled_preserves_shape(self):
        trace = Trace([TraceEvent(0.5, "spawn"), TraceEvent(1.5, "spawn")], duration_s=2)
        doubled = trace.scaled(2)
        assert len(doubled) == 4
        # Replicas stay within their original 1-second bucket, so the shape
        # of the rate curve is preserved and each bucket doubles exactly.
        assert doubled.per_second_counts() == [2, 2, 0]

    def test_scaled_spawns_get_unique_names(self):
        trace = Trace([TraceEvent(0.0, "spawn", {"vm_name": "a"})], duration_s=1)
        names = [e.args["vm_name"] for e in trace.scaled(3)]
        assert len(set(names)) == 3

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError):
            Trace([]).scaled(0)

    def test_roundtrip(self):
        trace = Trace([TraceEvent(1.0, "spawn", {"vm_name": "a"})], duration_s=5)
        restored = Trace.from_dict(trace.to_dict())
        assert restored.duration_s == 5
        assert restored.events[0].args == {"vm_name": "a"}


class TestEC2Workload:
    def test_calibration_targets_met(self):
        params = EC2TraceParams()
        counts = synthesize_launch_counts(params)
        assert sum(counts) == params.total_spawns == 8417
        assert max(counts) == params.peak_rate == 14
        peak_index = counts.index(max(counts))
        assert peak_index == int(0.8 * params.duration_s)

    def test_mean_rate_close_to_paper(self):
        counts = synthesize_launch_counts()
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(2.34, abs=0.01)

    def test_deterministic_for_seed(self):
        assert synthesize_launch_counts(EC2TraceParams(seed=3)) == synthesize_launch_counts(
            EC2TraceParams(seed=3)
        )
        assert synthesize_launch_counts(EC2TraceParams(seed=3)) != synthesize_launch_counts(
            EC2TraceParams(seed=4)
        )

    def test_trace_event_names_unique(self):
        trace = ec2_spawn_trace(EC2TraceParams(duration_s=60, total_spawns=120))
        names = [event.args["vm_name"] for event in trace]
        assert len(names) == len(set(names)) == len(trace)

    def test_scaled_down_window(self):
        params = EC2TraceParams().scaled_to(360)
        counts = synthesize_launch_counts(params)
        assert sum(counts) == params.total_spawns
        assert abs(params.total_spawns - 842) <= 1
        assert max(counts) == 14

    def test_all_events_are_spawns(self):
        trace = ec2_spawn_trace(EC2TraceParams(duration_s=30, total_spawns=60))
        assert set(trace.operations()) == {"spawn"}


class TestHostingWorkload:
    def test_operation_mix_present(self):
        trace = hosting_trace(HostingTraceParams(num_operations=400, seed=1))
        mix = trace.stats().mix
        for operation in DEFAULT_MIX:
            assert mix.get(operation, 0) > 0

    def test_warmup_is_spawn_only(self):
        trace = hosting_trace(HostingTraceParams(num_operations=100))
        first_ops = [event.operation for event in list(trace)[:10]]
        assert set(first_ops) == {"spawn"}

    def test_spawn_names_unique(self):
        trace = hosting_trace(HostingTraceParams(num_operations=300))
        names = [e.args["vm_name"] for e in trace if e.operation == "spawn"]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = hosting_trace(HostingTraceParams(seed=5))
        b = hosting_trace(HostingTraceParams(seed=5))
        assert a.to_dict() == b.to_dict()

    def test_duration_respected(self):
        trace = hosting_trace(HostingTraceParams(duration_s=120, num_operations=50))
        assert max(event.time for event in trace) < 120
