"""Unit tests for resource paths."""

import pytest

from repro.common.errors import DataModelError
from repro.datamodel.path import ROOT_PATH, ResourcePath


class TestParsing:
    def test_parse_simple(self):
        path = ResourcePath.parse("/vmRoot/vmHost1")
        assert path.parts == ("vmRoot", "vmHost1")

    def test_parse_root_variants(self):
        assert ResourcePath.parse("/") == ROOT_PATH
        assert ResourcePath.parse("") == ROOT_PATH

    def test_parse_ignores_duplicate_slashes(self):
        assert ResourcePath.parse("//a///b/") == ResourcePath(("a", "b"))

    def test_parse_passthrough(self):
        path = ResourcePath.parse("/a/b")
        assert ResourcePath.parse(path) is path

    def test_parse_rejects_non_string(self):
        with pytest.raises(DataModelError):
            ResourcePath.parse(123)

    def test_invalid_component_rejected(self):
        with pytest.raises(DataModelError):
            ResourcePath(("ok", "not ok"))

    def test_str_roundtrip(self):
        text = "/storageRoot/storageHost0/img-1"
        assert str(ResourcePath.parse(text)) == text

    def test_root_str(self):
        assert str(ROOT_PATH) == "/"


class TestStructure:
    def test_child_and_join(self):
        assert str(ROOT_PATH.child("a").join("b", "c")) == "/a/b/c"

    def test_name_and_parent(self):
        path = ResourcePath.parse("/a/b/c")
        assert path.name == "c"
        assert str(path.parent) == "/a/b"
        assert ROOT_PATH.parent == ROOT_PATH

    def test_depth(self):
        assert ROOT_PATH.depth == 0
        assert ResourcePath.parse("/a/b").depth == 2

    def test_ancestors_order_root_first(self):
        path = ResourcePath.parse("/a/b/c")
        ancestors = [str(p) for p in path.ancestors()]
        assert ancestors == ["/", "/a", "/a/b"]

    def test_ancestors_include_self(self):
        path = ResourcePath.parse("/a/b")
        assert [str(p) for p in path.ancestors(include_self=True)] == ["/", "/a", "/a/b"]

    def test_is_ancestor_of(self):
        a = ResourcePath.parse("/a")
        abc = ResourcePath.parse("/a/b/c")
        assert a.is_ancestor_of(abc)
        assert not abc.is_ancestor_of(a)
        assert not a.is_ancestor_of(a)
        assert a.is_ancestor_of(a, strict=False)

    def test_root_is_ancestor_of_everything(self):
        assert ROOT_PATH.is_ancestor_of(ResourcePath.parse("/x/y"))

    def test_is_descendant_of(self):
        assert ResourcePath.parse("/a/b").is_descendant_of(ResourcePath.parse("/a"))

    def test_relative_to(self):
        path = ResourcePath.parse("/a/b/c")
        assert path.relative_to(ResourcePath.parse("/a")) == ("b", "c")

    def test_relative_to_rejects_non_ancestor(self):
        with pytest.raises(DataModelError):
            ResourcePath.parse("/a/b").relative_to(ResourcePath.parse("/x"))


class TestEqualityAndHashing:
    def test_equality_with_string(self):
        assert ResourcePath.parse("/a/b") == "/a/b"

    def test_hashable_and_usable_as_dict_key(self):
        d = {ResourcePath.parse("/a/b"): 1}
        assert d[ResourcePath.parse("/a/b")] == 1

    def test_ordering(self):
        assert ResourcePath.parse("/a") < ResourcePath.parse("/b")

    def test_len_and_iter(self):
        path = ResourcePath.parse("/a/b/c")
        assert len(path) == 3
        assert list(path) == ["a", "b", "c"]
