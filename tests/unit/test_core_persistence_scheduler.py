"""Unit tests for the persistent store, todo queue and signal board."""

import pytest

from repro.coordination.client import CoordinationClient
from repro.coordination.ensemble import CoordinationEnsemble
from repro.coordination.kvstore import KVStore
from repro.core.persistence import TropicStore
from repro.core.scheduler import AGGRESSIVE, FIFO, TodoQueue
from repro.core.signals import KILL, TERM, SignalBoard
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.tree import DataModel


@pytest.fixture
def store():
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=60.0)
    return TropicStore(KVStore(CoordinationClient(ensemble)))


class TestTransactionPersistence:
    def test_save_load_roundtrip(self, store):
        txn = Transaction("spawnVM", {"vm_name": "vm1"})
        txn.mark(TransactionState.ACCEPTED, 1.0)
        store.save_transaction(txn)
        loaded = store.load_transaction(txn.txid)
        assert loaded.procedure == "spawnVM"
        assert loaded.state is TransactionState.ACCEPTED

    def test_load_missing_returns_none(self, store):
        assert store.load_transaction("txn-999999") is None

    def test_list_and_count_by_state(self, store):
        a = Transaction("p")
        b = Transaction("p")
        b.mark(TransactionState.COMMITTED)
        store.save_transaction(a)
        store.save_transaction(b)
        assert set(store.transaction_ids()) == {a.txid, b.txid}
        counts = store.count_by_state()
        assert counts["initialized"] == 1
        assert counts["committed"] == 1

    def test_active_transactions_filter(self, store):
        active = Transaction("p")
        active.mark(TransactionState.STARTED)
        done = Transaction("p")
        done.mark(TransactionState.COMMITTED)
        store.save_transaction(active)
        store.save_transaction(done)
        assert [t.txid for t in store.load_active_transactions()] == [active.txid]

    def test_delete_transaction(self, store):
        txn = Transaction("p")
        store.save_transaction(txn)
        store.delete_transaction(txn.txid)
        assert store.load_transaction(txn.txid) is None


class TestCheckpointAndAppliedLog:
    def test_checkpoint_roundtrip(self, store):
        model = DataModel()
        model.create("/vmRoot", "vmRoot")
        store.save_checkpoint(model, 7)
        restored, seq = store.load_checkpoint()
        assert seq == 7
        assert restored.exists("/vmRoot")

    def test_missing_checkpoint(self, store):
        model, seq = store.load_checkpoint()
        assert model is None and seq == 0

    def test_applied_log_order_and_since(self, store):
        assert store.applied_seq() == 0
        store.record_applied("t1")
        store.record_applied("t2")
        store.record_applied("t3")
        assert store.applied_seq() == 3
        assert store.applied_since(0) == ["t1", "t2", "t3"]
        assert store.applied_since(2) == ["t3"]
        assert store.applied_txids() == {"t1", "t2", "t3"}

    def test_truncate_applied(self, store):
        for name in ("t1", "t2", "t3"):
            store.record_applied(name)
        removed = store.truncate_applied(2)
        assert removed == 2
        assert store.applied_since(0) == ["t3"]
        # The sequence counter keeps increasing after truncation.
        assert store.record_applied("t4") == 4

    def test_inconsistent_paths_roundtrip(self, store):
        store.save_inconsistent_paths(["/a", "/b", "/a"])
        assert store.load_inconsistent_paths() == ["/a", "/b"]

    def test_meta_roundtrip(self, store):
        store.put_meta("bootstrapped", True)
        assert store.get_meta("bootstrapped") is True
        assert store.get_meta("missing", "x") == "x"


class TestSignalBoard:
    def test_send_get_clear(self, store):
        board = SignalBoard(store)
        board.term("t1")
        assert board.get("t1") == TERM
        assert board.should_stop("t1")
        board.clear("t1")
        assert board.get("t1") is None

    def test_kill(self, store):
        board = SignalBoard(store)
        board.kill("t2")
        assert board.get("t2") == KILL

    def test_unknown_signal_rejected(self, store):
        with pytest.raises(ValueError):
            SignalBoard(store).send("t1", "HUP")


class TestTodoQueue:
    def _txn(self, name):
        return Transaction(name)

    def test_fifo_candidates_only_head(self):
        queue = TodoQueue(FIFO)
        queue.push_back(self._txn("a"))
        queue.push_back(self._txn("b"))
        assert queue.candidate_indices() == [0]

    def test_aggressive_candidates_all(self):
        queue = TodoQueue(AGGRESSIVE)
        for name in "abc":
            queue.push_back(self._txn(name))
        assert queue.candidate_indices() == [0, 1, 2]

    def test_push_front_and_peek(self):
        queue = TodoQueue()
        a, b = self._txn("a"), self._txn("b")
        queue.push_back(a)
        queue.push_front(b)
        assert queue.peek() is b
        assert len(queue) == 2

    def test_remove_by_txid(self):
        queue = TodoQueue()
        a, b = self._txn("a"), self._txn("b")
        queue.push_back(a)
        queue.push_back(b)
        assert queue.remove(a.txid) is a
        assert queue.remove(a.txid) is None
        assert queue.transactions() == [b]

    def test_unknown_policy_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TodoQueue("random")

    def test_empty_queue(self):
        queue = TodoQueue()
        assert queue.is_empty()
        assert queue.peek() is None
        assert queue.candidate_indices() == []
