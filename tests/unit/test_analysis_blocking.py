"""Unit tests for the blocking-under-lock checker (repro.analysis.checkers)."""

from repro.analysis.checkers import RULE_BLOCKING, check_blocking_under_lock
from repro.analysis.core import index_from_sources as make_index

RPC_UNDER_LOCK = '''
import threading

class Proxy:
    def __init__(self, client):
        self.client = client
        self._lock = threading.Lock()

    def fetch(self):
        with self._lock:
            return self.client.get_data("/a")
'''

RPC_OUTSIDE_LOCK = '''
import threading

class Proxy:
    def __init__(self, client):
        self.client = client
        self._lock = threading.Lock()

    def fetch(self):
        with self._lock:
            cached = dict(self._cache)
        return self.client.get_data("/a")
'''

SLEEP_UNDER_LOCK = '''
import threading
import time

class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def nap(self):
        with self._lock:
            time.sleep(1)
'''

CONDITION_WAIT = '''
import threading

class Box:
    def __init__(self):
        self._cond = threading.Condition()

    def park(self):
        with self._cond:
            self._cond.wait(1.0)
'''

TRANSITIVE_RPC = '''
import threading

class Store:
    def __init__(self, client):
        self.kv = client

    def persist(self, doc):
        self.kv.put("/doc", doc)

class Holder:
    def __init__(self, store: Store):
        self.backing = store
        self._lock = threading.RLock()

    def save(self, doc):
        with self._lock:
            self.backing.persist(doc)
'''

COORDINATION_INTERNAL = '''
import threading

class CoordinationEnsemble:
    def __init__(self):
        self._lock = threading.RLock()

    def up_servers(self):
        return 3

    def get_data(self, path):
        with self._lock:
            return self.up_servers()
'''

WAIVED = '''
import threading

class Proxy:
    def __init__(self, client):
        self.client = client
        self._lock = threading.Lock()

    def fetch(self):
        # repro: allow(blocking-under-lock) -- single-caller path, hold is intentional
        with self._lock:
            return self.client.get_data("/a")
'''


def blocking(source: str):
    return check_blocking_under_lock(make_index({"repro.fix.blocking": source}))


class TestBlockingUnderLock:
    def test_rpc_under_lock_is_flagged(self):
        findings = blocking(RPC_UNDER_LOCK)
        assert [f.rule for f in findings] == [RULE_BLOCKING]
        assert findings[0].detail == "Proxy._lock"
        assert "get_data" in findings[0].message

    def test_rpc_after_lock_release_is_silent(self):
        assert blocking(RPC_OUTSIDE_LOCK) == []

    def test_sleep_under_lock_is_flagged(self):
        findings = blocking(SLEEP_UNDER_LOCK)
        assert len(findings) == 1
        assert "blocking wait" in findings[0].message

    def test_condition_wait_on_held_condition_is_canonical(self):
        # cond.wait() releases the condition's lock while blocked.
        assert blocking(CONDITION_WAIT) == []

    def test_transitive_rpc_through_typed_call_graph(self):
        findings = blocking(TRANSITIVE_RPC)
        assert len(findings) == 1
        assert findings[0].qualname == "Holder.save"
        assert "persist" in findings[0].message

    def test_coordination_class_internal_serialisation_is_exempt(self):
        assert blocking(COORDINATION_INTERNAL) == []

    def test_one_aggregated_finding_per_acquisition(self):
        # Both the RPC and a sleep under one hold collapse into a single
        # finding keyed by the lock, so one waiver can cover the site.
        combined = RPC_UNDER_LOCK.replace(
            'return self.client.get_data("/a")',
            'self.client.get_data("/a")\n            time.sleep(1)',
        )
        findings = blocking(combined)
        assert len(findings) == 1
        assert "; " in findings[0].message

    def test_inline_waiver_attaches_via_run_checkers(self):
        from repro.analysis.checkers import run_checkers

        index = make_index({"repro.fix.blocking": WAIVED})
        findings = run_checkers(index, only=["blocking"])
        assert len(findings) == 1
        assert findings[0].waived
        assert "intentional" in findings[0].waiver.justification
