"""Unit tests for reload/repair reconciliation (§4)."""

from repro.core.events import result_message
from repro.core.reconcile import Reconciler
from repro.core.txn import TransactionState
from repro.tcloud.inventory import build_inventory

from tests.unit.test_core_controller import make_controller, submit_spawn


def make_env(num_hosts=2):
    """Controller plus a device registry whose state matches the model."""
    controller, store, input_queue, phy_queue = make_controller(num_hosts=num_hosts)
    inventory = build_inventory(num_vm_hosts=num_hosts, num_storage_hosts=2,
                                host_mem_mb=4096, with_devices=True)
    reconciler = Reconciler(controller, inventory.registry)
    controller.recover()
    return controller, store, input_queue, reconciler, inventory.registry


def commit_spawn(controller, store, input_queue, registry, vm_name, host_index=0):
    txn = submit_spawn(store, input_queue, vm_name, vm_host=f"/vmRoot/vmHost{host_index}")
    controller.run_until_idle()
    # Execute physically so devices match the logical layer.
    host = registry.device_at(f"/vmRoot/vmHost{host_index}")
    storage = registry.device_at("/storageRoot/storageHost0")
    storage.clone_image("template-small", f"{vm_name}-disk")
    storage.export_image(f"{vm_name}-disk")
    host.import_image(f"{vm_name}-disk")
    host.create_vm(vm_name, f"{vm_name}-disk", 1024)
    host.start_vm(vm_name)
    input_queue.put(result_message(txn.txid, "committed"))
    controller.run_until_idle()
    assert store.load_transaction(txn.txid).state is TransactionState.COMMITTED
    return txn


class TestDetection:
    def test_layers_in_sync_initially(self):
        _, _, _, reconciler, _ = make_env()
        assert reconciler.detect().is_empty

    def test_out_of_band_change_detected_and_fenced(self):
        controller, store, input_queue, reconciler, registry = make_env()
        commit_spawn(controller, store, input_queue, registry, "vm1")
        registry.device_at("/vmRoot/vmHost0").power_cycle()
        diff = reconciler.detect_and_fence()
        assert not diff.is_empty
        assert controller.model.is_fenced("/vmRoot/vmHost0/vm1")


class TestRepair:
    def test_repair_restarts_powered_off_vms(self):
        controller, store, input_queue, reconciler, registry = make_env()
        commit_spawn(controller, store, input_queue, registry, "vm1")
        host = registry.device_at("/vmRoot/vmHost0")
        host.power_cycle()
        report = reconciler.repair("/vmRoot/vmHost0")
        assert ("/vmRoot/vmHost0", "startVM", ["vm1"]) in report.actions_executed
        assert report.clean
        assert reconciler.detect().is_empty

    def test_repair_recreates_oob_destroyed_vm(self):
        controller, store, input_queue, reconciler, registry = make_env()
        commit_spawn(controller, store, input_queue, registry, "vm1")
        host = registry.device_at("/vmRoot/vmHost0")
        host.oob_destroy_vm("vm1")
        report = reconciler.repair("/vmRoot/vmHost0")
        assert report.clean
        assert host.vm_state("vm1") == "running"
        assert reconciler.detect("/vmRoot/vmHost0").is_empty

    def test_repair_removes_orphan_physical_vm(self):
        controller, store, input_queue, reconciler, registry = make_env()
        host = registry.device_at("/vmRoot/vmHost0")
        host.import_image("orphan-disk")
        host.create_vm("orphan", "orphan-disk", 256)
        # The orphan VM exists physically but not logically.
        report = reconciler.repair("/vmRoot/vmHost0")
        assert host.vm_state("orphan") is None
        assert any(action == "removeVM" for _, action, _ in report.actions_executed)

    def test_repair_clears_fencing_once_converged(self):
        controller, store, input_queue, reconciler, registry = make_env()
        commit_spawn(controller, store, input_queue, registry, "vm1")
        registry.device_at("/vmRoot/vmHost0").power_cycle()
        reconciler.detect_and_fence("/vmRoot/vmHost0")
        assert controller.model.is_fenced("/vmRoot/vmHost0/vm1")
        reconciler.repair("/vmRoot/vmHost0")
        assert not controller.model.is_fenced("/vmRoot/vmHost0/vm1")
        assert store.load_inconsistent_paths() == []

    def test_repair_reports_device_errors(self):
        controller, store, input_queue, reconciler, registry = make_env()
        commit_spawn(controller, store, input_queue, registry, "vm1")
        host = registry.device_at("/vmRoot/vmHost0")
        host.power_cycle()
        host.faults.fail_always("startVM")
        report = reconciler.repair("/vmRoot/vmHost0")
        assert not report.clean
        assert report.action_errors


class TestReload:
    def test_reload_adopts_physical_state(self):
        controller, store, input_queue, reconciler, registry = make_env()
        host = registry.device_at("/vmRoot/vmHost1")
        host.import_image("newdisk")
        host.create_vm("adopted", "newdisk", 512)
        report = reconciler.reload("/vmRoot/vmHost1")
        assert report.applied
        assert controller.model.exists("/vmRoot/vmHost1/adopted")
        assert reconciler.detect("/vmRoot/vmHost1").is_empty

    def test_reload_aborts_on_constraint_violation(self):
        controller, store, input_queue, reconciler, registry = make_env()
        host = registry.device_at("/vmRoot/vmHost1")
        host.import_image("bigdisk")
        # Physically overcommitted host (devices allow it if created stopped
        # then forced): fabricate an over-capacity running VM out of band.
        host.vms["giant"] = {"state": "running", "mem_mb": 99999, "image": "bigdisk",
                             "hypervisor": host.hypervisor}
        report = reconciler.reload("/vmRoot/vmHost1")
        assert not report.applied
        assert report.violations
        assert not controller.model.exists("/vmRoot/vmHost1/giant")

    def test_reload_aborts_when_subtree_locked(self):
        controller, store, input_queue, reconciler, registry = make_env()
        submit_spawn(store, input_queue, "vm1", vm_host="/vmRoot/vmHost0")
        controller.run_until_idle()  # outstanding: holds locks on vmHost0
        report = reconciler.reload("/vmRoot/vmHost0")
        assert not report.applied
        assert report.conflict

    def test_reload_of_decommissioned_device_drops_subtree(self):
        controller, store, input_queue, reconciler, registry = make_env()
        registry.unregister("/vmRoot/vmHost1")
        report = reconciler.reload("/vmRoot/vmHost1")
        assert report.applied
        assert not controller.model.exists("/vmRoot/vmHost1")

    def test_reload_clears_fencing(self):
        controller, store, input_queue, reconciler, registry = make_env()
        controller.model.mark_inconsistent("/vmRoot/vmHost1")
        report = reconciler.reload("/vmRoot/vmHost1")
        assert report.applied
        assert not controller.model.is_fenced("/vmRoot/vmHost1")
