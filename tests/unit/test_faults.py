"""Unit tests for the schedulable ensemble faults (repro.testing.faults).

The chaos soak composes these; here each fault kind is pinned down in
isolation: deterministic op-count triggering, the error type surfaced to
the victim, degradation windows (latency, partition) opening and closing
on schedule, and ``cancel_pending`` restoring a healthy ensemble for
post-run verification.
"""

import pytest

from repro.common.errors import QuorumLostError, SessionExpiredError
from repro.coordination.client import CoordinationClient
from repro.testing import (
    CONNECTION_LOSS,
    EXPIRE_SESSION,
    LATENCY_SPIKE,
    PARTITION,
    FaultyEnsemble,
)


@pytest.fixture
def ensemble():
    return FaultyEnsemble(num_servers=3, default_session_timeout=3600.0)


@pytest.fixture
def client(ensemble):
    return CoordinationClient(ensemble)


class TestScheduling:
    def test_ops_count_reads_and_writes(self, ensemble, client):
        base = ensemble.fault_schedule.op_count
        client.create("/a", "x")
        client.get("/a")
        client.exists("/a")
        assert ensemble.fault_schedule.op_count == base + 3

    def test_expire_session_hits_the_issuing_session(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.expire_session_at(schedule.op_count + 2)
        client.create("/a", "x")  # op 1: fine
        with pytest.raises(SessionExpiredError):
            client.create("/b", "y")  # op 2: the victim
        assert not client.is_live()
        assert [kind for _, kind in schedule.fired] == [EXPIRE_SESSION]
        # The write provably did not take effect.
        client.reconnect()
        assert client.exists("/b") is None

    def test_connection_loss_is_transient(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.connection_loss_at(schedule.op_count + 1)
        with pytest.raises(ConnectionError):
            client.create("/a", "x")
        assert [kind for _, kind in schedule.fired] == [CONNECTION_LOSS]
        # Session survives; a plain retry succeeds and nothing applied twice.
        assert client.is_live()
        client.create("/a", "x")
        assert client.get("/a")[0] == "x"

    def test_latency_spike_window(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.latency_spike_at(schedule.op_count + 1, latency=0.5, duration=2)
        assert ensemble.op_latency == 0.0
        client.create("/a", "x")  # trigger: spike opens
        assert ensemble.op_latency == 0.5
        client.get("/a")
        client.get("/a")  # window of 2 ops elapsed: spike closes
        assert ensemble.op_latency == 0.0
        assert [kind for _, kind in schedule.fired] == [LATENCY_SPIKE]

    def test_partition_drops_quorum_then_heals(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.partition_at(schedule.op_count + 1, duration=2)
        with pytest.raises(QuorumLostError):
            client.create("/a", "x")
        assert [kind for _, kind in schedule.fired] == [PARTITION]
        # Failed attempts still count ops, so retrying drives healing.
        with pytest.raises(QuorumLostError):
            client.create("/a", "x")
        client.create("/a", "x")  # majority restarted: back to normal
        assert client.get("/a")[0] == "x"

    def test_faults_fire_in_op_order_not_schedule_order(self, ensemble, client):
        schedule = ensemble.fault_schedule
        base = schedule.op_count
        schedule.connection_loss_at(base + 3)
        schedule.expire_session_at(base + 1)
        with pytest.raises(SessionExpiredError):
            client.create("/a", "x")
        client.reconnect()
        client.create("/a", "x")
        with pytest.raises(ConnectionError):
            client.get("/a")
        assert [kind for _, kind in schedule.fired] == [
            EXPIRE_SESSION,
            CONNECTION_LOSS,
        ]


class TestCancelPending:
    def test_drops_unfired_events(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.expire_session_at(schedule.op_count + 1)
        schedule.connection_loss_at(schedule.op_count + 2)
        assert schedule.pending() == 2
        schedule.cancel_pending()
        assert schedule.pending() == 0
        client.create("/a", "x")
        client.get("/a")
        assert schedule.fired == []

    def test_restores_active_degradation(self, ensemble, client):
        schedule = ensemble.fault_schedule
        schedule.latency_spike_at(schedule.op_count + 1, latency=0.5, duration=100)
        schedule.partition_at(schedule.op_count + 2, duration=100)
        client.create("/a", "x")  # spike opens
        with pytest.raises(QuorumLostError):
            client.get("/a")  # partition opens
        schedule.cancel_pending()
        assert ensemble.op_latency == 0.0
        assert client.get("/a")[0] == "x"  # quorum is back
        # Fired history is preserved for post-run assertions.
        assert [kind for _, kind in schedule.fired] == [LATENCY_SPIKE, PARTITION]
