# Convenience targets for the TROPIC reproduction.

PYTHONPATH_PREFIX := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-unit test-integration bench bench-micro chaos docs-check \
	analyze analyze-baseline lint

## Tier-1 verification: the full test suite.
test:
	$(PYTHONPATH_PREFIX) python -m pytest -x -q

test-unit:
	$(PYTHONPATH_PREFIX) python -m pytest tests/unit -q

test-integration:
	$(PYTHONPATH_PREFIX) python -m pytest tests/integration tests/property -q

## Full benchmark suite; writes BENCH_pr10.json (incl. the pipeline-depth
## sweep, 2/4-shard runs, the cross-shard 2PC mix and the read-path
## section: replica staleness, fleet views, O(1) snapshot scaling,
## subscribe latency, fenced views).
bench:
	bash scripts/run_benchmarks.sh

## Write-path micro-benchmark guards only.
bench-micro:
	$(PYTHONPATH_PREFIX) python -m pytest benchmarks/bench_writepath.py -q

## Seeded chaos soak: crash points + ensemble faults + leader kills over
## a concurrent tokened workload; asserts zero acked loss, zero
## duplicate application and recovered-model equality per scenario.
chaos:
	$(PYTHONPATH_PREFIX) python scripts/run_chaos.py --seeds 0-23

## Documentation health: intra-repo links + module docstring coverage.
docs-check:
	python scripts/check_docs.py

## Concurrency & protocol invariant analyzer (docs/development.md):
## lock-order graph, blocking-under-lock, CoW/KV write funnels, txn-state
## machine, retry taxonomy. Fails on any drift from analysis/baseline.json.
analyze:
	$(PYTHONPATH_PREFIX) python -m repro.analysis

## Regenerate the baseline after triaging findings (justify every entry).
analyze-baseline:
	$(PYTHONPATH_PREFIX) python -m repro.analysis --write-baseline

## Ruff (configured in pyproject.toml). The dev container does not ship
## ruff, so this skips with a notice when it is absent; CI enforces it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks scripts; \
	else \
		echo "lint: ruff not installed; skipping (CI enforces it)"; \
	fi
