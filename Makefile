# Convenience targets for the TROPIC reproduction.

PYTHONPATH_PREFIX := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-unit test-integration bench bench-micro chaos docs-check

## Tier-1 verification: the full test suite.
test:
	$(PYTHONPATH_PREFIX) python -m pytest -x -q

test-unit:
	$(PYTHONPATH_PREFIX) python -m pytest tests/unit -q

test-integration:
	$(PYTHONPATH_PREFIX) python -m pytest tests/integration tests/property -q

## Full benchmark suite; writes BENCH_pr7.json (incl. 2/4-shard runs, the
## cross-shard 2PC mix and the read-path section: replica staleness,
## fleet views, O(1) snapshot scaling, subscribe latency, fenced views).
bench:
	bash scripts/run_benchmarks.sh

## Write-path micro-benchmark guards only.
bench-micro:
	$(PYTHONPATH_PREFIX) python -m pytest benchmarks/bench_writepath.py -q

## Seeded chaos soak: crash points + ensemble faults + leader kills over
## a concurrent tokened workload; asserts zero acked loss, zero
## duplicate application and recovered-model equality per scenario.
chaos:
	$(PYTHONPATH_PREFIX) python scripts/run_chaos.py --seeds 0-23

## Documentation health: intra-repo links + module docstring coverage.
docs-check:
	python scripts/check_docs.py
