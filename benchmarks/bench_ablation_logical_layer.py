"""Ablation: value of the logical-layer simulation (early abort, §2.2/§3.1.2).

TROPIC simulates every transaction against the logical data model before
touching devices, so constraint violations abort with *zero* device API
calls.  A platform without that layer would discover the violation only
when a device call fails (e.g. the hypervisor refusing to start an
over-committed VM) and would then have to issue undo calls as well.

This ablation quantifies the difference: for a batch of constraint-
violating spawn requests it counts device API calls under (a) TROPIC and
(b) a no-logical-layer baseline that replays the unchecked execution log
directly against the devices and relies on the device's own admission
checks.
"""


from repro.core.constraints import ConstraintEngine
from repro.core.physical import PhysicalExecutor
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction, TransactionState
from repro.datamodel.schema import ModelSchema
from repro.metrics.report import ascii_table
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures
from repro.tcloud.service import build_tcloud

from conftest import print_block

VIOLATING_REQUESTS = 10


def _schema_without_constraints() -> ModelSchema:
    """The TCloud schema with every constraint stripped (baseline)."""
    schema = build_schema()
    for entity_type in schema.entity_types():
        entity_type.constraints.clear()
    return schema


def _spawn_args(index: int, inventory, mem_mb: int) -> dict:
    return {
        "vm_name": f"abl-{index}",
        "image_template": "template-small",
        "storage_host": inventory.storage_hosts[0],
        "vm_host": inventory.vm_hosts[0],
        "mem_mb": mem_mb,
    }


def _device_calls(registry) -> int:
    return sum(len(device.call_log) for _, device in registry.devices())


def test_ablation_logical_layer_early_abort(benchmark):
    # --- TROPIC: full platform with the logical layer -----------------------
    cloud = build_tcloud(num_vm_hosts=2, num_storage_hosts=1, host_mem_mb=2048)
    cloud.platform.start()
    try:
        tropic_inventory = cloud.inventory
        before = _device_calls(tropic_inventory.registry)
        outcomes = []
        for index in range(VIOLATING_REQUESTS):
            txn = cloud.platform.submit(
                "spawnVM", _spawn_args(index, tropic_inventory, mem_mb=4096)
            )
            outcomes.append(txn.state)
        tropic_calls = _device_calls(tropic_inventory.registry) - before
        assert all(state is TransactionState.ABORTED for state in outcomes)
    finally:
        cloud.platform.stop()

    # --- Baseline: no logical layer, devices discover the violation ---------
    baseline_inventory = build_inventory(num_vm_hosts=2, num_storage_hosts=1,
                                         host_mem_mb=2048)
    unchecked_schema = _schema_without_constraints()
    logical = LogicalExecutor(baseline_inventory.model, unchecked_schema,
                              build_procedures(), ConstraintEngine(unchecked_schema))
    physical = PhysicalExecutor(baseline_inventory.registry)
    baseline_outcomes = []
    for index in range(VIOLATING_REQUESTS):
        txn = Transaction("spawnVM", _spawn_args(index, baseline_inventory, mem_mb=4096))
        outcome = logical.simulate(txn)
        assert outcome.ok  # nothing stops it without constraints
        result = physical.execute(txn)
        baseline_outcomes.append(result.outcome)
        logical.rollback(txn)
    baseline_calls = _device_calls(baseline_inventory.registry)

    print_block(
        ascii_table(
            ("platform", "device API calls for 10 unsafe spawns", "outcome"),
            [
                ("TROPIC (logical-layer simulation)", tropic_calls,
                 "aborted before any device call"),
                ("baseline (no logical layer)", baseline_calls,
                 "aborted by device admission check + undo calls"),
            ],
            title="Ablation — early abort in the logical layer avoids wasted device work",
        )
    )

    # TROPIC issues zero device calls for unsafe requests; the baseline pays
    # several calls (partial provisioning + undo) per request.
    assert tropic_calls == 0
    assert baseline_calls >= VIOLATING_REQUESTS * 4
    assert all(outcome == "aborted" for outcome in baseline_outcomes)

    benchmark(lambda: _device_calls(baseline_inventory.registry))
