"""§6.4: high availability — controller failover and recovery time.

The paper kills the lead controller while the hosting workload is running
and reports (i) that no transaction submitted during recovery is lost and
(ii) a recovery time of ~12.5 s dominated by ZooKeeper's failure-detection
(heartbeat) interval, suggesting that a more aggressive detection setting
shrinks it.

This benchmark kills the leader mid-workload for several coordination
session-timeout settings, measures the time until a follower has taken
over, restored state and committed the next transaction, and checks both
claims: nothing is lost, and recovery time tracks the failure-detection
interval.
"""

import time

import pytest

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.metrics.report import ascii_table
from repro.tcloud.service import build_tcloud

from conftest import print_block

SESSION_TIMEOUTS = [0.3, 0.6, 1.2]


def _run_failover(session_timeout: float) -> dict:
    config = TropicConfig(
        num_controllers=3,
        num_workers=2,
        heartbeat_interval=session_timeout / 6.0,
        session_timeout=session_timeout,
        queue_poll_interval=0.002,
    )
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=16384,
                         config=config, threaded=True)
    cloud.platform.start()
    try:
        # Wait for the initial leader.
        deadline = time.time() + 10.0
        while time.time() < deadline and cloud.platform.leader_runner() is None:
            time.sleep(0.01)
        # Warm-up transaction proves the deployment works.
        assert cloud.spawn_vm("warmup", mem_mb=256, timeout=60.0).state \
            is TransactionState.COMMITTED

        # Submit work, then kill the leader while it is in flight.
        in_flight = [cloud.spawn_vm(f"inflight-{i}", mem_mb=256, wait=False) for i in range(8)]
        killed_at = time.perf_counter()
        killed = cloud.platform.kill_leader()
        during = [cloud.spawn_vm(f"during-{i}", mem_mb=256, wait=False) for i in range(4)]

        # Recovery time: until a new leader has restored state and the next
        # post-failover transaction commits.
        probe = cloud.spawn_vm("post-failover-probe", mem_mb=256, wait=False)
        probe_result = probe.wait(timeout=120.0)
        recovery_time = time.perf_counter() - killed_at

        results = [handle.wait(timeout=120.0) for handle in in_flight + during]
        lost = [txn for txn in results if not txn.is_terminal]
        committed = sum(txn.state is TransactionState.COMMITTED for txn in results)
        return {
            "session_timeout": session_timeout,
            "killed": killed,
            "recovery_time": recovery_time,
            "probe_state": probe_result.state,
            "lost": len(lost),
            "terminal": len(results),
            "committed": committed,
        }
    finally:
        cloud.platform.stop()


@pytest.fixture(scope="module")
def failover_results():
    return [_run_failover(timeout) for timeout in SESSION_TIMEOUTS]


def test_sec64_no_transaction_lost_and_recovery_bounded(benchmark, failover_results):
    rows = [
        (
            f"{entry['session_timeout'] * 1000:.0f} ms",
            f"{entry['recovery_time']:.2f} s",
            entry["probe_state"].value,
            f"{entry['committed']}/{entry['terminal']}",
            entry["lost"],
        )
        for entry in failover_results
    ]
    print_block(
        ascii_table(
            ("failure-detection timeout", "recovery time", "post-failover probe",
             "committed/terminal", "lost transactions"),
            rows,
            title="§6.4 — leader failover: recovery time vs failure-detection interval "
                  "(paper: ~12.5 s, dominated by the heartbeat timeout)",
        )
    )

    for entry in failover_results:
        assert entry["killed"] is not None
        assert entry["lost"] == 0                       # no submitted transaction lost
        assert entry["probe_state"] is TransactionState.COMMITTED
        # Recovery completes within a small multiple of the detection timeout
        # (generous bound to absorb scheduling noise on shared machines).
        assert entry["recovery_time"] < entry["session_timeout"] * 30 + 5.0

    # Shape: recovery time is dominated by failure detection — larger session
    # timeouts never recover faster than the smallest one by a wide margin.
    times = [entry["recovery_time"] for entry in failover_results]
    assert times[-1] >= times[0] * 0.5

    benchmark(lambda: [entry["recovery_time"] for entry in failover_results])
