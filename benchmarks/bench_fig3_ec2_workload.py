"""Figure 3: VMs launched per second (EC2 workload).

Regenerates the synthetic EC2 trace calibrated to the statistics published
in §6.1 (8,417 spawns in one hour, 2.34/s on average, 14/s peak at 0.8 h)
and prints the launch-rate series that Figure 3 plots.
"""

from repro.metrics.report import ascii_table, format_series
from repro.workloads.ec2 import EC2TraceParams, ec2_spawn_trace

from conftest import print_block


def test_fig3_vms_launched_per_second(benchmark):
    params = EC2TraceParams()
    trace = benchmark(lambda: ec2_spawn_trace(params))
    stats = trace.stats()

    # Down-sample the per-second series to per-3-minute averages for display.
    counts = trace.per_second_counts()
    bucket = 180
    series = []
    for start in range(0, params.duration_s, bucket):
        window = counts[start:start + bucket]
        series.append((start / 3600.0, sum(window) / len(window)))

    print_block(
        format_series(series, x_label="time (h)", y_label="VMs/s",
                      title="Figure 3 — VMs launched per second (EC2 workload, 3-min averages)")
        + "\n\n"
        + ascii_table(
            ("metric", "paper", "reproduced"),
            [
                ("total spawns in 1 h", 8417, stats.total_events),
                ("average launch rate (VM/s)", 2.34, round(stats.mean_rate, 2)),
                ("peak launch rate (VM/s)", 14.0, stats.peak_rate),
                ("peak position (h)", 0.8, round(stats.peak_time_s / 3600.0, 2)),
            ],
            title="Figure 3 calibration",
        )
    )

    assert stats.total_events == 8417
    assert round(stats.mean_rate, 2) == 2.34
    assert stats.peak_rate == 14
    assert abs(stats.peak_time_s / 3600.0 - 0.8) < 0.01
