"""Shared helpers for the benchmark harness.

Every benchmark prints, via the helpers in :mod:`repro.metrics.report`, the
rows/series corresponding to one table or figure of the paper, and asserts
the *shape* of the result (who wins, how quantities scale) rather than the
absolute numbers, which depend on the host machine.

Scale knobs: the paper's experiments run against 12,500 compute hosts and a
1-hour trace on a 3-machine testbed.  The benchmarks default to a scaled-
down data centre and a time-compressed trace so the whole suite finishes in
a few minutes; set the environment variables below to increase fidelity:

* ``TROPIC_BENCH_HOSTS``      — compute hosts in the logical-only fleet
* ``TROPIC_BENCH_WINDOW``     — EC2 trace window in seconds (paper: 3600)
* ``TROPIC_BENCH_COMPRESSION``— trace time compression factor
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_scale():
    """Benchmark scale parameters (overridable via environment variables)."""
    return {
        "hosts": env_int("TROPIC_BENCH_HOSTS", 200),
        "storage_hosts": env_int("TROPIC_BENCH_STORAGE_HOSTS", 50),
        "window_s": env_int("TROPIC_BENCH_WINDOW", 120),
        "compression": env_float("TROPIC_BENCH_COMPRESSION", 6.0),
        "multipliers": (1, 2, 3, 4, 5),
    }


def bench_json_emit(name: str, payload: dict) -> None:
    """Append one benchmark result fragment (JSON lines) to the path named
    by ``TROPIC_BENCH_JSON_OUT``; no-op when the variable is unset.  The
    ``scripts/run_benchmarks.sh`` harness merges the fragments into
    ``BENCH_pr1.json``."""
    out = os.environ.get("TROPIC_BENCH_JSON_OUT")
    if not out:
        return
    import json

    with open(out, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"name": name, **payload}, sort_keys=True) + "\n")


def print_block(text: str) -> None:
    """Print a report block surrounded by blank lines so it stands out in
    the pytest-benchmark output."""
    print("\n" + text + "\n")


def mean_seconds(benchmark) -> float:
    """Mean per-iteration time of a finished ``benchmark`` fixture, in seconds.

    Handles both the mapping-style and attribute-style stats interfaces of
    pytest-benchmark versions.
    """
    stats = benchmark.stats
    try:
        return float(stats["mean"])
    except (TypeError, KeyError):
        inner = getattr(stats, "stats", stats)
        return float(inner.mean)
