"""Ablation: coordination-store I/O dominates transaction overhead (§6.1).

The paper reports that "the dominant overhead comes from ZooKeeper API
calls (I/O) instead of TROPIC logical layer simulation (CPU)".  The
coordination substrate in this reproduction exposes a per-operation latency
knob (``coordination_latency``), which models the round trip to a real
ZooKeeper ensemble.  This ablation runs the same spawn workload with the
knob at 0 (pure CPU cost) and at a realistic 1 ms, and reports

* the per-transaction latency under each setting, and
* the implied share of transaction time spent in coordination I/O,

checking the paper's claim that the I/O share dominates once a real
coordination service is in the loop.
"""


from repro.common.config import TropicConfig
from repro.metrics.report import ascii_table
from repro.metrics.stats import percentile
from repro.tcloud.service import build_tcloud

from conftest import print_block

TRANSACTIONS = 30
COORDINATION_LATENCY_S = 0.001


def _run_spawns(coordination_latency: float) -> list[float]:
    """Commit a batch of spawns and return per-transaction latencies."""
    config = TropicConfig(
        num_controllers=1,
        num_workers=1,
        logical_only=True,
        coordination_latency=coordination_latency,
        checkpoint_every=100_000,
    )
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=65536,
                         config=config, logical_only=True)
    cloud.platform.start()
    try:
        for index in range(TRANSACTIONS):
            txn = cloud.spawn_vm(f"co-{index}", vm_host=f"/vmRoot/vmHost{index % 8}",
                                 storage_host="/storageRoot/storageHost0", mem_mb=512)
            assert txn.state.value == "committed"
        return cloud.platform.latencies()
    finally:
        cloud.platform.stop()


def test_ablation_coordination_io_dominates(benchmark):
    cpu_only = _run_spawns(coordination_latency=0.0)
    with_io = _run_spawns(coordination_latency=COORDINATION_LATENCY_S)

    cpu_median = percentile(cpu_only, 50)
    io_median = percentile(with_io, 50)
    io_share = (io_median - cpu_median) / io_median if io_median > 0 else 0.0

    print_block(
        ascii_table(
            ("configuration", "median txn latency (ms)", "p95 (ms)"),
            [
                ("coordination latency 0 (CPU only)",
                 f"{cpu_median * 1000:.2f}", f"{percentile(cpu_only, 95) * 1000:.2f}"),
                (f"coordination latency {COORDINATION_LATENCY_S * 1000:.0f} ms "
                 f"(simulated ZooKeeper I/O)",
                 f"{io_median * 1000:.2f}", f"{percentile(with_io, 95) * 1000:.2f}"),
            ],
            title="Ablation — coordination I/O vs logical-layer CPU (§6.1)",
        )
        + f"\n\nimplied coordination-I/O share of transaction time: {io_share * 100:.0f}%"
    )

    # The paper's claim, reproduced in shape: once each coordination-store
    # operation pays a realistic round trip, I/O — not the logical-layer
    # simulation — accounts for the majority of per-transaction time.
    assert io_median > cpu_median
    assert io_share > 0.5

    benchmark(lambda: percentile(with_io, 50))
