"""§6.2: overhead of enforcing safety constraints (hosting workload).

The paper measures the per-transaction logical-layer overhead of checking
the two representative TCloud constraints — the VM hypervisor-type
constraint and the VM memory constraint — and reports it below ~10 ms.

This benchmark measures the logical-layer cost (simulation + constraint
checking) of spawn and migrate transactions on a populated data centre,
and additionally verifies that the constraints actually reject illegal
operations (migration to an incompatible hypervisor, memory overcommit)
before any physical action is attempted.
"""


from repro.core.constraints import ConstraintEngine
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction
from repro.metrics.report import ascii_table
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures

from conftest import bench_json_emit, mean_seconds, print_block


def _populated_executor(num_hosts=20, vms_per_host=6):
    """Logical executor over a data centre already running many VMs."""
    schema = build_schema()
    inventory = build_inventory(num_vm_hosts=num_hosts, num_storage_hosts=5,
                                host_mem_mb=16384, with_devices=False,
                                hypervisors=["xen-4.1", "kvm-1.0"])
    executor = LogicalExecutor(inventory.model, schema, build_procedures(),
                               ConstraintEngine(schema))
    for host_index in range(num_hosts):
        for vm_index in range(vms_per_host):
            txn = Transaction(
                "spawnVM",
                {
                    "vm_name": f"bg-{host_index}-{vm_index}",
                    "image_template": "template-small",
                    "storage_host": inventory.storage_hosts[host_index % 5],
                    "vm_host": inventory.vm_hosts[host_index],
                    "mem_mb": 512,
                },
            )
            assert executor.simulate(txn).ok
    return executor, inventory


def test_sec62_constraint_checking_overhead(benchmark):
    executor, inventory = _populated_executor()
    counter = {"n": 0}

    def simulate_spawn():
        counter["n"] += 1
        txn = Transaction(
            "spawnVM",
            {
                "vm_name": f"probe-{counter['n']}",
                "image_template": "template-small",
                "storage_host": inventory.storage_hosts[counter["n"] % 5],
                "vm_host": inventory.vm_hosts[counter["n"] % len(inventory.vm_hosts)],
                "mem_mb": 512,
            },
        )
        outcome = executor.simulate(txn)
        assert outcome.ok
        executor.rollback(txn)  # keep the model size stable across iterations

    benchmark(simulate_spawn)

    mean_ms = mean_seconds(benchmark) * 1000
    checks = executor.constraints.checks_performed
    print_block(
        ascii_table(
            ("metric", "paper", "reproduced"),
            [
                ("per-transaction logical-layer overhead", "< 10 ms",
                 f"{mean_ms:.2f} ms (mean)"),
                ("constraint checks performed", "-", checks),
            ],
            title="§6.2 — safety-constraint checking overhead (spawnVM, hosting-scale fleet)",
        )
    )
    bench_json_emit(
        "sec62_safety_overhead",
        {"mean_ms": mean_ms, "constraint_checks": checks},
    )
    # Paper's bound with generous head-room for slower CI machines.
    assert mean_ms < 50.0


def test_sec62_constraints_reject_illegal_operations(benchmark):
    executor, inventory = _populated_executor(num_hosts=4, vms_per_host=2)

    xen_host = inventory.vm_hosts[0]   # xen-4.1
    kvm_host = inventory.vm_hosts[1]   # kvm-1.0

    def attempt_bad_migration():
        txn = Transaction(
            "migrateVM",
            {"vm_name": "bg-0-0", "src_host": xen_host, "dst_host": kvm_host},
        )
        outcome = executor.simulate(txn)
        assert not outcome.ok and outcome.constraint_violation
        return outcome

    outcome = benchmark(attempt_bad_migration)

    overcommit = Transaction(
        "spawnVM",
        {
            "vm_name": "whale",
            "image_template": "template-small",
            "storage_host": inventory.storage_hosts[0],
            "vm_host": xen_host,
            "mem_mb": 999_999,
        },
    )
    overcommit_outcome = executor.simulate(overcommit)

    print_block(
        ascii_table(
            ("illegal operation", "outcome", "violated constraint"),
            [
                ("migrate xen VM to kvm host", "aborted in logical layer", "vm-hypervisor"),
                ("spawn exceeding host memory", "aborted in logical layer", "vm-memory"),
            ],
            title="§6.2 — constraints reject unsafe orchestrations before execution",
        )
    )
    assert "hypervisor" in outcome.error
    assert not overcommit_outcome.ok
    assert "capacity" in overcommit_outcome.error
