"""§6.3: robustness — transaction rollback overhead under injected errors.

The paper emulates VM-spawning and VM-migration errors by raising
exceptions in the last step of each operation, and reports that the
logical-layer work needed to handle the error and roll the transaction back
completes in under ~9 ms per transaction.

This benchmark measures exactly that logical-layer rollback (undo of the
simulated changes after the physical layer reports an abort), and also runs
an end-to-end error-injection pass over the hosting workload to confirm
that every affected transaction aborts cleanly (atomicity) rather than
leaving partial state behind.
"""


from repro.core.constraints import ConstraintEngine
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction
from repro.metrics.report import ascii_table
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures
from repro.tcloud.service import build_tcloud
from repro.workloads.hosting import HostingTraceParams, hosting_trace
from repro.workloads.loadgen import LoadGenerator

from conftest import mean_seconds, print_block


def test_sec63_logical_rollback_overhead(benchmark):
    """Per-transaction cost of rolling back the logical layer after an error
    in the last step of spawnVM (undo of all five simulated actions)."""
    schema = build_schema()
    inventory = build_inventory(num_vm_hosts=10, num_storage_hosts=3,
                                host_mem_mb=16384, with_devices=False)
    executor = LogicalExecutor(inventory.model, schema, build_procedures(),
                               ConstraintEngine(schema))
    counter = {"n": 0}

    def simulate(txn_name):
        txn = Transaction(
            "spawnVM",
            {
                "vm_name": txn_name,
                "image_template": "template-small",
                "storage_host": inventory.storage_hosts[0],
                "vm_host": inventory.vm_hosts[counter["n"] % 10],
                "mem_mb": 512,
            },
        )
        assert executor.simulate(txn).ok
        return txn

    def setup():
        counter["n"] += 1
        return (simulate(f"rb-{counter['n']}"),), {}

    def rollback(txn):
        executor.rollback(txn)

    benchmark.pedantic(rollback, setup=setup, rounds=200, iterations=1)

    mean_ms = mean_seconds(benchmark) * 1000
    print_block(
        ascii_table(
            ("metric", "paper", "reproduced"),
            [("logical-layer rollback per transaction", "< 9 ms", f"{mean_ms:.3f} ms (mean)")],
            title="§6.3 — rollback overhead after an error in the last step of spawnVM",
        )
    )
    assert mean_ms < 45.0  # paper bound with head-room for slower machines


def test_sec63_error_injection_end_to_end(benchmark):
    """Random failures in the last step of spawn and migrate abort cleanly."""
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=3, host_mem_mb=16384)
    cloud.platform.start()
    try:
        # Fail the last step (startVM) of ~30% of spawns/migrations.
        for path in cloud.inventory.vm_hosts:
            cloud.inventory.registry.device_at(path).faults.fail_with_probability(
                0.3, "startVM", message="injected spawn/migrate error"
            )
        trace = hosting_trace(HostingTraceParams(num_operations=80, seed=63))
        result = benchmark.pedantic(
            lambda: LoadGenerator(cloud, seed=63).replay_sync(trace), rounds=1, iterations=1
        )
        stats = cloud.platform.controller_stats()
        schema = build_schema()
        leader_model = cloud.platform.leader().model
        violations = schema.check_subtree(leader_model)
        fenced = [str(path) for path in leader_model.inconsistent_paths()]
        print_block(
            ascii_table(
                ("metric", "value"),
                [
                    ("operations submitted", result.submitted),
                    ("committed", result.committed),
                    ("aborted (rolled back)", result.aborted),
                    ("failed (undo also hit a fault; subtree fenced)", result.failed),
                    ("fenced subtrees pending repair", len(fenced)),
                    ("constraint violations after replay", len(violations)),
                    ("physical aborts handled by controller", stats["aborted_physical"]),
                ],
                title="§6.3 — error injection in the last step of spawn/migrate "
                      "(device-level faults; undo faults surface as failed+fenced, §4)",
            )
        )
        assert result.aborted > 0          # faults actually fired
        assert result.committed > 0        # the rest of the workload proceeded
        assert violations == []            # consistency preserved throughout
        # Our faults are injected at the device layer, so an undo can hit one
        # too; such transactions are reported failed and their subtrees fenced
        # (the paper injects code-level exceptions, so it sees aborts only).
        assert result.failed <= 0.1 * result.submitted
        assert stats["failed"] == result.failed
        if result.failed == 0:
            # With no undo failures, rollback left no trace on the devices.
            assert cloud.platform.reconciler().detect().is_empty
        else:
            assert fenced  # every undo failure fenced the affected subtree
    finally:
        cloud.platform.stop()
