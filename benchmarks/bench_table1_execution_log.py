"""Table 1: execution log of the spawnVM transaction.

Regenerates the paper's Table 1 — the five-step execution log (action +
undo action per resource path) produced by simulating ``spawnVM`` in the
logical layer — and benchmarks the cost of producing it (logical simulation
plus constraint checking), which the paper reports as sub-10 ms.
"""


from repro.core.constraints import ConstraintEngine
from repro.core.simulation import LogicalExecutor
from repro.core.txn import Transaction
from repro.tcloud.entities import build_schema
from repro.tcloud.inventory import build_inventory
from repro.tcloud.procedures import build_procedures

from conftest import mean_seconds, print_block

EXPECTED = [
    ("cloneImage", "removeImage"),
    ("exportImage", "unexportImage"),
    ("importImage", "unimportImage"),
    ("createVM", "removeVM"),
    ("startVM", "stopVM"),
]


def spawn_transaction(index: int = 0) -> Transaction:
    return Transaction(
        procedure="spawnVM",
        args={
            "vm_name": f"vm{index}",
            "image_template": "template-small",
            "storage_host": "/storageRoot/storageHost0",
            "vm_host": "/vmRoot/vmHost0",
            "mem_mb": 1024,
        },
    )


def test_table1_spawn_execution_log(benchmark):
    schema = build_schema()
    procedures = build_procedures()
    counter = {"n": 0}

    def simulate_once():
        # Fresh model per iteration so every simulation starts from scratch.
        inventory = build_inventory(num_vm_hosts=2, num_storage_hosts=1, with_devices=False)
        executor = LogicalExecutor(inventory.model, schema, procedures,
                                   ConstraintEngine(schema))
        counter["n"] += 1
        txn = spawn_transaction(counter["n"])
        outcome = executor.simulate(txn)
        assert outcome.ok
        return txn

    txn = benchmark(simulate_once)

    print_block("Table 1 — execution log of spawnVM\n" + txn.log.format_table())

    assert [(r.action, r.undo_action) for r in txn.log] == EXPECTED
    assert [r.path for r in txn.log] == [
        "/storageRoot/storageHost0",
        "/storageRoot/storageHost0",
        "/vmRoot/vmHost0",
        "/vmRoot/vmHost0",
        "/vmRoot/vmHost0",
    ]
    # Paper: logical-layer per-transaction overhead is in the milliseconds.
    assert mean_seconds(benchmark) < 0.05
