"""Ablation (§3.1.1 future work): FIFO vs aggressive scheduling policy.

TROPIC's controller schedules todoQ with a plain FIFO policy: a head-of-
queue transaction blocked by a resource conflict blocks everything behind
it.  The paper mentions, as future work, a more aggressive policy that
schedules transactions queued behind the conflicting one.  Both policies
are implemented; this ablation submits a workload in which many
transactions contend for one compute host while others target idle hosts,
and compares how quickly each policy dispatches the non-conflicting work.
"""

import pytest

from repro.common.config import TropicConfig
from repro.core.txn import TransactionState
from repro.metrics.report import ascii_table
from repro.tcloud.service import build_tcloud

from conftest import print_block

CONTENDED_SPAWNS = 6
INDEPENDENT_SPAWNS = 12


def _run_policy(policy: str) -> dict:
    config = TropicConfig(scheduler_policy=policy, logical_only=True,
                          checkpoint_every=100_000)
    cloud = build_tcloud(num_vm_hosts=INDEPENDENT_SPAWNS + 1, num_storage_hosts=4,
                         host_mem_mb=65536, config=config, logical_only=True)
    with cloud.platform:
        platform = cloud.platform
        requests = []
        # Interleave contended and independent spawns so FIFO repeatedly finds
        # a conflicting transaction at the head of todoQ.
        for index in range(max(CONTENDED_SPAWNS, INDEPENDENT_SPAWNS)):
            if index < CONTENDED_SPAWNS:
                requests.append((f"hot-{index}", "/vmRoot/vmHost0",
                                 "/storageRoot/storageHost0"))
            if index < INDEPENDENT_SPAWNS:
                requests.append((f"cold-{index}", f"/vmRoot/vmHost{index + 1}",
                                 f"/storageRoot/storageHost{index % 4}"))
        handles = [
            platform.submit(
                "spawnVM",
                {"vm_name": name, "image_template": "template-small",
                 "storage_host": storage, "vm_host": host, "mem_mb": 512},
                wait=False,
            )
            for name, host, storage in requests
        ]
        # A single controller pass: how much work gets dispatched immediately?
        controller = platform.leader()
        controller.run_until_idle()
        dispatched_first_pass = controller.outstanding_count()
        deferred_first_pass = controller.stats["deferred"]
        # Then drive to completion and make sure both policies finish everything.
        platform.run_until_idle()
        results = [handle.wait(timeout=60.0) for handle in handles]
        committed = sum(txn.state is TransactionState.COMMITTED for txn in results)
        return {
            "policy": policy,
            "dispatched_first_pass": dispatched_first_pass,
            "deferred_first_pass": deferred_first_pass,
            "committed": committed,
            "total": len(results),
            "defer_events": platform.controller_stats()["deferred"],
        }


@pytest.fixture(scope="module")
def policy_results():
    return {policy: _run_policy(policy) for policy in ("fifo", "aggressive")}


def test_ablation_scheduling_policies(benchmark, policy_results):
    fifo = policy_results["fifo"]
    aggressive = policy_results["aggressive"]
    print_block(
        ascii_table(
            ("policy", "dispatched after first pass", "deferred after first pass",
             "committed / total", "total defer events"),
            [
                (entry["policy"], entry["dispatched_first_pass"],
                 entry["deferred_first_pass"],
                 f"{entry['committed']}/{entry['total']}", entry["defer_events"])
                for entry in (fifo, aggressive)
            ],
            title="Ablation — FIFO vs aggressive todoQ scheduling "
                  "(contended + independent spawn mix)",
        )
    )
    # Both policies eventually commit the whole workload (safety is unaffected).
    assert fifo["committed"] == fifo["total"]
    assert aggressive["committed"] == aggressive["total"]
    # The aggressive policy dispatches at least as much non-conflicting work in
    # the first scheduling pass as FIFO, typically strictly more.
    assert aggressive["dispatched_first_pass"] >= fifo["dispatched_first_pass"]

    benchmark.pedantic(
        lambda: (fifo["committed"], aggressive["committed"]), rounds=1, iterations=1
    )
