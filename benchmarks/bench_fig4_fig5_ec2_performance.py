"""Figures 4 and 5: controller CPU utilisation and transaction latency under
the EC2 workload at 1x-5x intensity (§6.1).

The paper replays a 1-hour EC2 trace against a logical-only TROPIC
deployment managing 12,500 compute servers (100,000 VMs) and reports

* Figure 4 — controller CPU utilisation tracks the workload and rises
  roughly linearly with the workload multiplier, staying below saturation
  (54% at 5x),
* Figure 5 — the CDF of transaction latency: sub-second medians for all
  multipliers, with 4x/5x developing a heavier tail around the workload
  peak.

This reproduction replays a time-compressed window of the synthesised trace
against the threaded runtime in logical-only mode and checks the same
shape: the controller busy fraction grows with the multiplier, and the
median latency is low for 1x and grows monotonically toward 5x.  Scale is
controlled by the TROPIC_BENCH_* environment variables (see conftest).
"""

import pytest

from repro.common.config import TropicConfig
from repro.metrics.report import ascii_table, format_cdf, format_series
from repro.metrics.stats import cdf_points, linear_correlation, percentile, summary
from repro.tcloud.service import build_tcloud
from repro.workloads.ec2 import EC2TraceParams, ec2_spawn_trace
from repro.workloads.loadgen import LoadGenerator

from conftest import print_block


def _run_one_multiplier(multiplier: int, scale: dict) -> dict:
    """Replay the scaled EC2 trace at one intensity on a fresh deployment."""
    params = EC2TraceParams().scaled_to(scale["window_s"])
    trace = ec2_spawn_trace(params, mem_mb=512).scaled(multiplier)
    config = TropicConfig(
        num_controllers=1,
        num_workers=2,
        logical_only=True,
        checkpoint_every=100_000,
        queue_poll_interval=0.001,
        heartbeat_interval=0.2,
        session_timeout=2.0,
    )
    cloud = build_tcloud(
        num_vm_hosts=scale["hosts"],
        num_storage_hosts=scale["storage_hosts"],
        host_mem_mb=65536,
        config=config,
        threaded=True,
        logical_only=True,
    )
    with cloud.platform:
        # Pre-bind spawns round-robin across the fleet: the paper's setup
        # statically assigns 8 VMs to each of 12,500 compute servers, so
        # placement is not part of the measured orchestration cost.
        generator = LoadGenerator(cloud, prebind_spawns=True)
        result = generator.replay_async(
            trace,
            compression=scale["compression"],
            utilization_bucket_s=max(scale["window_s"] / 10.0, 1.0),
            wait_timeout=300.0,
        )
    return {
        "multiplier": multiplier,
        "result": result,
        "avg_util": (sum(u for _, u in result.utilization) / len(result.utilization))
        if result.utilization
        else 0.0,
        "peak_util": max((u for _, u in result.utilization), default=0.0),
        "median_latency": percentile(result.latencies, 50) if result.latencies else 0.0,
        "p95_latency": percentile(result.latencies, 95) if result.latencies else 0.0,
    }


@pytest.fixture(scope="module")
def ec2_sweep(bench_scale):
    """Run the 1x..5x sweep once and share it between the Fig 4 and Fig 5 checks."""
    return [_run_one_multiplier(m, bench_scale) for m in bench_scale["multipliers"]]


def test_fig4_controller_cpu_utilisation(benchmark, ec2_sweep, bench_scale):
    rows = []
    for entry in ec2_sweep:
        rows.append(
            (
                f"{entry['multiplier']}x EC2",
                f"{entry['avg_util'] * 100:.1f}%",
                f"{entry['peak_util'] * 100:.1f}%",
                entry["result"].submitted,
                entry["result"].committed,
            )
        )
    print_block(
        ascii_table(
            ("workload", "avg controller util", "peak controller util", "submitted", "committed"),
            rows,
            title="Figure 4 — controller CPU utilisation (busy-fraction proxy) vs workload",
        )
        + "\n\n"
        + format_series(
            ec2_sweep[-1]["result"].utilization,
            x_label="trace time (s)",
            y_label="busy fraction",
            title=f"Figure 4 — utilisation over time at {ec2_sweep[-1]['multiplier']}x",
        )
    )

    multipliers = [float(e["multiplier"]) for e in ec2_sweep]
    utils = [e["avg_util"] for e in ec2_sweep]
    # Shape: utilisation rises with the workload multiplier.  Compare the two
    # heaviest multipliers against the two lightest (robust to per-bucket
    # sampling noise) and require a positive overall trend.
    light = (utils[0] + utils[1]) / 2
    heavy = (utils[-1] + utils[-2]) / 2
    assert heavy > light
    assert linear_correlation(multipliers, utils) > 0.5
    # Most transactions commit at every multiplier.
    for entry in ec2_sweep:
        assert entry["result"].commit_ratio > 0.9

    # Benchmark the sampling/aggregation step itself (negligible vs the replay).
    benchmark(lambda: [summary(e["result"].latencies) for e in ec2_sweep])


def test_fig5_transaction_latency_cdf(benchmark, ec2_sweep):
    blocks = []
    rows = []
    for entry in ec2_sweep:
        latencies = entry["result"].latencies
        points = cdf_points(latencies)
        blocks.append(
            format_cdf(points, title=f"Figure 5 — latency CDF, {entry['multiplier']}x EC2")
        )
        rows.append(
            (
                f"{entry['multiplier']}x EC2",
                len(latencies),
                f"{entry['median_latency'] * 1000:.1f}",
                f"{entry['p95_latency'] * 1000:.1f}",
            )
        )
    print_block(
        "\n\n".join(blocks)
        + "\n\n"
        + ascii_table(
            ("workload", "transactions", "median (ms)", "p95 (ms)"),
            rows,
            title="Figure 5 — transaction latency summary",
        )
    )

    medians = [entry["median_latency"] for entry in ec2_sweep]
    p95s = [entry["p95_latency"] for entry in ec2_sweep]
    # Shape (paper, Figure 5): 1x latency is almost negligible, medians stay
    # low at light load, and 4x/5x develop markedly higher latency with a
    # heavy tail caused by the workload peak.  The absolute sub-second
    # median the paper reports at 4x/5x is not expected here: the replay is
    # time-compressed, so the heavy multipliers push the single Python
    # controller past saturation around the peak (see EXPERIMENTS.md).
    assert medians[0] < 1.0
    assert medians[1] < 1.0
    light = (medians[0] + medians[1]) / 2
    heavy = (medians[-1] + medians[-2]) / 2
    assert heavy >= light
    assert max(p95s[-2:]) >= max(p95s[:2])

    benchmark(lambda: [cdf_points(e["result"].latencies) for e in ec2_sweep])
