"""Write-path micro-benchmarks (PR 1 performance subsystem).

Covers the four write-path optimisations in isolation:

* structure-aware ``deep_copy`` vs the legacy JSON round-trip (guarded: a
  regression that reintroduces serialisation-based copying fails the run),
* delta-aware ``save_transaction`` (fields re-encoded per save, writes
  skipped on unchanged documents),
* ``WriteBatch`` group commit vs one round-trip per put, and
* ``ResourcePath.parse`` interning.

Runs under pytest (``make bench-micro``) or standalone to emit JSON:
``python benchmarks/bench_writepath.py --json out.json``.
"""

import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.common.jsonutil import deep_copy  # noqa: E402
from repro.coordination.client import CoordinationClient  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.coordination.kvstore import KVStore  # noqa: E402
from repro.core.persistence import TropicStore  # noqa: E402
from repro.core.txn import Transaction, TransactionState  # noqa: E402
from repro.datamodel.path import ResourcePath  # noqa: E402

#: A representative attribute document (nested, mixed types).
_DOC = {
    "name": "vm17",
    "state": "running",
    "mem_mb": 2048,
    "disks": [{"id": f"d{i}", "size_gb": 16 * (i + 1)} for i in range(4)],
    "tags": {"tier": "web", "owner": "tenant-42", "numbers": list(range(20))},
}


def _legacy_deep_copy(value):
    return json.loads(json.dumps(value))


def _time(fn, iterations):
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return time.perf_counter() - start


def _fresh_store():
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=600.0)
    store = TropicStore(KVStore(CoordinationClient(ensemble)))
    return ensemble, store


def _big_txn(n_records: int = 8) -> Transaction:
    txn = Transaction("spawnVM", {"vm_name": "vm1", "mem_mb": 512, "doc": _DOC})
    for i in range(n_records):
        txn.log.append(
            f"/vmRoot/host{i}/vm{i}", "createVM", [f"vm{i}", 512], "removeVM", [f"vm{i}"]
        )
        txn.rwset.record_write(f"/vmRoot/host{i}/vm{i}")
    return txn


# ----------------------------------------------------------------------
# Micro-benchmarks (each returns a result dict; pytest wrappers assert the
# guard conditions, the standalone runner collects the dicts)
# ----------------------------------------------------------------------

def run_deep_copy(iterations: int = 2000) -> dict:
    fast = _time(lambda: deep_copy(_DOC), iterations)
    legacy = _time(lambda: _legacy_deep_copy(_DOC), iterations)
    assert deep_copy(_DOC) == _legacy_deep_copy(_DOC)
    return {
        "iterations": iterations,
        "fast_s": round(fast, 5),
        "legacy_json_roundtrip_s": round(legacy, 5),
        "speedup": round(legacy / fast, 2) if fast else float("inf"),
    }


def run_txn_save_delta(saves: int = 300) -> dict:
    """State-cycle one large transaction; the delta path re-encodes only
    the cheap fields after the first save."""
    _, store = _fresh_store()
    txn = _big_txn()
    store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
    states = [TransactionState.DEFERRED, TransactionState.ACCEPTED]
    start = time.perf_counter()
    for i in range(saves):
        txn.mark(states[i % 2], float(i))
        store.save_transaction(txn, dirty_fields=())
    elapsed = time.perf_counter() - start
    reused = store.fields_reused
    reserialized = store.fields_reserialized
    loaded = store.load_transaction(txn.txid)
    assert loaded.state == txn.state and len(loaded.log) == len(txn.log)
    return {
        "saves": saves,
        "elapsed_s": round(elapsed, 5),
        "fields_reused": reused,
        "fields_reserialized": reserialized,
        "reuse_fraction": round(reused / max(reused + reserialized, 1), 3),
    }


def run_group_commit(puts: int = 200) -> dict:
    ensemble, store = _fresh_store()
    kv = store.kv

    before = ensemble.write_round_trips
    for i in range(puts):
        kv.put(f"unbatched/key-{i}", {"value": i})
    unbatched_rts = ensemble.write_round_trips - before

    before = ensemble.write_round_trips
    with kv.batch():
        for i in range(puts):
            kv.put(f"batched/key-{i}", {"value": i})
    batched_rts = ensemble.write_round_trips - before

    assert kv.get("batched/key-0") == {"value": 0}
    assert kv.get(f"batched/key-{puts - 1}") == {"value": puts - 1}
    return {
        "puts": puts,
        "unbatched_write_round_trips": unbatched_rts,
        "batched_write_round_trips": batched_rts,
        "round_trip_reduction": round(unbatched_rts / max(batched_rts, 1), 1),
    }


def run_path_interning(iterations: int = 5000) -> dict:
    paths = [f"/vmRoot/host{i % 40}/vm{i % 7}" for i in range(iterations)]
    start = time.perf_counter()
    parsed = [ResourcePath.parse(p) for p in paths]
    elapsed = time.perf_counter() - start
    interned = ResourcePath.parse("/vmRoot/host0/vm0") is ResourcePath.parse(
        "/vmRoot/host0/vm0"
    )
    return {
        "iterations": iterations,
        "elapsed_s": round(elapsed, 5),
        "interned_identity": interned,
        "distinct_objects": len({id(p) for p in parsed}),
    }


# ----------------------------------------------------------------------
# pytest wrappers (guards)
# ----------------------------------------------------------------------

def test_deep_copy_faster_than_json_roundtrip():
    result = run_deep_copy()
    # Micro-benchmark guard: the structure-aware copy must not regress to
    # serialisation speed (generous margin for noisy CI machines).
    assert result["speedup"] > 1.2, result


def test_txn_save_delta_reuses_expensive_fields():
    result = run_txn_save_delta()
    # After the first save, only the 4 cheap fields are re-encoded per
    # save; the 7 expensive fields are reused.
    assert result["reuse_fraction"] > 0.5, result


def test_group_commit_reduces_round_trips():
    result = run_group_commit()
    assert result["batched_write_round_trips"] == 1, result
    assert result["unbatched_write_round_trips"] >= result["puts"], result


def test_path_parse_interning():
    result = run_path_interning()
    assert result["interned_identity"] is True
    # 40 hosts x 7 vm slots = 280 distinct paths.
    assert result["distinct_objects"] == 280, result


# ----------------------------------------------------------------------
# standalone runner
# ----------------------------------------------------------------------

def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args()
    results = {
        "deep_copy": run_deep_copy(),
        "txn_save_delta": run_txn_save_delta(),
        "group_commit": run_group_commit(),
        "path_interning": run_path_interning(),
    }
    print(json.dumps(results, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
