"""Write-path micro-benchmarks (PR 1 + PR 2 performance subsystems).

Covers the write-path optimisations in isolation:

* structure-aware ``deep_copy`` vs the legacy JSON round-trip (guarded: a
  regression that reintroduces serialisation-based copying fails the run),
* delta-aware ``save_transaction`` (fields re-encoded per save, writes
  skipped on unchanged documents),
* ``WriteBatch`` group commit vs one round-trip per put,
* ``ResourcePath.parse`` interning,
* submit-side batching (``submit_many``: two coordination round-trips per
  shard per batch, PR 2),
* watch-driven queue consumers (zero store round-trips while idle, PR 2),
  and
* read replicas (PR 4): strictly read-only against the store — a tailing
  replica adds zero write round-trips to the commit path — and free while
  idle (watch-parked, zero coordination operations per read),
* copy-on-write snapshots (PR 5): ``DataModel.clone()`` is an O(1) fork
  whose cost is independent of the model size, with full isolation from
  later writes on either side, and
* per-subtree delta subscriptions (PR 5): delivery rides the replica's
  existing catch-up — zero extra coordination operations, none at idle.

Runs under pytest (``make bench-micro``) or standalone to emit JSON:
``python benchmarks/bench_writepath.py --json out.json``.
"""

import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.common.jsonutil import deep_copy  # noqa: E402
from repro.coordination.client import CoordinationClient  # noqa: E402
from repro.coordination.ensemble import CoordinationEnsemble  # noqa: E402
from repro.coordination.kvstore import KVStore  # noqa: E402
from repro.core.persistence import TropicStore  # noqa: E402
from repro.core.txn import Transaction, TransactionState  # noqa: E402
from repro.datamodel.path import ResourcePath  # noqa: E402

#: A representative attribute document (nested, mixed types).
_DOC = {
    "name": "vm17",
    "state": "running",
    "mem_mb": 2048,
    "disks": [{"id": f"d{i}", "size_gb": 16 * (i + 1)} for i in range(4)],
    "tags": {"tier": "web", "owner": "tenant-42", "numbers": list(range(20))},
}


def _legacy_deep_copy(value):
    return json.loads(json.dumps(value))


def _time(fn, iterations):
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return time.perf_counter() - start


def _fresh_store():
    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=600.0)
    store = TropicStore(KVStore(CoordinationClient(ensemble)))
    return ensemble, store


def _big_txn(n_records: int = 8) -> Transaction:
    txn = Transaction("spawnVM", {"vm_name": "vm1", "mem_mb": 512, "doc": _DOC})
    for i in range(n_records):
        txn.log.append(
            f"/vmRoot/host{i}/vm{i}", "createVM", [f"vm{i}", 512], "removeVM", [f"vm{i}"]
        )
        txn.rwset.record_write(f"/vmRoot/host{i}/vm{i}")
    return txn


# ----------------------------------------------------------------------
# Micro-benchmarks (each returns a result dict; pytest wrappers assert the
# guard conditions, the standalone runner collects the dicts)
# ----------------------------------------------------------------------

def run_deep_copy(iterations: int = 2000) -> dict:
    fast = _time(lambda: deep_copy(_DOC), iterations)
    legacy = _time(lambda: _legacy_deep_copy(_DOC), iterations)
    assert deep_copy(_DOC) == _legacy_deep_copy(_DOC)
    return {
        "iterations": iterations,
        "fast_s": round(fast, 5),
        "legacy_json_roundtrip_s": round(legacy, 5),
        "speedup": round(legacy / fast, 2) if fast else float("inf"),
    }


def run_txn_save_delta(saves: int = 300) -> dict:
    """State-cycle one large transaction; the delta path re-encodes only
    the cheap fields after the first save."""
    _, store = _fresh_store()
    txn = _big_txn()
    store.save_transaction(txn, dirty_fields=("log", "rwset", "result"))
    states = [TransactionState.DEFERRED, TransactionState.ACCEPTED]
    start = time.perf_counter()
    for i in range(saves):
        txn.mark(states[i % 2], float(i))
        store.save_transaction(txn, dirty_fields=())
    elapsed = time.perf_counter() - start
    reused = store.fields_reused
    reserialized = store.fields_reserialized
    loaded = store.load_transaction(txn.txid)
    assert loaded.state == txn.state and len(loaded.log) == len(txn.log)
    return {
        "saves": saves,
        "elapsed_s": round(elapsed, 5),
        "fields_reused": reused,
        "fields_reserialized": reserialized,
        "reuse_fraction": round(reused / max(reused + reserialized, 1), 3),
    }


def run_group_commit(puts: int = 200) -> dict:
    ensemble, store = _fresh_store()
    kv = store.kv

    before = ensemble.write_round_trips
    for i in range(puts):
        kv.put(f"unbatched/key-{i}", {"value": i})
    unbatched_rts = ensemble.write_round_trips - before

    before = ensemble.write_round_trips
    with kv.batch():
        for i in range(puts):
            kv.put(f"batched/key-{i}", {"value": i})
    batched_rts = ensemble.write_round_trips - before

    assert kv.get("batched/key-0") == {"value": 0}
    assert kv.get(f"batched/key-{puts - 1}") == {"value": puts - 1}
    return {
        "puts": puts,
        "unbatched_write_round_trips": unbatched_rts,
        "batched_write_round_trips": batched_rts,
        "round_trip_reduction": round(unbatched_rts / max(batched_rts, 1), 1),
    }


def run_submit_batching(txns: int = 120) -> dict:
    """Round-trips to submit a batch through ``submit_many`` vs per-call
    ``submit``: the batch costs one store group commit plus one queue group
    write regardless of size."""
    from repro.common.config import TropicConfig
    from repro.tcloud.service import build_tcloud

    def requests(cloud, tag):
        return [
            (
                "spawnVM",
                {
                    "vm_name": f"{tag}-{i}",
                    "image_template": "template-small",
                    "storage_host": cloud.inventory.storage_host_for(i % 20),
                    "vm_host": cloud.inventory.vm_hosts[i % 20],
                    "mem_mb": 256,
                },
            )
            for i in range(txns)
        ]

    config = TropicConfig(logical_only=True, checkpoint_every=100_000)
    cloud = build_tcloud(num_vm_hosts=20, num_storage_hosts=5, host_mem_mb=1 << 20,
                         config=config, logical_only=True)
    with cloud.platform as platform:
        before = platform.ensemble.write_round_trips
        unbatched = [platform.submit(p, a, wait=False) for p, a in requests(cloud, "u")]
        unbatched_rts = platform.ensemble.write_round_trips - before

        before = platform.ensemble.write_round_trips
        batched = platform.submit_many(requests(cloud, "b"), wait=False)
        batched_rts = platform.ensemble.write_round_trips - before

        platform.run_until_idle()
        states = {h.wait(timeout=60.0).state.value for h in unbatched + batched}
    return {
        "txns": txns,
        "unbatched_submit_round_trips": unbatched_rts,
        "batched_submit_round_trips": batched_rts,
        "round_trip_reduction": round(unbatched_rts / max(batched_rts, 1), 1),
        "all_committed": states == {"committed"},
    }


def run_idle_queue_watch(idle_s: float = 0.2) -> dict:
    """Store round-trips issued by a blocked consumer while the queue is
    idle (watch-driven wakeup: must be zero)."""
    import threading
    import time as _time

    from repro.coordination.queue import DistributedQueue

    ensemble = CoordinationEnsemble(num_servers=3, default_session_timeout=600.0)
    client = CoordinationClient(ensemble)
    queue = DistributedQueue(client, "/queues/benchidle")
    results: list = []
    consumer = threading.Thread(
        target=lambda: results.append(queue.get(timeout=30.0)), daemon=True
    )
    consumer.start()
    _time.sleep(0.1)  # let the consumer park on its watch
    ops_before = ensemble.op_count
    _time.sleep(idle_s)
    idle_ops = ensemble.op_count - ops_before
    queue.put({"wake": True})
    consumer.join(timeout=10.0)
    return {
        "idle_window_s": idle_s,
        "idle_round_trips": idle_ops,
        "woke_with_item": results == [{"wake": True}],
    }


def run_path_interning(iterations: int = 5000) -> dict:
    paths = [f"/vmRoot/host{i % 40}/vm{i % 7}" for i in range(iterations)]
    start = time.perf_counter()
    parsed = [ResourcePath.parse(p) for p in paths]
    elapsed = time.perf_counter() - start
    interned = ResourcePath.parse("/vmRoot/host0/vm0") is ResourcePath.parse(
        "/vmRoot/host0/vm0"
    )
    return {
        "iterations": iterations,
        "elapsed_s": round(elapsed, 5),
        "interned_identity": interned,
        "distinct_objects": len({id(p) for p in parsed}),
    }


def run_replica_read_cost(txns: int = 40) -> dict:
    """Write round-trips of a spawn workload with a replica tailing the
    shard vs the replica's own coordination footprint: tailing must be
    pure reads (zero writes) and idle reads must be free entirely."""
    from repro.common.config import TropicConfig
    from repro.core.platform import shard_store_prefix
    from repro.core.replica import ReadReplica
    from repro.tcloud.service import build_tcloud

    config = TropicConfig(logical_only=True, checkpoint_every=1_000_000)
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=65536,
                         config=config, logical_only=True)
    with cloud.platform:
        ensemble = cloud.platform.ensemble
        replica = ReadReplica(
            TropicStore(KVStore(cloud.platform.client, shard_store_prefix(0, 1))),
            cloud.platform.schema, cloud.platform.procedures,
        )
        replica.model()  # bootstrap + arm watches
        writes_before = ensemble.write_round_trips
        requests = [
            ("spawnVM", {
                "vm_name": f"rb-{i}", "image_template": "template-small",
                "storage_host": cloud.inventory.storage_host_for(i % 8),
                "vm_host": cloud.inventory.vm_hosts[i % 8], "mem_mb": 256,
            })
            for i in range(txns)
        ]
        handles = cloud.platform.submit_many(requests, wait=False)
        cloud.platform.run_until_idle()
        committed = sum(
            handle.wait(timeout=60.0).state is TransactionState.COMMITTED
            for handle in handles
        )
        workload_writes = ensemble.write_round_trips - writes_before
        # The replica catches up on the whole workload: reads only.
        writes_before = ensemble.write_round_trips
        replica.refresh()
        replica_writes = ensemble.write_round_trips - writes_before
        caught_up = replica.applied_txn == cloud.platform.store.applied_seq()
        ops_before = ensemble.op_count
        for _ in range(100):
            replica.model()
        idle_ops = ensemble.op_count - ops_before
    return {
        "txns": txns,
        "committed": committed,
        "workload_write_round_trips": workload_writes,
        "replica_catchup_write_round_trips": replica_writes,
        "replica_idle_read_ops": idle_ops,
        "replica_caught_up": caught_up,
    }


def run_cow_snapshot(sizes=None, iterations: int = 2000) -> dict:
    """Copy-on-write ``DataModel.clone()`` across model sizes: the fork
    must cost the same regardless of how many nodes the tree holds (it is
    a pointer swap plus two epoch stamps), and mutations after the fork
    must never leak into it."""
    from repro.testing import SNAPSHOT_BENCH_SIZES, build_host_fleet_model as build

    sizes = sizes or SNAPSHOT_BENCH_SIZES
    per_size = {}
    for hosts in sizes:
        model = build(hosts)
        elapsed = _time(model.clone, iterations)
        per_size[hosts] = elapsed / iterations
    smallest, largest = min(sizes), max(sizes)
    # Isolation check at the largest size.
    model = build(largest)
    fork = model.clone()
    shares_root = fork.root is model.root
    frozen = json.dumps(fork.to_dict(), sort_keys=True)
    model.set_attrs("/vmRoot/host0", mem_mb=1)
    model.delete("/vmRoot/host1/vm0")
    isolated = json.dumps(fork.to_dict(), sort_keys=True) == frozen
    return {
        "iterations": iterations,
        "snapshot_us_by_hosts": {
            str(hosts): round(per_size[hosts] * 1e6, 3) for hosts in sizes
        },
        "size_ratio": round(largest / smallest, 1),
        "cost_ratio_largest_vs_smallest": round(
            per_size[largest] / max(per_size[smallest], 1e-12), 2
        ),
        "fork_shares_structure": shares_root,
        "snapshot_isolated_from_writes": isolated,
    }


def run_subscribe_cost(txns: int = 30) -> dict:
    """Per-subtree delta subscriptions must ride the replica's existing
    catch-up: zero store writes, zero extra coordination operations beyond
    the tailing reads, and zero ops while idle."""
    from repro.common.config import TropicConfig
    from repro.core.platform import shard_store_prefix
    from repro.core.replica import ReadReplica
    from repro.tcloud.service import build_tcloud

    config = TropicConfig(logical_only=True, checkpoint_every=1_000_000)
    cloud = build_tcloud(num_vm_hosts=8, num_storage_hosts=2, host_mem_mb=65536,
                         config=config, logical_only=True)
    with cloud.platform:
        ensemble = cloud.platform.ensemble
        host = cloud.inventory.vm_hosts[0]
        replica = ReadReplica(
            TropicStore(KVStore(cloud.platform.client, shard_store_prefix(0, 1))),
            cloud.platform.schema, cloud.platform.procedures,
        )
        plain = replica.subscribe("/vmRoot/never-touched")  # no matching deltas
        sub = replica.subscribe(host)
        requests = [
            ("spawnVM", {
                "vm_name": f"sub-{i}", "image_template": "template-small",
                "storage_host": cloud.inventory.storage_host_for(0),
                "vm_host": host, "mem_mb": 256,
            })
            for i in range(txns)
        ]
        handles = cloud.platform.submit_many(requests, wait=False)
        cloud.platform.run_until_idle()
        committed = sum(
            handle.wait(timeout=60.0).state is TransactionState.COMMITTED
            for handle in handles
        )
        writes_before = ensemble.write_round_trips
        events = sub.poll()
        subscribe_writes = ensemble.write_round_trips - writes_before
        ops_before = ensemble.op_count
        idle_polls = [sub.poll() for _ in range(100)]
        idle_ops = ensemble.op_count - ops_before
    return {
        "txns": txns,
        "committed": committed,
        "deltas_delivered": len(events),
        "deltas_for_untouched_subtree": plain.pending(),
        "subscribe_write_round_trips": subscribe_writes,
        "idle_poll_ops": idle_ops,
        "idle_polls_empty": all(not polled for polled in idle_polls),
    }


# ----------------------------------------------------------------------
# pytest wrappers (guards)
# ----------------------------------------------------------------------

def test_deep_copy_faster_than_json_roundtrip():
    result = run_deep_copy()
    # Micro-benchmark guard: the structure-aware copy must not regress to
    # serialisation speed (generous margin for noisy CI machines).
    assert result["speedup"] > 1.2, result


def test_txn_save_delta_reuses_expensive_fields():
    result = run_txn_save_delta()
    # After the first save, only the 4 cheap fields are re-encoded per
    # save; the 7 expensive fields are reused.
    assert result["reuse_fraction"] > 0.5, result


def test_group_commit_reduces_round_trips():
    result = run_group_commit()
    assert result["batched_write_round_trips"] == 1, result
    assert result["unbatched_write_round_trips"] >= result["puts"], result


def test_path_parse_interning():
    result = run_path_interning()
    assert result["interned_identity"] is True
    # 40 hosts x 7 vm slots = 280 distinct paths.
    assert result["distinct_objects"] == 280, result


def test_submit_batching_costs_two_round_trips_per_batch():
    result = run_submit_batching()
    assert result["batched_submit_round_trips"] == 2, result
    assert result["unbatched_submit_round_trips"] >= result["txns"], result
    assert result["all_committed"], result


def test_idle_queue_consumer_issues_zero_round_trips():
    result = run_idle_queue_watch()
    assert result["idle_round_trips"] == 0, result
    assert result["woke_with_item"], result


def test_replica_is_read_only_and_idle_free():
    """The PR 4 'assert, don't add' guard: a tailing replica issues zero
    store *writes* (commit markers were already durable for recovery's
    sake) and zero coordination ops of any kind while idle."""
    result = run_replica_read_cost()
    assert result["committed"] == result["txns"], result
    assert result["replica_catchup_write_round_trips"] == 0, result
    assert result["replica_idle_read_ops"] == 0, result
    assert result["replica_caught_up"], result


def test_cow_snapshot_is_o1_and_isolated():
    """PR 5 guard: a snapshot is a structural fork — same cost at 16x the
    model size (generous noise margin: the op is two epoch stamps) and
    byte-frozen against writes on the live side."""
    result = run_cow_snapshot()
    assert result["fork_shares_structure"], result
    assert result["snapshot_isolated_from_writes"], result
    assert result["cost_ratio_largest_vs_smallest"] < 5.0, result


def test_subscribe_rides_the_existing_catchup():
    """PR 5 guard: delta delivery adds zero store writes and idle polls
    are entirely free (watch-parked refresh)."""
    result = run_subscribe_cost()
    assert result["committed"] == result["txns"], result
    assert result["deltas_delivered"] > 0, result
    assert result["deltas_for_untouched_subtree"] == 0, result
    assert result["subscribe_write_round_trips"] == 0, result
    assert result["idle_poll_ops"] == 0, result
    assert result["idle_polls_empty"], result


# ----------------------------------------------------------------------
# standalone runner
# ----------------------------------------------------------------------

def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args()
    results = {
        "deep_copy": run_deep_copy(),
        "txn_save_delta": run_txn_save_delta(),
        "group_commit": run_group_commit(),
        "path_interning": run_path_interning(),
        "submit_batching": run_submit_batching(),
        "idle_queue_watch": run_idle_queue_watch(),
        "replica_read_cost": run_replica_read_cost(),
        "cow_snapshot": run_cow_snapshot(),
        "subscribe_cost": run_subscribe_cost(),
    }
    print(json.dumps(results, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
