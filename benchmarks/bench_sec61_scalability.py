"""§6.1 (text): transaction throughput and memory footprint vs resource scale.

The paper reports that TROPIC's transaction throughput stays roughly
constant as the number of managed resources grows, because the dominant
costs (locking, queue management, coordination I/O) are independent of the
fleet size; the real scalability bottleneck is controller memory, which
grows with the quantity of managed resources (about 2 million VMs fit in
32 GB on their hardware).

This benchmark processes a fixed batch of spawn transactions (hosts pinned
round-robin, logical-only mode) against fleets of increasing size and
checks that throughput does not degrade appreciably while the estimated
memory footprint of the logical data model grows roughly linearly.
"""

import time

import pytest

from repro.common.config import TropicConfig
from repro.metrics.collectors import MemoryEstimator, StoreIOSnapshot
from repro.metrics.report import ascii_table
from repro.tcloud.service import build_tcloud

from conftest import bench_json_emit, env_int, print_block

FLEET_SIZES = [env_int("TROPIC_BENCH_SCALE_SMALL", 50),
               env_int("TROPIC_BENCH_SCALE_MEDIUM", 200),
               env_int("TROPIC_BENCH_SCALE_LARGE", 800)]
TXN_BATCH = env_int("TROPIC_BENCH_SCALE_TXNS", 150)


def _run_fleet(num_hosts: int) -> dict:
    config = TropicConfig(logical_only=True, checkpoint_every=100_000)
    cloud = build_tcloud(
        num_vm_hosts=num_hosts,
        num_storage_hosts=max(num_hosts // 4, 1),
        host_mem_mb=65536,
        config=config,
        logical_only=True,
    )
    with cloud.platform:
        model = cloud.platform.leader().model
        resources_before = model.count()
        io_before = StoreIOSnapshot.capture(cloud.platform.ensemble)
        start = time.perf_counter()
        handles = []
        for index in range(TXN_BATCH):
            host = cloud.inventory.vm_hosts[index % num_hosts]
            storage = cloud.inventory.storage_hosts[index % len(cloud.inventory.storage_hosts)]
            handles.append(
                cloud.platform.submit(
                    "spawnVM",
                    {
                        "vm_name": f"scale-vm-{index}",
                        "image_template": "template-small",
                        "storage_host": storage,
                        "vm_host": host,
                        "mem_mb": 512,
                    },
                    wait=False,
                )
            )
        cloud.platform.run_until_idle()
        results = [handle.wait(timeout=60.0) for handle in handles]
        elapsed = time.perf_counter() - start
        committed = sum(txn.state.value == "committed" for txn in results)
        io = StoreIOSnapshot.capture(cloud.platform.ensemble).delta(io_before)
        memory_bytes = MemoryEstimator.estimate_bytes(model)
        return {
            "hosts": num_hosts,
            "resources": model.count(),
            "resources_initial": resources_before,
            "throughput": committed / elapsed,
            "committed": committed,
            "memory_mb": memory_bytes / 1e6,
            "bytes_per_resource": MemoryEstimator.bytes_per_resource(model),
            "store_writes": io.writes,
            "writes_per_commit": io.writes / max(committed, 1),
            "store_bytes_per_commit": io.bytes_written / max(committed, 1),
            "multi_commits": io.multi_commits,
        }


@pytest.fixture(scope="module")
def scalability_results():
    return [_run_fleet(size) for size in FLEET_SIZES]


def test_sec61_throughput_constant_with_scale(benchmark, scalability_results):
    rows = [
        (
            entry["hosts"],
            entry["resources"],
            f"{entry['throughput']:.1f}",
            entry["committed"],
            f"{entry['memory_mb']:.2f}",
            f"{entry['writes_per_commit']:.2f}",
        )
        for entry in scalability_results
    ]
    print_block(
        ascii_table(
            ("compute hosts", "managed resources", "throughput (txn/s)", "committed",
             "model memory (MB)", "store writes / txn"),
            rows,
            title="§6.1 — throughput and controller memory vs resource scale",
        )
    )
    for entry in scalability_results:
        bench_json_emit("sec61_scalability", entry)

    throughputs = [entry["throughput"] for entry in scalability_results]
    # Shape: throughput is roughly flat — the largest fleet achieves at least
    # half the throughput of the smallest (the paper reports it constant).
    assert min(throughputs) > 0
    assert throughputs[-1] >= 0.5 * throughputs[0]
    # All transactions commit at every scale.
    for entry in scalability_results:
        assert entry["committed"] == TXN_BATCH

    benchmark(lambda: [e["throughput"] for e in scalability_results])


def test_sec61_memory_grows_with_resources(benchmark, scalability_results):
    memory = [entry["memory_mb"] for entry in scalability_results]
    resources = [entry["resources"] for entry in scalability_results]
    rows = [
        (entry["hosts"], entry["resources"], f"{entry['memory_mb']:.2f}",
         f"{entry['bytes_per_resource']:.0f}")
        for entry in scalability_results
    ]
    print_block(
        ascii_table(
            ("compute hosts", "managed resources", "model memory (MB)", "bytes / resource"),
            rows,
            title="§6.1 — memory footprint is dominated by managed resources",
        )
    )
    # Shape: memory grows with the number of managed resources...
    assert memory[-1] > memory[0] * 2
    # ...and roughly proportionally (constant bytes per resource within 2x,
    # measured against the post-workload model size).
    per_resource = [m * 1e6 / r for m, r in zip(memory, resources)]
    assert max(per_resource) < 2 * min(per_resource)

    benchmark(lambda: MemoryEstimator.node_count.__name__)
